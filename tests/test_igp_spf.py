"""Tests for repro.igp.spf (Dijkstra with ECMP)."""

import networkx as nx
import pytest

from repro.igp.graph import ComputationGraph
from repro.igp.spf import compute_spf
from repro.topologies.demo import build_demo_topology
from repro.topologies.zoo import grid
from repro.util.errors import RoutingError


def diamond_graph() -> ComputationGraph:
    """A diamond with two equal-cost paths S -> T."""
    graph = ComputationGraph()
    graph.add_edge("S", "L", 1)
    graph.add_edge("L", "S", 1)
    graph.add_edge("S", "R", 1)
    graph.add_edge("R", "S", 1)
    graph.add_edge("L", "T", 1)
    graph.add_edge("T", "L", 1)
    graph.add_edge("R", "T", 1)
    graph.add_edge("T", "R", 1)
    return graph


class TestDistances:
    def test_source_distance_is_zero(self):
        spf = compute_spf(diamond_graph(), "S")
        assert spf.distance_to("S") == 0.0

    def test_diamond_distances(self):
        spf = compute_spf(diamond_graph(), "S")
        assert spf.distance_to("L") == 1
        assert spf.distance_to("T") == 2

    def test_demo_topology_distances_from_a(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        spf = compute_spf(graph, "A")
        assert spf.distance_to("B") == 1
        assert spf.distance_to("R1") == 2
        assert spf.distance_to("C") == 3
        assert spf.distance_to("R4") == 3

    def test_demo_topology_distances_from_b(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        spf = compute_spf(graph, "B")
        assert spf.distance_to("C") == 2
        assert spf.distance_to("R3") == 2

    def test_unreachable_node_reported(self):
        graph = diamond_graph()
        graph.add_node("island")
        spf = compute_spf(graph, "S")
        assert not spf.reachable("island")
        with pytest.raises(RoutingError):
            spf.distance_to("island")

    def test_unknown_source_rejected(self):
        with pytest.raises(RoutingError):
            compute_spf(diamond_graph(), "nope")

    def test_matches_networkx_on_random_graphs(self):
        """SPF distances must agree with networkx's Dijkstra on many seeds."""
        from repro.topologies.random import random_topology

        for seed in range(5):
            topology = random_topology(num_routers=12, edge_probability=0.3, seed=seed, with_prefixes=False)
            graph = ComputationGraph.from_topology(topology)
            nx_graph = nx.DiGraph()
            for link in topology.links:
                nx_graph.add_edge(link.source, link.target, weight=link.weight)
            source = topology.routers[0]
            expected = nx.single_source_dijkstra_path_length(nx_graph, source)
            spf = compute_spf(graph, source)
            for node, distance in expected.items():
                assert spf.distance_to(node) == pytest.approx(distance)


class TestEcmpNextHops:
    def test_diamond_has_two_next_hops(self):
        spf = compute_spf(diamond_graph(), "S")
        assert spf.next_hops_to("T") == frozenset({"L", "R"})

    def test_direct_neighbor_next_hop_is_itself(self):
        spf = compute_spf(diamond_graph(), "S")
        assert spf.next_hops_to("L") == frozenset({"L"})

    def test_source_has_no_next_hops(self):
        spf = compute_spf(diamond_graph(), "S")
        assert spf.next_hops_to("S") == frozenset()

    def test_demo_single_path_next_hops(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        spf = compute_spf(graph, "A")
        assert spf.next_hops_to("C") == frozenset({"B"})

    def test_grid_corner_to_corner_uses_both_directions(self):
        graph = ComputationGraph.from_topology(grid(3, 3, with_loopbacks=False))
        spf = compute_spf(graph, "G0_0")
        assert spf.next_hops_to("G2_2") == frozenset({"G0_1", "G1_0"})

    def test_next_hops_of_unreachable_raise(self):
        graph = diamond_graph()
        graph.add_node("island")
        spf = compute_spf(graph, "S")
        with pytest.raises(RoutingError):
            spf.next_hops_to("island")


class TestPathEnumeration:
    def test_diamond_has_two_paths(self):
        spf = compute_spf(diamond_graph(), "S")
        paths = spf.paths_to("T")
        assert paths == [("S", "L", "T"), ("S", "R", "T")]

    def test_paths_all_have_equal_cost(self):
        graph = ComputationGraph.from_topology(grid(3, 3, with_loopbacks=False))
        spf = compute_spf(graph, "G0_0")
        paths = spf.paths_to("G2_2")
        assert len(paths) == 6  # binomial(4, 2) lattice paths
        assert all(len(path) == 5 for path in paths)

    def test_paths_over_limit_raise_unless_partial(self):
        graph = ComputationGraph.from_topology(grid(3, 3, with_loopbacks=False))
        spf = compute_spf(graph, "G0_0")
        with pytest.raises(RoutingError, match="equal-cost paths"):
            spf.paths_to("G2_2", limit=2)

    def test_partial_paths_respect_limit(self):
        graph = ComputationGraph.from_topology(grid(3, 3, with_loopbacks=False))
        spf = compute_spf(graph, "G0_0")
        partial = spf.paths_to("G2_2", limit=2, partial=True)
        assert len(partial) == 2
        assert set(partial) < set(spf.paths_to("G2_2"))

    def test_limit_equal_to_path_count_is_not_truncation(self):
        graph = ComputationGraph.from_topology(grid(3, 3, with_loopbacks=False))
        spf = compute_spf(graph, "G0_0")
        assert len(spf.paths_to("G2_2", limit=6)) == 6

    def test_path_to_unreachable_raises(self):
        graph = diamond_graph()
        graph.add_node("island")
        spf = compute_spf(graph, "S")
        with pytest.raises(RoutingError):
            spf.paths_to("island")

    def test_contains_operator(self):
        spf = compute_spf(diamond_graph(), "S")
        assert "T" in spf
        assert "nothere" not in spf


class TestFakeNodesInSpf:
    def test_fake_node_is_reachable_from_anchor(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        from repro.topologies.demo import demo_lies

        graph = ComputationGraph.from_topology(build_demo_topology(), demo_lies())
        spf = compute_spf(graph, "B")
        assert spf.distance_to("fB") == 1.0
        assert spf.next_hops_to("fB") == frozenset({"fB"})

    def test_other_routers_reach_fake_node_through_anchor(self):
        from repro.topologies.demo import demo_lies

        graph = ComputationGraph.from_topology(build_demo_topology(), demo_lies())
        spf = compute_spf(graph, "R2")
        # R2 reaches fB via B (cost 1 to B + 1 fake link).
        assert spf.distance_to("fB") == 2.0
        assert spf.next_hops_to("fB") == frozenset({"B"})
