"""Tests for repro.igp.lsa."""

import pytest

from repro.igp.lsa import FakeNodeLsa, LsaKey, PrefixLsa, RouterLsa
from repro.util.errors import ValidationError
from repro.util.prefixes import Prefix

PREFIX = Prefix.parse("10.0.0.0/24")


class TestRouterLsa:
    def test_key_identifies_origin(self):
        lsa = RouterLsa(origin="A", links=(("B", 1.0),))
        assert lsa.key == LsaKey(kind="router", origin="A")

    def test_size_grows_with_links(self):
        small = RouterLsa(origin="A", links=(("B", 1.0),))
        large = RouterLsa(origin="A", links=(("B", 1.0), ("C", 2.0), ("D", 1.0)))
        assert large.size_bytes > small.size_bytes

    def test_rejects_non_positive_cost(self):
        with pytest.raises(ValidationError):
            RouterLsa(origin="A", links=(("B", 0.0),))

    def test_rejects_empty_neighbor(self):
        with pytest.raises(ValidationError):
            RouterLsa(origin="A", links=(("", 1.0),))

    def test_rejects_bad_sequence(self):
        with pytest.raises(ValidationError):
            RouterLsa(origin="A", sequence=0)


class TestPrefixLsa:
    def test_key_includes_prefix(self):
        lsa = PrefixLsa(origin="C", prefix=PREFIX, metric=0)
        assert str(PREFIX) in str(lsa.key)

    def test_same_origin_different_prefixes_have_distinct_keys(self):
        a = PrefixLsa(origin="C", prefix=PREFIX)
        b = PrefixLsa(origin="C", prefix=Prefix.parse("10.1.0.0/24"))
        assert a.key != b.key

    def test_negative_metric_rejected(self):
        with pytest.raises(ValidationError):
            PrefixLsa(origin="C", prefix=PREFIX, metric=-1)


class TestFakeNodeLsa:
    def make(self, **overrides):
        params = dict(
            origin="ctrl",
            fake_node="f1",
            anchor="B",
            link_cost=1.0,
            prefix=PREFIX,
            prefix_cost=1.0,
            forwarding_address="R3",
        )
        params.update(overrides)
        return FakeNodeLsa(**params)

    def test_total_cost_is_link_plus_prefix(self):
        assert self.make(link_cost=1.5, prefix_cost=0.5).total_cost == 2.0

    def test_key_uses_fake_node_name(self):
        assert "f1" in str(self.make().key)

    def test_missing_fields_rejected(self):
        with pytest.raises(ValidationError):
            self.make(fake_node="")
        with pytest.raises(ValidationError):
            self.make(anchor="")
        with pytest.raises(ValidationError):
            self.make(forwarding_address="")

    def test_forwarding_address_cannot_be_fake_node(self):
        with pytest.raises(ValidationError):
            self.make(forwarding_address="f1")

    def test_link_cost_must_be_positive(self):
        with pytest.raises(ValidationError):
            self.make(link_cost=0.0)


class TestLifecycle:
    def test_newer_than_compares_sequences(self):
        old = PrefixLsa(origin="C", prefix=PREFIX, sequence=1)
        new = PrefixLsa(origin="C", prefix=PREFIX, sequence=2)
        assert new.newer_than(old)
        assert not old.newer_than(new)

    def test_newer_than_rejects_different_keys(self):
        a = PrefixLsa(origin="C", prefix=PREFIX)
        b = PrefixLsa(origin="D", prefix=PREFIX)
        with pytest.raises(ValidationError):
            a.newer_than(b)

    def test_withdraw_bumps_sequence_and_sets_flag(self):
        lsa = PrefixLsa(origin="C", prefix=PREFIX, sequence=3)
        withdrawn = lsa.withdraw()
        assert withdrawn.withdrawn
        assert withdrawn.sequence == 4
        assert withdrawn.key == lsa.key

    def test_refresh_bumps_sequence_and_clears_flag(self):
        lsa = PrefixLsa(origin="C", prefix=PREFIX, sequence=3, withdrawn=True)
        refreshed = lsa.refresh()
        assert not refreshed.withdrawn
        assert refreshed.sequence == 4

    def test_lsa_keys_are_sortable(self):
        keys = [
            RouterLsa(origin="B").key,
            RouterLsa(origin="A").key,
            PrefixLsa(origin="A", prefix=PREFIX).key,
        ]
        assert sorted(keys)[0].kind == "prefix"
