"""Tests for the simulation event log."""

import pytest

from repro.dataplane.events import EventLog, FlowEvent, SimulationEvent
from repro.util.errors import SimulationError


class TestEventLog:
    def test_record_and_list(self):
        log = EventLog()
        first = SimulationEvent(time=1.0, kind="flow-arrival", details="flow 0")
        second = SimulationEvent(time=2.0, kind="routing-change")
        log.record(first)
        log.record(second)
        assert log.all() == [first, second]
        assert len(log) == 2

    def test_filter_by_kind(self):
        log = EventLog()
        log.record(SimulationEvent(time=1.0, kind="flow-arrival"))
        log.record(SimulationEvent(time=2.0, kind="routing-change"))
        log.record(SimulationEvent(time=3.0, kind="flow-arrival"))
        arrivals = log.of_kind("flow-arrival")
        assert len(arrivals) == 2
        assert all(event.kind == "flow-arrival" for event in arrivals)

    def test_first_of_kind(self):
        log = EventLog()
        assert log.first_of_kind("flow-arrival") is None
        log.record(SimulationEvent(time=5.0, kind="flow-arrival"))
        log.record(SimulationEvent(time=9.0, kind="flow-arrival"))
        assert log.first_of_kind("flow-arrival").time == 5.0

    def test_iteration_preserves_order(self):
        log = EventLog()
        for time in [1.0, 2.0, 3.0]:
            log.record(SimulationEvent(time=time, kind="sample"))
        assert [event.time for event in log] == [1.0, 2.0, 3.0]

    def test_string_rendering(self):
        event = SimulationEvent(time=12.345, kind="flow-arrival", details="S1 video")
        text = str(event)
        assert "12.345" in text
        assert "flow-arrival" in text
        assert "S1 video" in text

    def test_flow_event_carries_flow_id(self):
        event = FlowEvent(time=1.0, kind="flow-arrival", details="", flow_id=7)
        assert event.flow_id == 7
        assert isinstance(event, SimulationEvent)


class TestMonotonicity:
    """``record`` documents time order; since PR 4 it also enforces it."""

    def test_time_regression_raises(self):
        log = EventLog()
        log.record(SimulationEvent(time=5.0, kind="flow-arrival"))
        with pytest.raises(SimulationError, match="regression"):
            log.record(SimulationEvent(time=4.999, kind="flow-departure"))
        # The offending event must not have been appended.
        assert len(log) == 1
        assert log.all()[-1].time == 5.0

    def test_monotone_and_equal_timestamps_are_accepted(self):
        log = EventLog()
        for time in [0.0, 1.0, 1.0, 2.5]:
            log.record(SimulationEvent(time=time, kind="sample"))
        assert [event.time for event in log] == [0.0, 1.0, 1.0, 2.5]

    def test_log_stays_usable_after_a_rejected_event(self):
        log = EventLog()
        log.record(SimulationEvent(time=3.0, kind="sample"))
        with pytest.raises(SimulationError):
            log.record(SimulationEvent(time=1.0, kind="sample"))
        log.record(SimulationEvent(time=3.0, kind="sample"))
        log.record(SimulationEvent(time=7.0, kind="sample"))
        assert len(log) == 3
