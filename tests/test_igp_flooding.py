"""Tests for the LSA flooding fabric."""

import pytest

from repro.igp.flooding import FloodingFabric
from repro.igp.lsa import RouterLsa
from repro.igp.network import IgpNetwork
from repro.topologies.demo import build_demo_topology
from repro.util.errors import TopologyError
from repro.util.timeline import Timeline


class TestFabricBasics:
    def test_unbound_fabric_refuses_to_send(self):
        fabric = FloodingFabric(build_demo_topology(), Timeline())
        with pytest.raises(TopologyError):
            fabric.send("A", "B", RouterLsa(origin="A"))

    def test_injection_at_unknown_router_rejected(self):
        fabric = FloodingFabric(build_demo_topology(), Timeline())
        fabric.bind(lambda router, lsa, neighbor: None)
        with pytest.raises(TopologyError):
            fabric.inject("ghost", RouterLsa(origin="ctrl"))

    def test_delivery_happens_after_link_delay(self):
        topology = build_demo_topology()
        timeline = Timeline()
        fabric = FloodingFabric(topology, timeline, processing_delay=0.002)
        deliveries = []
        fabric.bind(lambda router, lsa, neighbor: deliveries.append((timeline.now, router, neighbor)))
        fabric.send("A", "B", RouterLsa(origin="A"))
        assert deliveries == []  # nothing delivered before the timeline runs
        timeline.run_all()
        assert len(deliveries) == 1
        time, router, neighbor = deliveries[0]
        assert router == "B" and neighbor == "A"
        assert time == pytest.approx(topology.link("A", "B").delay + 0.002)

    def test_flood_from_skips_excluded_neighbor(self):
        topology = build_demo_topology()
        timeline = Timeline()
        fabric = FloodingFabric(topology, timeline)
        deliveries = []
        fabric.bind(lambda router, lsa, neighbor: deliveries.append(router))
        fabric.flood_from("B", RouterLsa(origin="B"), exclude="A")
        timeline.run_all()
        assert sorted(deliveries) == ["R2", "R3"]

    def test_stats_count_messages_and_bytes(self):
        topology = build_demo_topology()
        timeline = Timeline()
        fabric = FloodingFabric(topology, timeline)
        fabric.bind(lambda router, lsa, neighbor: None)
        fabric.flood_from("A", RouterLsa(origin="A", links=(("B", 1.0),)))
        stats = fabric.stats.snapshot()
        assert stats["messages_sent"] == 2  # A has two neighbors: B and R1
        assert stats["bytes_sent"] > 0


class TestDomainWideFlooding:
    def test_every_router_learns_every_router_lsa(self):
        network = IgpNetwork(build_demo_topology())
        network.start()
        network.converge()
        for name, process in network.routers.items():
            for other in network.topology.routers:
                assert process.lsdb.get(RouterLsa(origin=other).key) is not None, (
                    f"{name} never learnt the router LSA of {other}"
                )

    def test_duplicates_are_suppressed_not_reflooded(self):
        network = IgpNetwork(build_demo_topology())
        network.start()
        network.converge()
        stats = network.flooding_stats
        # Flooding over a meshy topology necessarily delivers duplicates, but
        # they must be absorbed (suppressed) rather than re-flooded forever.
        assert stats["duplicates_suppressed"] > 0
        assert stats["deliveries"] == stats["messages_sent"]
