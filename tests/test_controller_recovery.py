"""Differential suite: controller crash/recovery vs. a never-crashed twin.

The tentpole robustness guarantee: a controller that crashes (losing every
piece of volatile state — installed-lie registry, plan cache, naming
counter) and then resynchronises *from the network's LSDB*
(:meth:`~repro.core.controller.FibbingController.resync`) must be
indistinguishable from a controller that never crashed.  Two live worlds
replay the same seeded requirement churn; world A crashes and resyncs every
``CRASH_EVERY`` waves, world B never does.  The suite compares the full
installed lie sets (fake-node names included, via
:func:`~repro.core.lies.lie_set_digest`) every few waves and the complete
per-router FIBs and split ratios at the end — bit-identical, for both the
single controller and the sharded facade.
"""

import random
from types import SimpleNamespace

import pytest

from repro.core.controller import FibbingController
from repro.core.lies import lie_set_digest
from repro.core.scheduler import ControlLoopScheduler
from repro.core.shard import ShardedFibbingController
from repro.experiments.scaling import build_ring_topology, churn_requirement
from repro.igp.lsa import FakeNodeLsa
from repro.igp.network import IgpNetwork
from repro.util.errors import ControllerError

RING = 8
COUNT = 12
WAVES = 250
CRASH_EVERY = 50
CHECK_EVERY = 10


def build_world(shards=0):
    topology = build_ring_topology(RING, COUNT)
    network = IgpNetwork(topology)
    network.start()
    network.converge()
    if shards:
        controller = ShardedFibbingController(
            topology, shards=shards, network=network, attachment="R0"
        )
    else:
        controller = FibbingController(topology, network=network, attachment="R0")
    return network, controller


def fib_state(network):
    """Value snapshot of every router's full FIB (frozen dataclasses)."""
    return {
        name: {prefix: fib.lookup(prefix) for prefix in fib.prefixes}
        for name, fib in network.fibs().items()
    }


def split_ratio_state(network):
    """Per-router, per-prefix traffic split ratios (the data-plane rates)."""
    return {
        name: {prefix: fib.split_ratios(prefix) for prefix in fib.prefixes}
        for name, fib in network.fibs().items()
    }


def run_differential(shards=0, waves=WAVES, crash_every=CRASH_EVERY, seed=0):
    """Replay one seeded churn through a crashing and a pristine world."""
    net_a, ctl_a = build_world(shards)  # crashes and resyncs
    net_b, ctl_b = build_world(shards)  # never crashes
    rng = random.Random(seed)
    generations = {index: 0 for index in range(COUNT)}
    crashes = 0
    for wave in range(waves):
        if wave and wave % crash_every == 0:
            ctl_a.detach()
            ctl_a.resync()
            crashes += 1
        target = rng.randrange(COUNT)
        generations[target] += 1
        for ctl, net in ((ctl_a, net_a), (ctl_b, net_b)):
            ctl.enforce(
                [
                    churn_requirement(net.topology, index, generations[index])
                    for index in range(COUNT)
                ]
            )
            net.converge()
        if wave % CHECK_EVERY == 0 or wave == waves - 1:
            assert lie_set_digest(ctl_a.active_lies()) == lie_set_digest(
                ctl_b.active_lies()
            ), f"lie sets diverged at wave {wave} (shards={shards})"
    assert crashes == (waves - 1) // crash_every
    assert fib_state(net_a) == fib_state(net_b)
    assert split_ratio_state(net_a) == split_ratio_state(net_b)
    return ctl_a, ctl_b, crashes


class TestCrashRecoveryDifferential:
    def test_single_controller_crash_resync_is_bit_identical(self):
        ctl_a, ctl_b, crashes = run_differential(shards=0)
        stats = ctl_a.stats.snapshot()
        assert stats["ctl_resyncs"] == crashes
        assert stats["ctl_resync_lies_recovered"] > 0
        # The pristine world never resynced.
        assert ctl_b.stats.snapshot()["ctl_resyncs"] == 0

    def test_sharded_facade_crash_resync_is_bit_identical(self):
        ctl_a, ctl_b, crashes = run_differential(shards=3)
        stats = ctl_a.stats.snapshot()
        assert stats["ctl_resyncs"] == crashes
        assert stats["ctl_resync_lies_recovered"] > 0
        assert ctl_b.stats.snapshot()["ctl_resyncs"] == 0

    @pytest.mark.parametrize("seed", [1, 2])
    def test_other_seeds_stay_identical_on_shorter_churns(self, seed):
        run_differential(shards=0, waves=60, crash_every=20, seed=seed)


class TestDetachSemantics:
    def test_enforce_while_detached_raises(self):
        _net, controller = build_world()
        controller.enforce([churn_requirement(controller.topology, 0, 0)])
        controller.detach()
        with pytest.raises(ControllerError):
            controller.enforce([churn_requirement(controller.topology, 0, 1)])

    def test_sharded_enforce_while_detached_raises(self):
        _net, facade = build_world(shards=3)
        facade.enforce([churn_requirement(facade.topology, 0, 0)])
        facade.detach()
        with pytest.raises(ControllerError):
            facade.enforce([churn_requirement(facade.topology, 0, 1)])

    def test_detach_forgets_the_lies_but_the_network_keeps_them(self):
        net, controller = build_world()
        controller.enforce(
            [churn_requirement(controller.topology, index, 1) for index in range(4)]
        )
        net.converge()
        installed = len(controller.active_lies())
        assert installed > 0
        controller.detach()
        # The crashed controller's view is empty; the routers keep forwarding
        # on the fake LSAs in their LSDBs (the paper's robustness property).
        assert controller.active_lies() == []
        lsdb = net.routers["R0"].lsdb
        surviving = [
            lsa
            for lsa in lsdb.live_lsas()
            if isinstance(lsa, FakeNodeLsa) and lsa.origin == controller.name
        ]
        assert len(surviving) == installed

    def test_resync_restores_the_exact_lie_set(self):
        net, controller = build_world()
        controller.enforce(
            [churn_requirement(controller.topology, index, 1) for index in range(6)]
        )
        net.converge()
        before = lie_set_digest(controller.active_lies())
        controller.detach()
        recovered = controller.resync()
        assert recovered == len(controller.active_lies())
        assert lie_set_digest(controller.active_lies()) == before

    def test_resync_recovers_the_naming_counter_from_withdrawn_lsas(self):
        """Fresh lies after a resync must not reuse retired fake-node names.

        Withdraw every lie, crash, resync (zero live lies recovered), then
        enforce a new requirement: the new fake-node names must continue the
        committed sequence, which only survives in the *withdrawn* LSA
        instances of the LSDB.
        """
        net, controller = build_world()
        controller.enforce([churn_requirement(controller.topology, 0, 1)])
        net.converge()
        names_before = {lsa.fake_node for lsa in controller.active_lies()}
        assert names_before, "the first requirement must install lies"
        controller.clear_all()  # retract everything
        net.converge()
        controller.detach()
        assert controller.resync() == 0
        controller.enforce([churn_requirement(controller.topology, 0, 2)])
        net.converge()
        names_after = {lsa.fake_node for lsa in controller.active_lies()}
        assert names_after, "the re-enforced requirement must install lies"
        assert not names_before & names_after, "retired names must not be reused"

    def test_resync_without_a_network_raises(self):
        topology = build_ring_topology(RING, COUNT)
        controller = FibbingController(topology)
        controller.detach()
        with pytest.raises(ControllerError):
            controller.resync()


class TestStaggerLinkFailure:
    def test_link_failure_during_stagger_drops_dead_adjacency_lies(self):
        """A sub-wave pending during a link failure must not inject lies
        whose anchor adjacency died — they are filtered (counted as
        ``ctl_stagger_lsas_dropped``) and the network converges cleanly
        instead of crashing FIB resolution on an unreachable forwarding
        address."""
        net, facade = build_world(shards=3)
        timeline = net.timeline
        scheduler = ControlLoopScheduler(
            SimpleNamespace(controller=facade), timeline, shard_stagger=0.5
        )
        pending = []

        def capturing_injector(attachment, groups):
            groups = list(groups)
            for _index, messages in groups[1:]:
                pending.extend(messages)
            scheduler._staggered_inject(attachment, groups)

        facade.wave_injector = capturing_injector
        try:
            facade.enforce(
                [churn_requirement(facade.topology, index, 1) for index in range(COUNT)]
            )
        finally:
            facade.wave_injector = None
        victims = [
            lsa
            for lsa in pending
            if isinstance(lsa, FakeNodeLsa) and not lsa.withdrawn
        ]
        assert victims, "the staggered wave must leave fresh lies pending"
        victim = victims[0]
        net.fail_link(victim.anchor, victim.forwarding_address)
        net.converge()  # runs the pending sub-waves over the failed topology
        stats = facade.stats.snapshot()
        assert stats["ctl_stagger_lsas_dropped"] >= 1
        # Every router still resolves a full FIB — the dropped lie never
        # reached the LSDBs, so no forwarding address dangles.
        fib_state(net)

    def test_no_failure_ships_every_pending_subwave_unfiltered(self):
        net, facade = build_world(shards=3)
        timeline = net.timeline
        scheduler = ControlLoopScheduler(
            SimpleNamespace(controller=facade), timeline, shard_stagger=0.5
        )
        facade.wave_injector = scheduler._staggered_inject
        try:
            facade.enforce(
                [churn_requirement(facade.topology, index, 1) for index in range(COUNT)]
            )
        finally:
            facade.wave_injector = None
        net.converge()
        assert facade.stats.snapshot()["ctl_stagger_lsas_dropped"] == 0
        # All planned lies made it into the attachment LSDB.
        lsdb = net.routers["R0"].lsdb
        live = [
            lsa
            for lsa in lsdb.live_lsas()
            if isinstance(lsa, FakeNodeLsa) and lsa.origin == facade.name
        ]
        assert len(live) == len(facade.active_lies())
