"""Tests for the asynchronous control loop (repro.core.scheduler).

Two families:

* **Differential** — at the degenerate knob point (zero reaction latency,
  zero stagger, zero jitter) the :class:`ControlLoopScheduler` wiring must be
  byte-identical to the historical direct ``balancer.attach(alarm)`` wiring,
  and the :class:`ConvergenceMonitor` must be a pure observer whose presence
  changes nothing but its own counters.
* **Behavioural** — the timing knobs do what they claim: deferred reactions
  execute exactly ``reaction_latency`` later, supersession cancels pending
  reactions (and its starvation mode is reachable when the alarm cooldown is
  shorter than the latency), staggered shard waves still converge to the
  same lies, and the convergence monitor's accounting is correct on a
  scripted sequence of inject/FIB events.
"""

import pytest

import repro.experiments.fig2 as fig2
from repro.core.scheduler import ControlLoopScheduler, ConvergenceMonitor
from repro.experiments.fig2 import run_demo_timeseries
from repro.util.errors import ControllerError, ValidationError
from repro.util.timeline import Timeline

SEED = 7


def signature(result):
    """The comparison surface for differential runs (all bit-exact fields)."""
    return {
        "alarms": [alarm.time for alarm in result.alarms],
        "actions": [(action.time, action.completed_time) for action in result.actions],
        "link_counters": result.link_counters,
        "series": result.throughput_series,
        "lie_digests": result.lie_digests,
        "stall": result.qoe.total_stall_time,
        "lies_active": result.lies_active,
    }


class _DirectWiring:
    """The historical synchronous wiring: ``balancer.attach(alarm)``.

    Stands in for :class:`ControlLoopScheduler` (same constructor shape) to
    prove the scheduler's degenerate point reproduces it bit for bit.
    """

    def __init__(self, balancer, timeline, reaction_latency=0.0, shard_stagger=0.0, supersede=True):
        assert reaction_latency == 0.0 and shard_stagger == 0.0
        self.balancer = balancer

    def attach(self, alarm):
        self.balancer.attach(alarm)


MONITOR_KEYS = (
    "ctl_converge_seconds",
    "ctl_converge_events",
    "ctl_transient_loops",
    "ctl_transient_blackholes",
)


class TestDifferential:
    @pytest.mark.parametrize("shards", [0, 2])
    def test_zero_knob_scheduler_matches_direct_wiring(self, monkeypatch, shards):
        asynchronous = run_demo_timeseries(seed=SEED, controller_shards=shards)
        monkeypatch.setattr(fig2, "ControlLoopScheduler", _DirectWiring)
        direct = run_demo_timeseries(seed=SEED, controller_shards=shards)
        assert signature(asynchronous) == signature(direct)
        # Including every counter: the scheduler's synchronous path neither
        # defers nor supersedes anything.
        assert asynchronous.controller_stats == direct.controller_stats
        assert asynchronous.controller_stats.get("ctl_reactions_deferred", 0) == 0

    def test_convergence_monitor_is_a_pure_observer(self, monkeypatch):
        observed = run_demo_timeseries(seed=SEED)
        monkeypatch.setattr(fig2, "ConvergenceMonitor", lambda *args, **kwargs: None)
        unobserved = run_demo_timeseries(seed=SEED)
        assert signature(observed) == signature(unobserved)
        # Only the monitor's own counters may differ.
        strip = lambda stats: {k: v for k, v in stats.items() if k not in MONITOR_KEYS}
        assert strip(observed.controller_stats) == strip(unobserved.controller_stats)
        assert observed.controller_stats["ctl_converge_events"] > 0
        assert observed.controller_stats["ctl_converge_seconds"] > 0.0
        assert unobserved.controller_stats["ctl_converge_events"] == 0

    def test_jittered_polls_are_seed_deterministic_and_move_the_alarms(self):
        jittered = run_demo_timeseries(seed=SEED, poll_jitter=0.25)
        again = run_demo_timeseries(seed=SEED, poll_jitter=0.25)
        assert signature(jittered) == signature(again)
        plain = run_demo_timeseries(seed=SEED)
        assert [a.time for a in jittered.alarms] != [a.time for a in plain.alarms]
        # The jittered loop still detects and mitigates the surge.
        assert jittered.actions and jittered.lies_active > 0


class TestDeferredReactions:
    def test_reactions_execute_exactly_reaction_latency_later(self):
        result = run_demo_timeseries(seed=SEED, reaction_latency=0.5)
        assert result.actions
        for action in result.actions:
            assert action.completed_time - action.time == pytest.approx(0.5)
            assert action.reaction_latency == pytest.approx(0.5)
        stats = result.controller_stats
        assert stats["ctl_reactions_deferred"] >= len(result.actions)
        # The deferred loop converges to the same lies as the synchronous one
        # (it reacts to the same congestion, only later).
        assert result.lie_digests == run_demo_timeseries(seed=SEED).lie_digests

    def test_supersession_starves_when_cooldown_beats_latency(self):
        # With reaction_latency (21 s) far above the alarm cooldown (3 s),
        # every re-fire supersedes the still-pending reaction: the loop
        # livelocks by design, and the counters expose it.
        result = run_demo_timeseries(seed=SEED, reaction_latency=21.0, duration=60.0)
        stats = result.controller_stats
        assert result.actions == []
        assert stats["ctl_reactions_deferred"] == len(result.alarms)
        assert stats["ctl_supersessions"] == stats["ctl_reactions_deferred"] - 1

    def test_supersede_false_keeps_the_pending_reaction(self):
        result = run_demo_timeseries(
            seed=SEED, reaction_latency=21.0, duration=60.0, supersede=False
        )
        stats = result.controller_stats
        # The first pending reaction survives all re-fires and completes
        # 21 s after its alarm, observing the *fresh* state at completion.
        assert len(result.actions) == 2
        assert result.actions[0].reaction_latency == pytest.approx(21.0)
        assert stats["ctl_supersessions"] == 0
        assert stats["ctl_reactions_deferred"] == len(result.actions)


class TestStaggeredShardWaves:
    def test_stagger_requires_a_sharded_controller(self):
        with pytest.raises(ControllerError):
            run_demo_timeseries(seed=SEED, shard_stagger=0.1, duration=5.0)

    def test_staggered_waves_converge_to_the_same_lies(self):
        atomic = run_demo_timeseries(seed=SEED, controller_shards=2)
        staggered = run_demo_timeseries(seed=SEED, controller_shards=2, shard_stagger=0.1)
        assert staggered.actions
        assert staggered.lie_digests == atomic.lie_digests
        # Stagger routes reactions through the deferred path.
        assert staggered.controller_stats["ctl_reactions_deferred"] >= len(staggered.actions)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValidationError):
            run_demo_timeseries(seed=SEED, reaction_latency=-1.0, duration=5.0)
        with pytest.raises(ValidationError):
            run_demo_timeseries(seed=SEED, controller_shards=2, shard_stagger=-0.1, duration=5.0)


class _StubNetwork:
    """Minimal on_inject/on_fib_change surface for the monitor's unit tests."""

    def __init__(self, timeline):
        self.timeline = timeline
        self._inject_listeners = []
        self._fib_listeners = []

    def on_inject(self, listener):
        self._inject_listeners.append(listener)

    def on_fib_change(self, listener):
        self._fib_listeners.append(listener)

    def fire_inject(self, at_router="R3", count=1):
        for listener in self._inject_listeners:
            listener(at_router, count)

    def fire_fib_change(self, router="A"):
        for listener in self._fib_listeners:
            listener(router, None)


class _StubEngine:
    def __init__(self):
        self.flaws = ({}, {})

    def routing_flaws(self):
        return self.flaws


class TestConvergenceMonitorAccounting:
    def make(self):
        from repro.core.reconciler import CtlCounters

        timeline = Timeline()
        network = _StubNetwork(timeline)
        engine = _StubEngine()
        counters = CtlCounters()
        ConvergenceMonitor(network, engine, counters=counters)
        return timeline, network, engine, counters

    def test_fib_changes_before_any_wave_are_not_charged(self):
        timeline, network, engine, counters = self.make()
        timeline.schedule(1.0, network.fire_fib_change)
        timeline.run_all()
        assert counters.converge_events == 0
        assert counters.converge_seconds == 0.0

    def test_wave_accounting_and_transient_baselining(self):
        timeline, network, engine, counters = self.make()
        # A loop that exists *before* the wave starts is pre-existing, not a
        # transient caused by it: the inject baselines it away.
        engine.flaws = ({"pre": 2}, {})
        timeline.schedule(0.0, network.fire_inject)

        def first_install():
            engine.flaws = ({"pre": 2, "new": 3}, {"hole": 1})
            network.fire_fib_change()

        def second_install():
            network.fire_fib_change()  # same flaws: nothing newly seen

        timeline.schedule(1.0, first_install)
        timeline.schedule(1.5, second_install)
        timeline.run_all()
        assert counters.converge_events == 2
        assert counters.converge_seconds == pytest.approx(1.5)
        assert counters.transient_loops == 3  # "new" only, weighted
        assert counters.transient_blackholes == 1

    def test_idle_time_between_waves_is_never_charged(self):
        timeline, network, engine, counters = self.make()
        timeline.schedule(0.0, network.fire_inject)
        timeline.schedule(1.0, network.fire_fib_change)
        # Ten idle seconds, then a second wave: its first install charges
        # only the gap since the *new* inject marker.
        timeline.schedule(11.0, network.fire_inject)
        timeline.schedule(11.5, network.fire_fib_change)
        timeline.run_all()
        assert counters.converge_events == 2
        assert counters.converge_seconds == pytest.approx(1.0 + 0.5)


class TestSchedulerValidation:
    class _Balancer:
        def __init__(self, controller):
            self.controller = controller

    def test_stagger_on_a_plain_controller_is_rejected_up_front(self):
        plain = object()  # no wave_injector hook
        with pytest.raises(ControllerError):
            ControlLoopScheduler(self._Balancer(plain), Timeline(), shard_stagger=0.1)

    def test_stagger_on_a_sharded_controller_is_accepted(self):
        class _Sharded:
            wave_injector = None

        scheduler = ControlLoopScheduler(
            self._Balancer(_Sharded()), Timeline(), shard_stagger=0.1
        )
        assert scheduler.shard_stagger == 0.1

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            ControlLoopScheduler(self._Balancer(object()), Timeline(), reaction_latency=-0.5)
