"""Tests for the parameter-grid sweep harness (``experiments/sweep.py``)."""

import json

import pytest

from repro.experiments.sweep import (
    EXPERIMENTS,
    PARALLEL_MODES,
    SWEEPS,
    GridSpec,
    RunSpec,
    SweepGrid,
    SweepHarness,
    merge_counter_snapshots,
    run_digest,
)
from repro.util.artifacts import BENCH_SCHEMA, load_bench_json
from repro.util.errors import SweepError

QUICK = SWEEPS["quick"]


def harness(grid=QUICK, parallel="serial", **kwargs):
    return SweepHarness(grid, parallel=parallel, **kwargs)


class TestGridExpansion:
    def test_quick_grid_is_2_seeds_by_2_points_per_axis(self):
        runs = harness().expand()
        # 2 axes x 2 seeds x 2 grid points, plus the flashcrowd-classes,
        # reaction and chaos smoke rows.
        assert len(runs) == 11
        assert [run.index for run in runs] == list(range(11))

    def test_expansion_order_is_deterministic(self):
        spec = GridSpec.build("flashcrowd", seeds=(7, 3), pods=[2, 4], flow_counts=[(10,)])
        combos = spec.expand()
        # Seeds vary slowest (declaration order), parameters fastest
        # (cartesian product in sorted-name order).
        assert [seed for seed, _ in combos] == [7, 7, 3, 3]
        assert [dict(params)["pods"] for _, params in combos] == [2, 4, 2, 4]

    def test_lists_are_frozen_to_tuples(self):
        spec = GridSpec.build("flashcrowd", seeds=[0], flow_counts=[[10, 20]])
        ((_, params),) = spec.expand()
        assert dict(params)["flow_counts"] == (10, 20)

    def test_empty_seeds_rejected(self):
        with pytest.raises(SweepError):
            GridSpec.build("flashcrowd", seeds=())

    def test_empty_choice_list_rejected(self):
        with pytest.raises(SweepError):
            GridSpec.build("flashcrowd", seeds=(0,), pods=[])

    def test_unknown_experiment_rejected_at_expansion(self):
        grid = SweepGrid(name="bad", specs=(GridSpec.build("no-such", seeds=(0,)),))
        with pytest.raises(SweepError, match="no-such"):
            grid.expand()

    def test_run_labels_are_readable(self):
        run = RunSpec(index=0, experiment="reconcile", seed=3, params=(("waves", 6),))
        assert run.label() == "reconcile[seed=3, waves=6]"


class TestHarnessValidation:
    def test_rejects_unknown_parallel_mode(self):
        with pytest.raises(SweepError):
            SweepHarness(QUICK, parallel="gpu")

    def test_rejects_non_positive_workers(self):
        with pytest.raises(SweepError):
            SweepHarness(QUICK, max_workers=0)

    def test_parallel_modes_match_shard_knob(self):
        from repro.core.shard import PARALLEL_MODES as SHARD_MODES

        assert set(PARALLEL_MODES) == set(SHARD_MODES)


class TestCounterMerge:
    def test_merge_is_keywise_sum(self):
        merged = merge_counter_snapshots([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert merged == {"a": 1, "b": 5, "c": 4}

    def test_merged_counters_equal_hand_summed_run_snapshots(self):
        report = harness().run()
        hand_summed = {}
        for run in report.runs:
            for key, value in run.counters.items():
                hand_summed[key] = hand_summed.get(key, 0) + value
        assert report.merged_counters == hand_summed

    def test_run_digest_ignores_timing_fields(self):
        rows = [{"flows": 10, "full_seconds": 1.23, "nested": {"incremental_seconds": 9}}]
        other = [{"flows": 10, "full_seconds": 4.56, "nested": {"incremental_seconds": 1}}]
        assert run_digest(rows) == run_digest(other)
        assert run_digest(rows) != run_digest([{"flows": 11}])


class TestDeterminism:
    def test_serial_and_process_sweeps_are_byte_identical(self):
        serial = harness(parallel="serial").run()
        process = harness(parallel="process", max_workers=4).run()
        assert serial.determinism_diff(process) == []
        assert [r.digest for r in serial.runs] == [r.digest for r in process.runs]
        assert serial.merged_counters == process.merged_counters
        assert serial.sweep_digest == process.sweep_digest

    def test_thread_mode_matches_serial(self):
        serial = harness(parallel="serial").run()
        threaded = harness(parallel="thread", max_workers=4).run()
        assert serial.determinism_diff(threaded) == []

    def test_seed_variation_changes_digests(self):
        def digest_for(seed):
            grid = SweepGrid(
                name="probe",
                specs=(
                    GridSpec.build(
                        "split-approx", seeds=(seed,), table_sizes=[(2, 4)], samples=[50]
                    ),
                ),
            )
            (run,) = harness(grid).run().runs
            return run.digest

        assert digest_for(0) != digest_for(1)
        assert digest_for(0) == digest_for(0)

    def test_determinism_diff_reports_digest_mismatch(self):
        import dataclasses

        serial = harness().run()
        runs = list(serial.runs)
        runs[0] = dataclasses.replace(runs[0], digest="0" * 64)
        tampered = dataclasses.replace(serial, runs=runs)
        problems = serial.determinism_diff(tampered)
        assert len(problems) == 1
        assert "digest mismatch" in problems[0]


class TestFailureSurfacing:
    @pytest.mark.parametrize("mode", ["serial", "process"])
    def test_failed_run_fails_the_sweep_with_its_traceback(self, mode):
        grid = SweepGrid(
            name="failing", specs=(GridSpec.build("selftest-fail", seeds=(0, 1)),)
        )
        with pytest.raises(SweepError) as excinfo:
            SweepHarness(grid, parallel=mode, max_workers=2).run()
        message = str(excinfo.value)
        # The original worker traceback is embedded, not a bare pool error.
        assert "RuntimeError" in message
        assert "sweep selftest failure" in message
        assert "selftest-fail[seed=0" in message


class TestReportArtifact:
    def test_bench_json_round_trip(self, tmp_path):
        report = harness().run()
        path = report.save(directory=tmp_path)
        assert path == tmp_path / "BENCH_quick.json"
        payload = load_bench_json(path)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["kind"] == "sweep"
        assert payload["name"] == "quick"
        assert payload["git"]
        assert payload["run_count"] == len(report.runs)
        assert payload["sweep_digest"] == report.sweep_digest
        assert payload["merged_counters"] == report.merged_counters
        assert [run["digest"] for run in payload["runs"]] == [
            run.digest for run in report.runs
        ]
        # JSON turns tuples into lists; compare against the normalised form.
        assert payload["grid"] == json.loads(json.dumps(report.grid, default=str))

    def test_bench_json_is_valid_sorted_json(self, tmp_path):
        path = harness().run().save(directory=tmp_path)
        text = path.read_text()
        payload = json.loads(text)
        assert text == json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"


class TestPredefinedSweeps:
    def test_all_sweeps_reference_registered_experiments(self):
        for grid in SWEEPS.values():
            for spec in grid.specs:
                assert spec.experiment in EXPERIMENTS
            assert grid.expand()  # expansion itself must not raise

    def test_registry_covers_the_scaling_ablations(self):
        assert {"flashcrowd", "reconcile", "shard", "lie-scaling", "fig2"} <= set(
            EXPERIMENTS
        )
