"""Tests for live topology events: link failures and weight changes."""

import pytest

from repro.igp.network import IgpNetwork
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.util.errors import TopologyError


@pytest.fixture
def live_network():
    network = IgpNetwork(build_demo_topology())
    network.start()
    network.converge()
    return network


class TestLinkFailure:
    def test_failure_reroutes_around_the_dead_link(self, live_network):
        assert live_network.fib_of("B").split_ratios(BLUE_PREFIX) == {"R2": 1.0}
        live_network.fail_link("B", "R2")
        live_network.converge()
        # B's best remaining path is B-R3-C (cost 3).
        assert live_network.fib_of("B").split_ratios(BLUE_PREFIX) == {"R3": 1.0}
        assert live_network.fib_of("B").lookup(BLUE_PREFIX).cost == pytest.approx(3.0)

    def test_failure_updates_upstream_routers_too(self, live_network):
        live_network.fail_link("B", "R2")
        live_network.converge()
        # A's path via B now costs 4; the A-R1-R4-C path also costs 4 -> ECMP.
        ratios = live_network.fib_of("A").split_ratios(BLUE_PREFIX)
        assert ratios == {"B": 0.5, "R1": 0.5}

    def test_failure_before_start_rejected(self):
        network = IgpNetwork(build_demo_topology())
        with pytest.raises(TopologyError):
            network.fail_link("B", "R2")

    def test_failing_unknown_link_rejected(self, live_network):
        with pytest.raises(TopologyError):
            live_network.fail_link("A", "C")

    def test_stale_lies_after_failure_must_be_withdrawn(self, live_network):
        """Lies do not adapt to topology changes by themselves.

        After R1-R4 fails, the Fig. 1c lies at A still steer 2/3 of the
        traffic toward R1, whose only remaining path to C goes back through
        A — a forwarding loop.  This is exactly why the controller must
        react to failures; once the stale lies are withdrawn, the IGP's own
        re-convergence restores loop-free delivery.
        """
        from repro.dataplane.flows import Flow
        from repro.dataplane.forwarding import route_flows_hashed

        lies = demo_lies()
        live_network.inject(lies, at_router="R3")
        live_network.converge()
        live_network.fail_link("R1", "R4")
        live_network.converge()

        flows = [Flow(flow_id=i, ingress="A", prefix=BLUE_PREFIX, demand=1.0) for i in range(20)]
        stale = route_flows_hashed(live_network.fibs(), flows)
        assert any(path.looped for path in stale.flow_paths.values())

        live_network.inject([lie.withdraw() for lie in lies], at_router="R3")
        live_network.converge()
        recovered = route_flows_hashed(live_network.fibs(), flows)
        assert all(path.delivered and not path.looped for path in recovered.flow_paths.values())

    def test_convergence_time_after_failure_is_short(self, live_network):
        from repro.igp.convergence import ConvergenceTracker

        tracker = ConvergenceTracker(live_network)
        tracker.start_episode("link-failure")
        live_network.fail_link("B", "R2")
        live_network.converge()
        episode = tracker.close_episode()
        assert 0 < episode.duration < 1.0


class TestLinkRestore:
    @staticmethod
    def _fib_state(network):
        """Value snapshot of every router's full FIB (frozen dataclasses)."""
        return {
            name: {prefix: fib.lookup(prefix) for prefix in fib.prefixes}
            for name, fib in network.fibs().items()
        }

    def test_restore_returns_to_pre_failure_fibs_byte_identically(self, live_network):
        before = self._fib_state(live_network)
        live_network.fail_link("B", "R2")
        live_network.converge()
        assert self._fib_state(live_network) != before
        live_network.restore_link("B", "R2")
        live_network.converge()
        assert self._fib_state(live_network) == before

    def test_restore_accepts_endpoints_in_either_order(self, live_network):
        before = self._fib_state(live_network)
        live_network.fail_link("B", "R2")
        live_network.converge()
        live_network.restore_link("R2", "B")
        live_network.converge()
        assert self._fib_state(live_network) == before

    def test_restore_before_start_rejected(self):
        network = IgpNetwork(build_demo_topology())
        with pytest.raises(TopologyError):
            network.restore_link("B", "R2")

    def test_restore_without_recorded_failure_rejected(self, live_network):
        with pytest.raises(TopologyError):
            live_network.restore_link("B", "R2")

    def test_restore_preserves_asymmetric_weights(self):
        # Make the pair asymmetric before starting, then round-trip it
        # through a failure: the restored links must carry the saved
        # per-direction weights, not a symmetric reconstruction.
        topology = build_demo_topology()
        topology.set_weight("B", "R2", 7, both_directions=False)
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        before = self._fib_state(network)
        network.fail_link("B", "R2")
        network.converge()
        network.restore_link("B", "R2")
        network.converge()
        assert topology.link("B", "R2").weight == 7
        assert topology.link("R2", "B").weight == 1
        assert self._fib_state(network) == before

    def test_repeated_fail_restore_cycles_are_stable(self, live_network):
        before = self._fib_state(live_network)
        for _ in range(3):
            live_network.fail_link("R1", "R4")
            live_network.converge()
            live_network.restore_link("R1", "R4")
            live_network.converge()
        assert self._fib_state(live_network) == before


class TestWeightChange:
    def test_weight_change_moves_traffic(self, live_network):
        # Making B-R2 expensive makes B prefer B-R3-C.
        live_network.change_weight("B", "R2", 10)
        live_network.converge()
        assert live_network.fib_of("B").split_ratios(BLUE_PREFIX) == {"R3": 1.0}

    def test_weight_change_affects_other_destinations_too(self, live_network):
        """The bluntness the paper criticises: a weight change is global."""
        from repro.topologies.demo import SOURCE_PREFIXES

        before = live_network.fib_of("R2").split_ratios(SOURCE_PREFIXES["S1"])
        live_network.change_weight("B", "R2", 10)
        live_network.converge()
        after = live_network.fib_of("R2").split_ratios(SOURCE_PREFIXES["S1"])
        assert before == {"B": 1.0}
        assert after != before  # R2 now reaches B's prefix through R3 or C

    def test_weight_change_before_start_rejected(self):
        network = IgpNetwork(build_demo_topology())
        with pytest.raises(TopologyError):
            network.change_weight("B", "R2", 5)
