"""Tests for repro.igp.kernel (array-compiled SPF/RIB kernels).

The numpy kernel must be *bit-identical* to the pure-Python oracle: same
float64 distances (same IEEE operation order), same ECMP next-hop and
predecessor sets, same RIB digests.  These tests compare the two kernels
on fixed topologies, seeded random graphs up to 1000 nodes, and under a
long churn driven through the version-aware caches.
"""

import random

import pytest

from repro.igp import kernel as kernel_mod
from repro.igp.graph import ComputationGraph
from repro.igp.rib import compute_rib, rib_digest
from repro.igp.spf import compute_spf
from repro.igp.spf_cache import SpfCache
from repro.topologies.demo import build_demo_topology, demo_lies
from repro.topologies.random import random_topology
from repro.util.errors import RoutingError, ValidationError
from repro.util.prefixes import Prefix

numpy_required = pytest.mark.skipif(
    not kernel_mod.NUMPY_AVAILABLE, reason="numpy not installed"
)


def assert_spf_equal(oracle, got, graph=None, router=None):
    """``got`` must match the oracle exactly (not approximately)."""
    assert dict(oracle.distance) == dict(got.distance)
    assert dict(oracle.next_hops) == dict(got.next_hops)
    assert dict(oracle.predecessors) == dict(got.predecessors)
    if graph is not None:
        digest_oracle = rib_digest(compute_rib(graph, router, oracle))
        digest_got = rib_digest(compute_rib(graph, router, got))
        assert digest_oracle == digest_got


def compute_with_kernel(graph, source):
    index = kernel_mod.CsrIndex.build(graph, kernel_mod.InternTable())
    return kernel_mod.compute_spf_arrays(graph, index, source)


class TestKernelResolution:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(kernel_mod.KERNEL_ENV, raising=False)
        assert kernel_mod.resolve_kernel(None) == "python"

    def test_env_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(kernel_mod.KERNEL_ENV, "numpy")
        if kernel_mod.NUMPY_AVAILABLE:
            assert kernel_mod.resolve_kernel(None) == "numpy"
        else:
            with pytest.raises(ValidationError):
                kernel_mod.resolve_kernel(None)

    def test_explicit_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernel_mod.KERNEL_ENV, "numpy")
        assert kernel_mod.resolve_kernel("python") == "python"

    def test_unknown_kernel_rejected(self, monkeypatch):
        monkeypatch.delenv(kernel_mod.KERNEL_ENV, raising=False)
        with pytest.raises(ValidationError):
            kernel_mod.resolve_kernel("fortran")

    def test_unknown_env_kernel_rejected(self, monkeypatch):
        monkeypatch.setenv(kernel_mod.KERNEL_ENV, "fortran")
        with pytest.raises(ValidationError):
            kernel_mod.resolve_kernel(None)

    def test_caches_resolve_at_construction(self, monkeypatch):
        monkeypatch.delenv(kernel_mod.KERNEL_ENV, raising=False)
        assert SpfCache().kernel == "python"
        if kernel_mod.NUMPY_AVAILABLE:
            assert SpfCache(kernel="numpy").kernel == "numpy"


class TestLongChainPaths:
    """Regression: ``paths_to`` recursed once per hop and blew the stack
    at ~1000 hops; it must now handle arbitrarily long chains."""

    HOPS = 1500

    def chain_graph(self):
        graph = ComputationGraph()
        for i in range(self.HOPS):
            graph.add_edge(f"n{i}", f"n{i + 1}", 1.0)
            graph.add_edge(f"n{i + 1}", f"n{i}", 1.0)
        return graph

    def test_long_chain_single_path(self):
        spf = compute_spf(self.chain_graph(), "n0")
        last = f"n{self.HOPS}"
        assert spf.distance_to(last) == float(self.HOPS)
        paths = spf.paths_to(last)  # would raise RecursionError before
        assert len(paths) == 1
        assert len(paths[0]) == self.HOPS + 1
        assert paths[0][0] == "n0" and paths[0][-1] == last

    @numpy_required
    def test_long_chain_single_path_numpy(self):
        graph = self.chain_graph()
        spf = compute_with_kernel(graph, "n0")
        paths = spf.paths_to(f"n{self.HOPS}")
        assert len(paths) == 1
        assert len(paths[0]) == self.HOPS + 1


@numpy_required
class TestComputeEquivalence:
    def test_demo_topology_all_sources(self):
        graph = ComputationGraph.from_topology(build_demo_topology(), demo_lies())
        for source in graph.real_nodes:
            oracle = compute_spf(graph, source)
            got = compute_with_kernel(graph, source)
            assert_spf_equal(oracle, got, graph, source)

    def test_ring_topology_all_sources(self):
        from repro.experiments.scaling import build_ring_topology

        graph = ComputationGraph.from_topology(build_ring_topology(16, 8))
        for source in graph.real_nodes:
            oracle = compute_spf(graph, source)
            got = compute_with_kernel(graph, source)
            assert_spf_equal(oracle, got, graph, source)

    def test_pod_topology_all_sources(self):
        from repro.experiments.scaling import build_pod_topology

        graph = ComputationGraph.from_topology(build_pod_topology(6))
        for source in graph.real_nodes:
            oracle = compute_spf(graph, source)
            got = compute_with_kernel(graph, source)
            assert_spf_equal(oracle, got, graph, source)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_100_nodes_all_sources(self, seed):
        topology = random_topology(100, edge_probability=0.05, seed=seed)
        graph = ComputationGraph.from_topology(topology)
        for source in topology.routers[:20]:
            oracle = compute_spf(graph, source)
            got = compute_with_kernel(graph, source)
            assert_spf_equal(oracle, got, graph, source)

    @pytest.mark.parametrize("size,sources", [(500, 4), (1000, 2)])
    def test_random_large_graphs(self, size, sources):
        topology = random_topology(size, edge_probability=4.0 / size, seed=11)
        graph = ComputationGraph.from_topology(topology)
        index = kernel_mod.CsrIndex.build(graph, kernel_mod.InternTable())
        for source in topology.routers[:sources]:
            oracle = compute_spf(graph, source)
            got = kernel_mod.compute_spf_arrays(graph, index, source)
            assert_spf_equal(oracle, got, graph, source)

    def test_unreachable_and_fake_nodes(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        graph.add_node("island")
        graph.add_fake_node(
            "fX", "B", 1.5, Prefix.parse("10.42.0.0/24"), 2.5, "B"
        )
        oracle = compute_spf(graph, "A")
        got = compute_with_kernel(graph, "A")
        assert_spf_equal(oracle, got, graph, "A")
        assert not got.reachable("island")
        with pytest.raises(RoutingError):
            got.distance_to("island")


@numpy_required
class TestChurnEquivalence:
    """Cache-driven repairs must track the oracle bit-for-bit under churn."""

    def test_update_path_matches_oracle(self):
        topology = random_topology(24, edge_probability=0.2, seed=5)
        graph = ComputationGraph.from_topology(topology)
        routers = list(topology.routers)
        edges = [(link.source, link.target) for link in topology.links]
        cache = SpfCache(kernel="numpy")
        rng = random.Random(17)
        live = []
        for event in range(25):
            roll = rng.random()
            if roll < 0.45:
                name = f"fk{event}"
                anchor = rng.choice(routers)
                graph.add_fake_node(
                    name,
                    anchor,
                    float(rng.randint(1, 4)),
                    Prefix.parse(f"10.{event % 200}.0.0/24"),
                    float(rng.randint(1, 8)),
                    anchor,
                )
                live.append(name)
            elif roll < 0.6 and live:
                graph.remove_fake_node(live.pop(rng.randrange(len(live))))
            else:
                u, v = rng.choice(edges)
                graph.add_edge(u, v, float(rng.randint(1, 15)))
            for source in routers:
                oracle = compute_spf(graph, source)
                got = cache.spf(graph, source)
                assert_spf_equal(oracle, got, graph, source)
        counters = cache.counters.snapshot()
        assert counters["spf_kernel_computes"] >= len(routers)
        assert counters["spf_kernel_updates"] > 0
        assert counters["spf_kernel_index_builds"] > 0

    def test_python_and_numpy_counter_trajectories_match(self):
        topology = random_topology(16, edge_probability=0.25, seed=9)
        graph_py = ComputationGraph.from_topology(topology)
        graph_np = ComputationGraph.from_topology(topology)
        py = SpfCache(kernel="python")
        np_ = SpfCache(kernel="numpy")
        routers = list(topology.routers)
        edges = [(link.source, link.target) for link in topology.links]
        rng = random.Random(3)
        for event in range(12):
            u, v = rng.choice(edges)
            cost = float(rng.randint(1, 12))
            graph_py.add_edge(u, v, cost)
            graph_np.add_edge(u, v, cost)
            for source in routers:
                assert_spf_equal(py.spf(graph_py, source), np_.spf(graph_np, source))
        ps, ns = py.counters.snapshot(), np_.counters.snapshot()
        for key in (
            "spf_cache_hits",
            "spf_incremental_updates",
            "spf_full_recomputes",
            "spf_fallbacks",
        ):
            assert ps[key] == ns[key], key


@numpy_required
class TestKernelCounters:
    def test_python_kernel_leaves_kernel_counters_zero(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        cache = SpfCache(kernel="python")
        for source in graph.real_nodes:
            cache.spf(graph, source)
        counters = cache.counters.snapshot()
        assert counters["spf_kernel_computes"] == 0
        assert counters["spf_kernel_updates"] == 0
        assert counters["spf_kernel_index_builds"] == 0

    def test_numpy_kernel_counts_computes_and_index_builds(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        cache = SpfCache(kernel="numpy")
        sources = graph.real_nodes
        for source in sources:
            cache.spf(graph, source)
        counters = cache.counters.snapshot()
        assert counters["spf_kernel_computes"] == len(sources)
        assert counters["spf_kernel_index_builds"] == 1  # shared across sources
        assert counters["spf_full_recomputes"] == len(sources)
