"""Tests for repro.util.prefixes."""

import pytest

from repro.util.errors import ValidationError
from repro.util.prefixes import Prefix, format_ipv4, longest_match, parse_ipv4


class TestParseFormat:
    def test_parse_simple_address(self):
        assert parse_ipv4("10.0.0.1") == (10 << 24) + 1

    def test_parse_zero_address(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_parse_broadcast_address(self):
        assert parse_ipv4("255.255.255.255") == (1 << 32) - 1

    def test_format_round_trip(self):
        for text in ["192.168.1.42", "8.8.8.8", "172.16.254.1"]:
            assert format_ipv4(parse_ipv4(text)) == text

    def test_parse_rejects_too_few_octets(self):
        with pytest.raises(ValidationError):
            parse_ipv4("10.0.0")

    def test_parse_rejects_octet_overflow(self):
        with pytest.raises(ValidationError):
            parse_ipv4("10.0.0.256")

    def test_parse_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            parse_ipv4("10.0.x.1")

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            format_ipv4(1 << 32)


class TestPrefixBasics:
    def test_parse_prefix_string(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.length == 8
        assert str(prefix) == "10.0.0.0/8"

    def test_bare_address_is_host_prefix(self):
        prefix = Prefix.parse("10.1.2.3")
        assert prefix.length == 32
        assert prefix.num_addresses == 1

    def test_network_address_is_masked(self):
        prefix = Prefix.parse("10.1.2.3/8")
        assert str(prefix) == "10.0.0.0/8"

    def test_interning_returns_same_object(self):
        assert Prefix.parse("10.0.0.0/24") is Prefix.parse("10.0.0.0/24")

    def test_equal_prefixes_hash_equal(self):
        assert hash(Prefix.parse("10.0.0.0/24")) == hash(Prefix(10 << 24, 24))

    def test_prefixes_are_immutable(self):
        prefix = Prefix.parse("10.0.0.0/24")
        with pytest.raises(AttributeError):
            prefix.length = 8

    def test_invalid_length_rejected(self):
        with pytest.raises(ValidationError):
            Prefix(0, 33)

    def test_invalid_length_string_rejected(self):
        with pytest.raises(ValidationError):
            Prefix.parse("10.0.0.0/abc")

    def test_ordering_is_by_network_then_length(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert sorted([c, b, a]) == [a, b, c]

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/24").num_addresses == 256

    def test_broadcast_address(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert format_ipv4(prefix.broadcast) == "10.0.0.255"

    def test_mask_value(self):
        assert Prefix.parse("0.0.0.0/0").mask == 0
        assert Prefix.parse("1.2.3.4/32").mask == (1 << 32) - 1


class TestContainment:
    def test_contains_address_inside(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains_address(parse_ipv4("10.200.3.4"))

    def test_does_not_contain_outside_address(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert not prefix.contains_address(parse_ipv4("11.0.0.1"))

    def test_contains_narrower_prefix(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_does_not_contain_wider_prefix(self):
        assert not Prefix.parse("10.1.0.0/16").contains(Prefix.parse("10.0.0.0/8"))

    def test_overlap_is_symmetric(self):
        wide = Prefix.parse("10.0.0.0/8")
        narrow = Prefix.parse("10.1.0.0/16")
        unrelated = Prefix.parse("192.168.0.0/16")
        assert wide.overlaps(narrow) and narrow.overlaps(wide)
        assert not wide.overlaps(unrelated)

    def test_default_route_contains_everything(self):
        assert Prefix.parse("0.0.0.0/0").contains(Prefix.parse("203.0.113.0/24"))


class TestSupernetSubnets:
    def test_supernet_one_bit(self):
        assert str(Prefix.parse("10.1.0.0/16").supernet()) == "10.0.0.0/15"

    def test_supernet_to_explicit_length(self):
        assert str(Prefix.parse("10.1.2.0/24").supernet(8)) == "10.0.0.0/8"

    def test_supernet_cannot_grow_longer(self):
        with pytest.raises(ValidationError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    def test_subnets_split_in_two(self):
        subnets = list(Prefix.parse("10.0.0.0/24").subnets())
        assert [str(s) for s in subnets] == ["10.0.0.0/25", "10.0.0.128/25"]

    def test_subnets_explicit_length(self):
        subnets = list(Prefix.parse("10.0.0.0/30").subnets(32))
        assert len(subnets) == 4

    def test_subnets_cannot_shrink(self):
        with pytest.raises(ValidationError):
            list(Prefix.parse("10.0.0.0/24").subnets(16))


class TestLongestMatch:
    def test_most_specific_wins(self):
        prefixes = [Prefix.parse("10.0.0.0/8"), Prefix.parse("10.1.0.0/16")]
        match = longest_match(prefixes, parse_ipv4("10.1.2.3"))
        assert str(match) == "10.1.0.0/16"

    def test_no_match_returns_none(self):
        prefixes = [Prefix.parse("10.0.0.0/8")]
        assert longest_match(prefixes, parse_ipv4("192.0.2.1")) is None
