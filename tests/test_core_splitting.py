"""Tests for splitting-ratio approximation."""

import pytest

from repro.core.splitting import approximate_ratios, split_error, weights_to_fractions
from repro.util.errors import ControllerError, ValidationError


class TestApproximateRatios:
    def test_exact_one_third_two_thirds(self):
        assert approximate_ratios({"B": 1 / 3, "R1": 2 / 3}, max_entries=16) == {"B": 1, "R1": 2}

    def test_even_split_uses_two_entries(self):
        assert approximate_ratios({"R2": 0.5, "R3": 0.5}, max_entries=16) == {"R2": 1, "R3": 1}

    def test_single_next_hop(self):
        assert approximate_ratios({"X": 1.0}, max_entries=16) == {"X": 1}

    def test_unnormalized_input_accepted(self):
        assert approximate_ratios({"X": 20.0, "Y": 10.0}, max_entries=16) == {"X": 2, "Y": 1}

    def test_prefers_fewest_entries_among_equal_error(self):
        # 0.5/0.5 is representable with 2, 4, 6, ... entries; 2 must win.
        weights = approximate_ratios({"X": 0.5, "Y": 0.5}, max_entries=32)
        assert sum(weights.values()) == 2

    def test_respects_table_size_of_one(self):
        weights = approximate_ratios({"X": 0.6, "Y": 0.4}, max_entries=1)
        assert weights == {"X": 1}

    def test_small_table_approximates(self):
        weights = approximate_ratios({"X": 0.7, "Y": 0.3}, max_entries=4)
        assert sum(weights.values()) <= 4
        assert split_error({"X": 0.7, "Y": 0.3}, weights) <= 0.2

    def test_larger_table_never_increases_error(self):
        target = {"a": 0.55, "b": 0.30, "c": 0.15}
        previous_error = None
        for size in [2, 4, 8, 16, 32]:
            error = split_error(target, approximate_ratios(target, max_entries=size))
            if previous_error is not None:
                assert error <= previous_error + 1e-12
            previous_error = error

    def test_exact_sixteenths_with_large_table(self):
        target = {"a": 5 / 16, "b": 11 / 16}
        weights = approximate_ratios(target, max_entries=16)
        assert split_error(target, weights) == pytest.approx(0.0, abs=1e-9)

    def test_zero_fraction_dropped(self):
        weights = approximate_ratios({"X": 0.8, "Y": 0.2, "Z": 0.0}, max_entries=8)
        assert "Z" not in weights

    def test_all_zero_rejected(self):
        with pytest.raises(ValidationError):
            approximate_ratios({"X": 0.0}, max_entries=4)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValidationError):
            approximate_ratios({"X": -0.5, "Y": 1.5}, max_entries=4)

    def test_invalid_table_size_rejected(self):
        with pytest.raises(ControllerError):
            approximate_ratios({"X": 1.0}, max_entries=0)


class TestErrorAndFractions:
    def test_weights_to_fractions_normalises(self):
        assert weights_to_fractions({"a": 1, "b": 3}) == {"a": 0.25, "b": 0.75}

    def test_weights_to_fractions_rejects_zero_total(self):
        with pytest.raises(ValidationError):
            weights_to_fractions({"a": 0})

    def test_split_error_zero_for_exact_match(self):
        assert split_error({"a": 0.25, "b": 0.75}, {"a": 1, "b": 3}) == pytest.approx(0.0)

    def test_split_error_two_for_disjoint_supports(self):
        assert split_error({"a": 1.0}, {"b": 1}) == pytest.approx(2.0)

    def test_split_error_is_symmetric_in_magnitude(self):
        error = split_error({"a": 0.5, "b": 0.5}, {"a": 3, "b": 1})
        assert error == pytest.approx(0.5)
