"""Tests for repro.util.validation."""

import math

import pytest

from repro.util.errors import ValidationError
from repro.util.validation import (
    check_fraction,
    check_in,
    check_non_negative,
    check_not_empty,
    check_optional_positive,
    check_positive,
    check_type,
    require,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never shown")

    def test_raises_with_message(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")


class TestNumericChecks:
    def test_positive_accepts_positive(self):
        assert check_positive(3.5, "x") == 3.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive(0, "x")

    def test_positive_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1, "x")

    def test_positive_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive(float("nan"), "x")

    def test_positive_rejects_infinity(self):
        with pytest.raises(ValidationError):
            check_positive(math.inf, "x")

    def test_positive_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive(True, "x")

    def test_positive_rejects_string(self):
        with pytest.raises(ValidationError):
            check_positive("3", "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "x")

    def test_fraction_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0
        with pytest.raises(ValidationError):
            check_fraction(1.2, "x")

    def test_optional_positive_allows_none(self):
        assert check_optional_positive(None, "x") is None

    def test_optional_positive_checks_value(self):
        with pytest.raises(ValidationError):
            check_optional_positive(-1, "x")


class TestContainerChecks:
    def test_check_in_accepts_member(self):
        assert check_in("b", ["a", "b"], "mode") == "b"

    def test_check_in_rejects_non_member(self):
        with pytest.raises(ValidationError, match="mode"):
            check_in("c", ["a", "b"], "mode")

    def test_check_type_accepts_instance(self):
        assert check_type(3, int, "x") == 3

    def test_check_type_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="int"):
            check_type("3", int, "x")

    def test_check_not_empty_accepts_non_empty(self):
        assert check_not_empty([1], "items") == [1]

    def test_check_not_empty_rejects_empty(self):
        with pytest.raises(ValidationError, match="items"):
            check_not_empty([], "items")
