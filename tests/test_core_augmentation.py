"""Tests for lie synthesis (topology augmentation)."""

import pytest

from repro.core.augmentation import AugmentationError, synthesize_lies
from repro.core.requirements import DestinationRequirement
from repro.dataplane.demand import TrafficMatrix
from repro.dataplane.forwarding import route_flows_hashed, route_fractional
from repro.dataplane.flows import Flow
from repro.igp.network import compute_static_fibs
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.topologies.zoo import grid
from repro.util.prefixes import Prefix


def enforce(topology, requirement, **kwargs):
    """Synthesize lies and return the FIBs they produce."""
    lies = synthesize_lies(topology, requirement, **kwargs)
    return lies, compute_static_fibs(topology, lies)


class TestTieMode:
    def test_paper_requirement_produces_three_lies(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 2}, "B": {"R2": 1, "R3": 1}}
        )
        lies, fibs = enforce(topology, requirement)
        assert len(lies) == 3
        anchors = sorted(lie.anchor for lie in lies)
        assert anchors == ["A", "A", "B"]
        assert fibs["A"].split_ratios(BLUE_PREFIX) == {
            "B": pytest.approx(1 / 3),
            "R1": pytest.approx(2 / 3),
        }
        assert fibs["B"].split_ratios(BLUE_PREFIX) == {"R2": 0.5, "R3": 0.5}

    def test_tie_lies_keep_original_cost(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"B": {"R2": 1, "R3": 1}})
        lies, _ = enforce(topology, requirement)
        assert len(lies) == 1
        assert lies[0].total_cost == pytest.approx(2.0)  # B's existing shortest path cost
        assert lies[0].forwarding_address == "R3"

    def test_requirement_equal_to_default_needs_no_lies(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}})
        lies, _ = enforce(topology, requirement)
        assert lies == []

    def test_existing_ecmp_counts_as_provided(self):
        # In a 2x2 grid, the corner has two equal-cost paths to the opposite
        # corner; asking for exactly that even split needs no lies.
        topology = grid(2, 2, with_loopbacks=False)
        prefix = Prefix.parse("198.51.100.0/24")
        topology.attach_prefix("G1_1", prefix)
        requirement = DestinationRequirement(
            prefix=prefix, next_hops={"G0_0": {"G0_1": 1, "G1_0": 1}}
        )
        lies, _ = enforce(topology, requirement)
        assert lies == []

    def test_uneven_split_on_top_of_existing_ecmp(self):
        topology = grid(2, 2, with_loopbacks=False)
        prefix = Prefix.parse("198.51.100.0/24")
        topology.attach_prefix("G1_1", prefix)
        requirement = DestinationRequirement(
            prefix=prefix, next_hops={"G0_0": {"G0_1": 3, "G1_0": 1}}
        )
        lies, fibs = enforce(topology, requirement)
        assert len(lies) == 2  # two extra entries toward G0_1
        ratios = fibs["G0_0"].split_ratios(prefix)
        assert ratios["G0_1"] == pytest.approx(0.75)

    def test_realised_split_matches_requirement_in_dataplane(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 2}, "B": {"R2": 1, "R3": 1}}
        )
        _, fibs = enforce(topology, requirement)
        demands = TrafficMatrix.from_dict({("A", BLUE_PREFIX): 90.0})
        outcome = route_fractional(fibs, demands)
        assert outcome.loads.load("A", "R1") == pytest.approx(60.0)
        assert outcome.loads.load("A", "B") == pytest.approx(30.0)


class TestOverrideMode:
    def test_moving_traffic_off_the_shortest_path(self):
        topology = build_demo_topology()
        # Push all of A's traffic via R1, excluding the default next hop B.
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"R1": 1}})
        lies, fibs = enforce(topology, requirement)
        assert len(lies) == 1
        assert lies[0].total_cost < 3.0
        assert fibs["A"].split_ratios(BLUE_PREFIX) == {"R1": 1.0}

    def test_override_does_not_disturb_other_routers(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"R1": 1}})
        _, fibs = enforce(topology, requirement)
        baseline = compute_static_fibs(topology)
        for router in ["B", "R1", "R2", "R3", "R4"]:
            assert fibs[router].split_ratios(BLUE_PREFIX) == baseline[router].split_ratios(BLUE_PREFIX)

    def test_chained_override_requirements_hold(self):
        """A forwards only through B, and B forwards only through R3.

        This is the case that needs distance-ranked epsilons: B's lie must
        not make A prefer its own path through B's fake node over A's lie.
        """
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}, "B": {"R3": 1}}
        )
        lies, fibs = enforce(topology, requirement)
        assert fibs["A"].split_ratios(BLUE_PREFIX) == {"B": 1.0}
        assert fibs["B"].split_ratios(BLUE_PREFIX) == {"R3": 1.0}

    def test_mixed_requirement_switches_everyone_to_override(self):
        topology = build_demo_topology()
        # B must move everything to R3 (override) while A keeps B plus R1 (tie-like).
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 1}, "B": {"R3": 1}}
        )
        lies, fibs = enforce(topology, requirement)
        assert fibs["B"].split_ratios(BLUE_PREFIX) == {"R3": 1.0}
        assert fibs["A"].split_ratios(BLUE_PREFIX) == {"B": 0.5, "R1": 0.5}
        # End-to-end: hashed flows from A never loop and are all delivered.
        flows = [Flow(flow_id=i, ingress="A", prefix=BLUE_PREFIX, demand=1.0) for i in range(50)]
        outcome = route_flows_hashed(compute_static_fibs(topology, lies), flows)
        assert all(path.delivered and not path.looped for path in outcome.flow_paths.values())


class TestErrors:
    def test_requirement_at_destination_router_rejected(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"C": {"R2": 1}})
        with pytest.raises(AugmentationError):
            synthesize_lies(topology, requirement)

    def test_invalid_epsilon_rejected(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"R1": 1}})
        with pytest.raises(AugmentationError):
            synthesize_lies(topology, requirement, epsilon=0.0)

    def test_oversized_epsilon_rejected(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"R1": 1}, "B": {"R3": 1}}
        )
        with pytest.raises(AugmentationError):
            synthesize_lies(topology, requirement, epsilon=0.6)

    def test_custom_name_factory_used(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"B": {"R2": 1, "R3": 1}})
        lies = synthesize_lies(topology, requirement, name_factory=lambda anchor: f"lie-{anchor}")
        assert lies[0].fake_node == "lie-B"

    def test_lies_target_requested_prefix_only(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"B": {"R2": 1, "R3": 1}})
        lies, fibs = enforce(topology, requirement)
        other = Prefix.parse("10.1.0.0/24")  # S1's prefix, untouched
        baseline = compute_static_fibs(topology)
        for router in topology.routers:
            if baseline[router].has_entry(other):
                assert fibs[router].split_ratios(other) == baseline[router].split_ratios(other)
