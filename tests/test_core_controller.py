"""Tests for the Fibbing controller session."""

import pytest

from repro.core.controller import FibbingController
from repro.core.requirements import DestinationRequirement, RequirementSet
from repro.igp.network import IgpNetwork
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.util.errors import ControllerError


PAPER_REQUIREMENT = DestinationRequirement(
    prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 2}, "B": {"R2": 1, "R3": 1}}
)


class TestStaticController:
    def test_enforce_injects_three_lies(self):
        controller = FibbingController(build_demo_topology())
        update = controller.enforce_requirement(PAPER_REQUIREMENT)
        assert len(update.injected) == 3
        assert update.withdrawn == ()
        assert controller.active_lie_count(BLUE_PREFIX) == 3
        assert controller.stats.messages_sent == 3

    def test_static_fibs_reflect_lies(self):
        controller = FibbingController(build_demo_topology())
        controller.enforce_requirement(PAPER_REQUIREMENT)
        fibs = controller.static_fibs()
        assert fibs["A"].split_ratios(BLUE_PREFIX)["R1"] == pytest.approx(2 / 3)

    def test_idempotent_enforcement_is_noop(self):
        controller = FibbingController(build_demo_topology())
        controller.enforce_requirement(PAPER_REQUIREMENT)
        update = controller.enforce_requirement(PAPER_REQUIREMENT)
        assert update.is_noop
        assert controller.stats.messages_sent == 3  # unchanged

    def test_batched_enforce_handles_duplicate_prefixes(self):
        # Later requirements for the same prefix must see (and withdraw) the
        # lies of earlier ones in the same batch, exactly like sequential
        # enforce_requirement calls would.
        controller = FibbingController(build_demo_topology())
        smaller = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"B": {"R2": 1, "R3": 1}}
        )
        updates = controller.enforce([PAPER_REQUIREMENT, smaller])
        assert len(updates) == 2
        assert len(updates[1].withdrawn) == 2
        assert controller.active_lie_count(BLUE_PREFIX) == 1

        sequential = FibbingController(build_demo_topology())
        sequential.enforce_requirement(PAPER_REQUIREMENT)
        sequential.enforce_requirement(smaller)
        batch_fibs = controller.static_fibs()
        seq_fibs = sequential.static_fibs()
        for router in ("A", "B"):
            assert batch_fibs[router].split_ratios(BLUE_PREFIX) == seq_fibs[
                router
            ].split_ratios(BLUE_PREFIX)

    def test_shrinking_requirement_withdraws_lies(self):
        controller = FibbingController(build_demo_topology())
        controller.enforce_requirement(PAPER_REQUIREMENT)
        smaller = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"B": {"R2": 1, "R3": 1}}
        )
        update = controller.enforce_requirement(smaller)
        assert len(update.withdrawn) == 2
        assert controller.active_lie_count(BLUE_PREFIX) == 1
        assert controller.stats.lies_withdrawn == 2

    def test_clear_prefix_removes_everything(self):
        controller = FibbingController(build_demo_topology())
        controller.enforce_requirement(PAPER_REQUIREMENT)
        update = controller.clear_prefix(BLUE_PREFIX)
        assert len(update.withdrawn) == 3
        assert controller.active_lie_count() == 0
        restored = controller.static_fibs()
        assert restored["A"].split_ratios(BLUE_PREFIX) == {"B": 1.0}

    def test_clear_all_covers_every_prefix(self):
        controller = FibbingController(build_demo_topology())
        controller.enforce_requirement(PAPER_REQUIREMENT)
        updates = controller.clear_all()
        assert sum(len(update.withdrawn) for update in updates) == 3

    def test_enforce_set_reuses_baseline(self):
        controller = FibbingController(build_demo_topology())
        updates = controller.enforce(RequirementSet([PAPER_REQUIREMENT]))
        assert len(updates) == 1
        assert controller.stats.updates_applied == 1

    def test_bytes_accounting_positive(self):
        controller = FibbingController(build_demo_topology())
        controller.enforce_requirement(PAPER_REQUIREMENT)
        assert controller.stats.bytes_sent > 0
        snapshot = controller.stats.snapshot()
        assert snapshot["lies_injected"] == 3

    def test_attachment_required_with_live_network(self):
        topology = build_demo_topology()
        network = IgpNetwork(topology)
        with pytest.raises(ControllerError):
            FibbingController(topology, network=network)

    def test_unknown_attachment_rejected(self):
        topology = build_demo_topology()
        with pytest.raises(ControllerError):
            FibbingController(topology, attachment="ghost")


class TestLiveController:
    def test_enforcement_propagates_through_the_igp(self):
        topology = build_demo_topology()
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        controller = FibbingController(topology, network=network, attachment="R3")
        controller.enforce_requirement(PAPER_REQUIREMENT)
        network.converge()
        assert network.fib_of("A").split_ratios(BLUE_PREFIX)["R1"] == pytest.approx(2 / 3)
        assert network.fib_of("B").split_ratios(BLUE_PREFIX) == {"R2": 0.5, "R3": 0.5}

    def test_withdrawal_propagates_through_the_igp(self):
        topology = build_demo_topology()
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        controller = FibbingController(topology, network=network, attachment="R3")
        controller.enforce_requirement(PAPER_REQUIREMENT)
        network.converge()
        controller.clear_prefix(BLUE_PREFIX)
        network.converge()
        assert network.fib_of("A").split_ratios(BLUE_PREFIX) == {"B": 1.0}
        assert network.fib_of("B").split_ratios(BLUE_PREFIX) == {"R2": 1.0}

    def test_update_time_uses_network_clock(self):
        topology = build_demo_topology()
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        controller = FibbingController(topology, network=network, attachment="R3")
        update = controller.enforce_requirement(PAPER_REQUIREMENT)
        assert update.time == network.timeline.now

    def test_noop_update_sends_nothing_to_the_network(self):
        topology = build_demo_topology()
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        controller = FibbingController(topology, network=network, attachment="R3")
        controller.enforce_requirement(PAPER_REQUIREMENT)
        network.converge()
        messages_before = network.flooding_stats["messages_sent"]
        controller.enforce_requirement(PAPER_REQUIREMENT)
        network.converge()
        assert network.flooding_stats["messages_sent"] == messages_before
