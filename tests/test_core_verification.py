"""Tests for the controller's requirement verification."""

import pytest

from repro.core.controller import FibbingController
from repro.core.requirements import DestinationRequirement
from repro.igp.network import IgpNetwork
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.util.prefixes import Prefix

PAPER_REQUIREMENT = DestinationRequirement(
    prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 2}, "B": {"R2": 1, "R3": 1}}
)


class TestStaticVerification:
    def test_enforced_requirement_verifies_clean(self):
        controller = FibbingController(build_demo_topology())
        controller.enforce_requirement(PAPER_REQUIREMENT)
        assert controller.verify_requirement(PAPER_REQUIREMENT) == []

    def test_unenforced_requirement_reports_violations(self):
        controller = FibbingController(build_demo_topology())
        violations = controller.verify_requirement(PAPER_REQUIREMENT)
        assert violations
        assert any("A" in violation for violation in violations)

    def test_wrong_ratio_detected(self):
        controller = FibbingController(build_demo_topology())
        # Enforce an even split at A, then verify against the 1/3-2/3 target.
        even = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 1}})
        controller.enforce_requirement(even)
        violations = controller.verify_requirement(
            DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 2}})
        )
        # One violation per mis-weighted next hop (B and R1).
        assert len(violations) == 2
        assert all("share" in violation for violation in violations)

    def test_missing_route_detected(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        unknown = Prefix.parse("198.18.0.0/24")
        topology.attach_prefix("C", unknown)
        requirement = DestinationRequirement(prefix=unknown, next_hops={"A": {"B": 1}})
        # Do not enforce; instead verify against FIBs computed from a
        # disconnected copy where the prefix is unreachable from A.
        empty_fibs = {}
        violations = controller.verify_requirement(requirement, fibs=empty_fibs)
        assert violations == [f"A: no FIB entry for {unknown}"]

    def test_tolerance_applies(self):
        controller = FibbingController(build_demo_topology())
        controller.enforce_requirement(PAPER_REQUIREMENT)
        # With an absurdly loose tolerance, even a wrong target "verifies"
        # as long as the next-hop sets agree.
        loose = controller.verify_requirement(
            DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 2, "R1": 3}}),
            tolerance=1.0,
        )
        assert loose == []


class TestLiveVerification:
    def test_live_network_verification_after_convergence(self):
        topology = build_demo_topology()
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        controller = FibbingController(topology, network=network, attachment="R3")
        controller.enforce_requirement(PAPER_REQUIREMENT)
        network.converge()
        assert controller.verify_requirement(PAPER_REQUIREMENT) == []

    def test_live_verification_fails_before_convergence(self):
        topology = build_demo_topology()
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        controller = FibbingController(topology, network=network, attachment="R3")
        controller.enforce_requirement(PAPER_REQUIREMENT)
        # The lies have been injected but the flooding has not run yet.
        assert controller.verify_requirement(PAPER_REQUIREMENT) != []
