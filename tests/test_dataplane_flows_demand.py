"""Tests for repro.dataplane.flows and repro.dataplane.demand."""

import pytest

from repro.dataplane.demand import DemandEntry, TrafficMatrix
from repro.dataplane.flows import Flow, FlowSet
from repro.util.errors import SimulationError, ValidationError
from repro.util.prefixes import Prefix

PREFIX = Prefix.parse("10.0.0.0/24")
OTHER = Prefix.parse("10.1.0.0/24")


class TestFlow:
    def test_flow_fields(self):
        flow = Flow(flow_id=1, ingress="A", prefix=PREFIX, demand=1e6, label="video")
        assert flow.demand == 1e6
        assert "video" in str(flow)

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            Flow(flow_id=-1, ingress="A", prefix=PREFIX, demand=1.0)

    def test_zero_demand_rejected(self):
        with pytest.raises(ValidationError):
            Flow(flow_id=0, ingress="A", prefix=PREFIX, demand=0.0)

    def test_empty_ingress_rejected(self):
        with pytest.raises(ValidationError):
            Flow(flow_id=0, ingress="", prefix=PREFIX, demand=1.0)


class TestFlowSet:
    def test_create_assigns_increasing_ids(self):
        flows = FlowSet()
        first = flows.create("A", PREFIX, 1.0)
        second = flows.create("B", PREFIX, 1.0)
        assert second.flow_id == first.flow_id + 1
        assert len(flows) == 2

    def test_add_external_flow_and_id_collision(self):
        flows = FlowSet()
        flows.add(Flow(flow_id=5, ingress="A", prefix=PREFIX, demand=1.0))
        with pytest.raises(SimulationError):
            flows.add(Flow(flow_id=5, ingress="B", prefix=PREFIX, demand=1.0))
        # New ids continue after the externally provided one.
        assert flows.create("C", PREFIX, 1.0).flow_id == 6

    def test_remove_and_get(self):
        flows = FlowSet()
        flow = flows.create("A", PREFIX, 1.0)
        assert flows.get(flow.flow_id) is flow
        removed = flows.remove(flow.flow_id)
        assert removed is flow
        assert flow.flow_id not in flows
        with pytest.raises(SimulationError):
            flows.get(flow.flow_id)

    def test_remove_missing_raises(self):
        with pytest.raises(SimulationError):
            FlowSet().remove(3)

    def test_filters_and_totals(self):
        flows = FlowSet()
        flows.create("A", PREFIX, 1.0)
        flows.create("A", OTHER, 2.0)
        flows.create("B", PREFIX, 4.0)
        assert len(flows.by_ingress("A")) == 2
        assert len(flows.by_prefix(PREFIX)) == 2
        assert flows.total_demand() == 7.0

    def test_iteration_is_sorted_by_id(self):
        flows = FlowSet()
        flows.add(Flow(flow_id=9, ingress="A", prefix=PREFIX, demand=1.0))
        flows.add(Flow(flow_id=2, ingress="B", prefix=PREFIX, demand=1.0))
        assert [flow.flow_id for flow in flows] == [2, 9]


class TestTrafficMatrix:
    def test_add_accumulates(self):
        matrix = TrafficMatrix()
        matrix.add("A", PREFIX, 10.0)
        matrix.add("A", PREFIX, 5.0)
        assert matrix.rate("A", PREFIX) == 15.0

    def test_set_overwrites(self):
        matrix = TrafficMatrix()
        matrix.add("A", PREFIX, 10.0)
        matrix.set("A", PREFIX, 3.0)
        assert matrix.rate("A", PREFIX) == 3.0

    def test_missing_entry_is_zero(self):
        assert TrafficMatrix().rate("A", PREFIX) == 0.0

    def test_from_flows_aggregates(self):
        flows = [
            Flow(flow_id=0, ingress="A", prefix=PREFIX, demand=1.0),
            Flow(flow_id=1, ingress="A", prefix=PREFIX, demand=2.0),
            Flow(flow_id=2, ingress="B", prefix=OTHER, demand=4.0),
        ]
        matrix = TrafficMatrix.from_flows(flows)
        assert matrix.rate("A", PREFIX) == 3.0
        assert matrix.rate("B", OTHER) == 4.0

    def test_from_dict_accepts_string_prefixes(self):
        matrix = TrafficMatrix.from_dict({("A", "10.0.0.0/24"): 5.0})
        assert matrix.rate("A", PREFIX) == 5.0

    def test_prefixes_and_ingresses_listed(self):
        matrix = TrafficMatrix.from_dict({("A", PREFIX): 1.0, ("B", OTHER): 2.0})
        assert matrix.prefixes == sorted([PREFIX, OTHER])
        assert matrix.ingresses == ["A", "B"]

    def test_entries_skip_zero_rates(self):
        matrix = TrafficMatrix()
        matrix.set("A", PREFIX, 0.0)
        assert matrix.entries() == []
        assert len(matrix) == 0

    def test_demands_for_prefix(self):
        matrix = TrafficMatrix.from_dict({("A", PREFIX): 1.0, ("B", PREFIX): 2.0, ("B", OTHER): 4.0})
        assert matrix.demands_for(PREFIX) == {"A": 1.0, "B": 2.0}

    def test_scaled_copy(self):
        matrix = TrafficMatrix.from_dict({("A", PREFIX): 10.0})
        doubled = matrix.scaled(2.0)
        assert doubled.rate("A", PREFIX) == 20.0
        assert matrix.rate("A", PREFIX) == 10.0

    def test_total(self):
        matrix = TrafficMatrix.from_dict({("A", PREFIX): 1.5, ("B", OTHER): 2.5})
        assert matrix.total() == 4.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            TrafficMatrix().add("A", PREFIX, -1.0)

    def test_demand_entry_validation(self):
        with pytest.raises(ValidationError):
            DemandEntry(ingress="A", prefix=PREFIX, rate=-1.0)

    def test_empty_ingress_rejected(self):
        with pytest.raises(ValidationError):
            TrafficMatrix().add("", PREFIX, 1.0)


class TestTrafficMatrixOrderIndependence:
    """Aggregation regression: at flash-crowd scale, per-key sums built by
    naive left-to-right accumulation depend on arrival order — two matrices
    holding the same demands could disagree on rates and digests.  The
    contributions are now summed with ``math.fsum`` (correctly rounded), so
    any permutation of the same adds is indistinguishable, bit for bit."""

    CONTRIBUTIONS = [1e9, 0.1, 3.7e-4, 2.5e8, 1.0, 7.77e6, 0.003, 5e9, 12.0]

    def _matrix(self, order):
        matrix = TrafficMatrix()
        for index in order:
            matrix.add("A", PREFIX, self.CONTRIBUTIONS[index])
            matrix.add("B", OTHER, self.CONTRIBUTIONS[index] * 0.5)
        return matrix

    def test_shuffled_inputs_share_rate_and_digest(self):
        import random

        base_order = list(range(len(self.CONTRIBUTIONS)))
        reference = self._matrix(base_order)
        rng = random.Random(1234)
        for _ in range(10):
            order = base_order[:]
            rng.shuffle(order)
            shuffled = self._matrix(order)
            assert shuffled.rate("A", PREFIX) == reference.rate("A", PREFIX)
            assert shuffled.rate("B", OTHER) == reference.rate("B", OTHER)
            assert shuffled.digest() == reference.digest()
            assert shuffled.entries() == reference.entries()
            assert shuffled.total() == reference.total()

    def test_entries_and_digest_share_one_sort_key(self):
        # Both orderings are (ingress, prefix): a digest built from the
        # entries() order must match digest() itself re-deriving it.
        import hashlib

        matrix = TrafficMatrix.from_dict(
            {("B", OTHER): 2.0, ("A", PREFIX): 1.0, ("A", OTHER): 3.0}
        )
        hasher = hashlib.sha256()
        for entry in matrix.entries():
            hasher.update(f"{entry.ingress}|{entry.prefix}={entry.rate!r};".encode())
        assert hasher.hexdigest() == matrix.digest()

    def test_from_classes_aggregates_total_demand(self):
        from repro.dataplane.demand import ClassSet

        classes = ClassSet()
        classes.create(ingress="A", prefix=PREFIX, rate=2.0, count=10)
        classes.create(ingress="A", prefix=PREFIX, rate=1.5, count=4)
        classes.create(ingress="B", prefix=OTHER, rate=1.0, count=3)
        matrix = TrafficMatrix.from_classes(classes)
        assert matrix.rate("A", PREFIX) == 26.0
        assert matrix.rate("B", OTHER) == 3.0
