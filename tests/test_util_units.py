"""Tests for repro.util.units."""

import pytest

from repro.util.errors import ValidationError
from repro.util.units import (
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_rate,
    gbps,
    kbps,
    mbps,
)


class TestRateConstructors:
    def test_kbps(self):
        assert kbps(64) == 64_000

    def test_mbps(self):
        assert mbps(32) == 32_000_000

    def test_gbps(self):
        assert gbps(1.5) == 1_500_000_000

    def test_rates_accept_floats(self):
        assert mbps(0.5) == 500_000


class TestConversions:
    def test_bits_to_bytes(self):
        assert bits_to_bytes(8_000_000) == 1_000_000

    def test_bytes_to_bits(self):
        assert bytes_to_bits(1_000_000) == 8_000_000

    def test_round_trip(self):
        assert bytes_to_bits(bits_to_bytes(12_345)) == pytest.approx(12_345)


class TestFormatting:
    def test_format_rate_mbit(self):
        assert format_rate(2_500_000) == "2.50 Mbit/s"

    def test_format_rate_gbit(self):
        assert format_rate(3_200_000_000) == "3.20 Gbit/s"

    def test_format_rate_kbit(self):
        assert format_rate(64_000) == "64.00 kbit/s"

    def test_format_rate_bit(self):
        assert format_rate(500) == "500 bit/s"

    def test_format_rate_rejects_negative(self):
        with pytest.raises(ValidationError):
            format_rate(-1)

    def test_format_bytes_mb(self):
        assert format_bytes(1_500_000) == "1.50 MB"

    def test_format_bytes_small(self):
        assert format_bytes(42) == "42 B"

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ValidationError):
            format_bytes(-5)
