"""Tests for the monitoring substrate: counters, poller, collector, alarms, notifications."""

import pytest

from repro.dataplane.engine import DataPlaneEngine
from repro.igp.network import compute_static_fibs
from repro.monitoring.alarms import UtilizationAlarm
from repro.monitoring.collector import LoadCollector
from repro.monitoring.counters import SnmpAgent, build_agents
from repro.monitoring.notifications import ClientNotification, ClientRegistry, NotificationBus
from repro.monitoring.poller import SnmpPoller
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.util.errors import MonitoringError
from repro.util.timeline import Timeline
from repro.util.units import mbps


@pytest.fixture
def monitored_engine():
    topology = build_demo_topology()
    fibs = compute_static_fibs(topology)
    timeline = Timeline()
    engine = DataPlaneEngine(topology, lambda: fibs, timeline, sample_interval=1.0)
    engine.start()
    return topology, timeline, engine


class TestSnmpAgents:
    def test_agent_lists_interfaces(self, monitored_engine):
        topology, _, engine = monitored_engine
        agent = SnmpAgent("B", topology, engine)
        assert agent.interfaces == ["A", "R2", "R3"]

    def test_agent_reads_counters(self, monitored_engine):
        topology, timeline, engine = monitored_engine
        engine.add_flow("B", BLUE_PREFIX, mbps(8))
        timeline.run_until(2.0)
        agent = SnmpAgent("B", topology, engine)
        stat = agent.read_interface("R2")
        assert stat.out_octets == pytest.approx(2e6, rel=0.01)
        assert stat.interface == "B->R2"

    def test_unknown_interface_rejected(self, monitored_engine):
        topology, _, engine = monitored_engine
        agent = SnmpAgent("B", topology, engine)
        with pytest.raises(MonitoringError):
            agent.read_interface("C")

    def test_unknown_router_rejected(self, monitored_engine):
        topology, _, engine = monitored_engine
        with pytest.raises(MonitoringError):
            SnmpAgent("ghost", topology, engine)

    def test_build_agents_covers_all_routers(self, monitored_engine):
        topology, _, engine = monitored_engine
        agents = build_agents(topology, engine)
        assert set(agents) == set(topology.routers)


class TestPoller:
    def test_poller_measures_rates(self, monitored_engine):
        topology, timeline, engine = monitored_engine
        poller = SnmpPoller(build_agents(topology, engine), timeline, poll_interval=1.0)
        poller.start()
        engine.add_flow("B", BLUE_PREFIX, mbps(8))
        timeline.run_until(3.0)
        assert poller.polls_performed == 3
        last = poller.samples[-1]
        assert last.rate_of("B", "R2") == pytest.approx(mbps(8), rel=0.02)
        assert last.rate_of("A", "R1") == 0.0

    def test_poller_interval_respected(self, monitored_engine):
        topology, timeline, engine = monitored_engine
        poller = SnmpPoller(build_agents(topology, engine), timeline, poll_interval=5.0)
        poller.start()
        timeline.run_until(12.0)
        assert poller.polls_performed == 2

    def test_listeners_receive_samples(self, monitored_engine):
        topology, timeline, engine = monitored_engine
        poller = SnmpPoller(build_agents(topology, engine), timeline, poll_interval=1.0)
        seen = []
        poller.on_sample(lambda sample: seen.append(sample.time))
        poller.start()
        timeline.run_until(2.0)
        assert seen == [1.0, 2.0]

    def test_empty_agent_set_rejected(self, monitored_engine):
        _, timeline, _ = monitored_engine
        with pytest.raises(MonitoringError):
            SnmpPoller({}, timeline)

    def test_jitter_must_stay_below_poll_interval(self, monitored_engine):
        topology, timeline, engine = monitored_engine
        agents = build_agents(topology, engine)
        with pytest.raises(MonitoringError):
            SnmpPoller(agents, timeline, poll_interval=1.0, jitter=1.0)

    def test_jitter_requires_an_explicit_rng(self, monitored_engine):
        topology, timeline, engine = monitored_engine
        agents = build_agents(topology, engine)
        with pytest.raises(MonitoringError):
            SnmpPoller(agents, timeline, poll_interval=1.0, jitter=0.2)

    def test_jittered_schedule_is_seed_deterministic(self, monitored_engine):
        import random

        topology, _, engine = monitored_engine

        def poll_times(seed):
            timeline = Timeline()
            poller = SnmpPoller(
                build_agents(topology, engine),
                timeline,
                poll_interval=1.0,
                jitter=0.25,
                rng=random.Random(seed),
            )
            poller.on_sample(lambda sample: None)
            poller.start()
            times = []
            while timeline.peek_time() is not None and timeline.peek_time() <= 5.0:
                timeline.step()
                times.append(timeline.now)
            return times

        first = poll_times(7)
        assert poll_times(7) == first
        assert poll_times(8) != first
        # Every gap stays within poll_interval ± jitter, and none coincide.
        gaps = [b - a for a, b in zip([0.0] + first, first)]
        assert all(0.75 <= gap <= 1.25 for gap in gaps)


class _Reading:
    def __init__(self, router, neighbor, out_octets):
        self.router = router
        self.neighbor = neighbor
        self.out_octets = out_octets


class _ScriptedAgent:
    """An SNMP agent replaying a scripted sequence of counter readings."""

    def __init__(self, readings):
        self._readings = iter(readings)
        self._last = None

    def read_all(self):
        try:
            self._last = next(self._readings)
        except StopIteration:
            pass  # keep returning the final reading
        return list(self._last)


class TestPollerCounterResets:
    """A rebooted device (or a wrapped 32-bit octet counter) hands the
    poller a *negative* delta.  The historical code treated any non-positive
    delta as an idle link — a reset thus reported phantom silence and, worse,
    the next interval's delta was computed against the stale pre-reset
    baseline.  A negative delta now re-baselines the link and is counted."""

    def run_polls(self, timeline, poller, until):
        poller.start()
        timeline.run_until(until)

    def test_negative_delta_rebaselines_and_counts(self):
        timeline = Timeline()
        agent = _ScriptedAgent(
            [
                [_Reading("B", "R2", 1000.0)],  # baseline at start()
                [_Reading("B", "R2", 2000.0)],  # poll 1: +1000 octets
                [_Reading("B", "R2", 500.0)],   # poll 2: device restarted
                [_Reading("B", "R2", 1500.0)],  # poll 3: +1000 from new base
            ]
        )
        poller = SnmpPoller({"B": agent}, timeline, poll_interval=1.0)
        self.run_polls(timeline, poller, 3.0)
        assert poller.poll_counter_resets == 1
        rates = [sample.rate_of("B", "R2") for sample in poller.samples]
        # 1000 octets/s = 8000 bit/s; the reset interval reports no rate.
        assert rates == [8000.0, 0.0, 8000.0]

    def test_vanished_interface_is_dropped_not_ghosted(self):
        timeline = Timeline()
        agent = _ScriptedAgent(
            [
                [_Reading("B", "R2", 1000.0), _Reading("B", "R3", 400.0)],
                [_Reading("B", "R2", 2000.0), _Reading("B", "R3", 800.0)],
                [_Reading("B", "R2", 3000.0)],  # B->R3 interface withdrawn
            ]
        )
        poller = SnmpPoller({"B": agent}, timeline, poll_interval=1.0)
        self.run_polls(timeline, poller, 2.0)
        assert poller.samples[0].rate_of("B", "R3") == 3200.0
        # The vanished link reports nothing (not a stale or phantom rate)...
        assert ("B", "R3") not in poller.samples[1].rates
        # ...and its stale baseline is gone, so a re-appearing interface
        # re-baselines instead of producing a bogus delta.
        assert ("B", "R3") not in poller._previous_counters


class TestCollectorAndAlarm:
    def wire(self, monitored_engine, threshold=0.9, cooldown=3.0, alpha=1.0):
        topology, timeline, engine = monitored_engine
        poller = SnmpPoller(build_agents(topology, engine), timeline, poll_interval=1.0)
        collector = LoadCollector(topology, alpha=alpha)
        alarm = UtilizationAlarm(collector, raise_threshold=threshold, cooldown=cooldown)
        alarm.wire(poller)
        poller.start()
        return topology, timeline, engine, collector, alarm

    def test_collector_tracks_utilization(self, monitored_engine):
        topology, timeline, engine, collector, _ = self.wire(monitored_engine)
        engine.add_flow("B", BLUE_PREFIX, mbps(16))
        timeline.run_until(3.0)
        assert collector.utilization("B", "R2") == pytest.approx(0.5, rel=0.05)
        assert collector.max_utilization() == pytest.approx(0.5, rel=0.05)

    def test_collector_unknown_link_rejected(self, monitored_engine):
        _, _, _, collector, _ = self.wire(monitored_engine)
        with pytest.raises(MonitoringError):
            collector.utilization("A", "C")

    def test_alarm_fires_above_threshold(self, monitored_engine):
        topology, timeline, engine, _, alarm = self.wire(monitored_engine)
        for _ in range(31):
            engine.add_flow("B", BLUE_PREFIX, mbps(1))
        timeline.run_until(5.0)
        assert len(alarm.events) >= 1
        assert ("B", "R2") in [view.link for view in alarm.events[0].hot_links]
        # The controller-facing accessors used by the reconciliation loop.
        assert alarm.last_event is alarm.events[-1]
        assert ("B", "R2") in alarm.events[0].hot_link_keys

    def test_alarm_silent_below_threshold(self, monitored_engine):
        topology, timeline, engine, _, alarm = self.wire(monitored_engine)
        for _ in range(10):
            engine.add_flow("B", BLUE_PREFIX, mbps(1))
        timeline.run_until(5.0)
        assert alarm.events == []
        assert alarm.last_event is None

    def test_alarm_cooldown_limits_rate(self, monitored_engine):
        topology, timeline, engine, _, alarm = self.wire(monitored_engine, cooldown=100.0)
        for _ in range(40):
            engine.add_flow("B", BLUE_PREFIX, mbps(1))
        timeline.run_until(20.0)
        assert len(alarm.events) == 1

    def test_alarm_refires_after_cooldown_if_still_hot(self, monitored_engine):
        topology, timeline, engine, _, alarm = self.wire(monitored_engine, cooldown=3.0)
        for _ in range(40):
            engine.add_flow("B", BLUE_PREFIX, mbps(1))
        timeline.run_until(20.0)
        assert len(alarm.events) >= 3

    def test_invalid_thresholds_rejected(self, monitored_engine):
        topology, _, _ = monitored_engine
        collector = LoadCollector(topology)
        with pytest.raises(MonitoringError):
            UtilizationAlarm(collector, raise_threshold=0.5, clear_threshold=0.9)

    def test_zero_or_negative_clear_threshold_rejected(self, monitored_engine):
        # A clear level of 0 could never re-arm the alarm (idle links report
        # exactly 0.0 utilisation, which is >= 0); historically it was
        # accepted and bricked the alarm after its first firing.
        topology, _, _ = monitored_engine
        collector = LoadCollector(topology)
        with pytest.raises(MonitoringError):
            UtilizationAlarm(collector, raise_threshold=0.9, clear_threshold=0.0)
        with pytest.raises(MonitoringError):
            UtilizationAlarm(collector, raise_threshold=0.9, clear_threshold=-0.1)

    def test_collector_sees_capacity_changes_immediately(self, monitored_engine):
        # A provisioning event (Topology.set_capacity) must reach the alarm
        # utilisation at the very next read — the historical collector cached
        # capacities at construction time forever.
        topology, timeline, engine, collector, _ = self.wire(monitored_engine)
        engine.add_flow("B", BLUE_PREFIX, mbps(16))
        timeline.run_until(3.0)
        before = collector.utilization("B", "R2")
        assert before == pytest.approx(0.5, rel=0.05)
        capacity = topology.link("B", "R2").capacity
        topology.set_capacity("B", "R2", capacity * 2.0)
        assert collector.utilization("B", "R2") == pytest.approx(before / 2.0)
        assert collector.max_utilization() == pytest.approx(
            max(view.utilization for view in collector.views())
        )

    def test_vanished_link_state_is_dropped(self, monitored_engine):
        # A failed link disappears from the topology; the collector must
        # drop its estimate and capacity entry (mirroring the poller's
        # vanished-interface cleanup) instead of leaking per-link state that
        # feeds the alarm phantom utilisations.  Historically vanished links
        # kept their last-known capacity and a decaying EWMA forever.
        topology, timeline, engine, collector, _ = self.wire(monitored_engine)
        engine.add_flow("B", BLUE_PREFIX, mbps(16))
        timeline.run_until(3.0)
        assert ("B", "R3") in [view.link for view in collector.views()]
        topology.remove_link("B", "R3", both_directions=True)
        with pytest.raises(MonitoringError):
            collector.utilization("B", "R3")
        assert ("B", "R3") not in [view.link for view in collector.views()]
        assert ("B", "R3") not in collector._estimates
        assert ("B", "R3") not in collector._capacities

    def test_restored_link_remonitored_with_fresh_estimate(self, monitored_engine):
        # The inverse event: a link added (back) to the topology starts
        # monitoring from a fresh EWMA instead of staying invisible.
        topology, timeline, engine, collector, _ = self.wire(monitored_engine)
        engine.add_flow("B", BLUE_PREFIX, mbps(16))
        timeline.run_until(3.0)
        saved = topology.link("B", "R3")
        reverse = topology.link("R3", "B")
        topology.remove_link("B", "R3", both_directions=True)
        with pytest.raises(MonitoringError):
            collector.utilization("B", "R3")
        for link in (saved, reverse):
            topology.add_directed_link(
                link.source, link.target, link.weight, link.capacity, link.delay
            )
        assert collector.utilization("B", "R3") == 0.0
        assert collector.rate("B", "R3") == 0.0


class TestNotifications:
    def make_notification(self, delta=1, ingress="B"):
        return ClientNotification(
            time=1.0, server="S1", ingress=ingress, prefix=BLUE_PREFIX, bitrate=mbps(1), delta=delta
        )

    def test_bus_delivers_to_subscribers(self):
        bus = NotificationBus()
        seen = []
        bus.subscribe(seen.append)
        notification = self.make_notification()
        bus.publish(notification)
        assert seen == [notification]
        assert bus.published == [notification]

    def test_registry_counts_clients(self):
        registry = ClientRegistry()
        registry.observe(self.make_notification())
        registry.observe(self.make_notification())
        registry.observe(self.make_notification(delta=-1))
        assert registry.client_count("B", BLUE_PREFIX) == 1
        assert registry.total_clients() == 1

    def test_registry_rejects_unmatched_departure(self):
        registry = ClientRegistry()
        with pytest.raises(MonitoringError):
            registry.observe(self.make_notification(delta=-1))

    def test_demand_matrix_scales_with_clients(self):
        registry = ClientRegistry()
        for _ in range(5):
            registry.observe(self.make_notification())
        for _ in range(3):
            registry.observe(self.make_notification(ingress="A"))
        matrix = registry.demand_matrix()
        assert matrix.rate("B", BLUE_PREFIX) == pytest.approx(mbps(5))
        assert matrix.rate("A", BLUE_PREFIX) == pytest.approx(mbps(3))

    def test_registry_attaches_to_bus(self):
        bus = NotificationBus()
        registry = ClientRegistry()
        registry.attach(bus)
        bus.publish(self.make_notification())
        assert registry.total_clients() == 1

    def test_invalid_delta_rejected(self):
        with pytest.raises(MonitoringError):
            self.make_notification(delta=0)


class TestCounterCollection:
    """Aggregation of spf_*/rib_*/dp_* counters through collect_counters."""

    def build_network_with_engine(self):
        from repro.igp.network import IgpNetwork

        topology = build_demo_topology()
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        engine = DataPlaneEngine(
            topology,
            lambda: network.fibs(),
            network.timeline,
            sample_interval=1.0,
        )
        engine.bind_to_network(network)
        engine.add_flow("B", BLUE_PREFIX, mbps(2))
        engine.add_flow("B", BLUE_PREFIX, mbps(2))
        engine.notify_routing_change()  # a no-op refresh: pure cache reuse
        return network, engine

    def test_collect_counters_merges_all_three_layers(self):
        from repro.monitoring.counters import collect_counters

        network, engine = self.build_network_with_engine()
        per_router = collect_counters(network)
        total = per_router["total"]
        assert total == network.spf_stats
        # The dataplane entry mirrors the bound engine's counters exactly.
        assert per_router["dataplane"] == engine.counters.snapshot()
        assert total["dp_flows_rerouted"] == engine.counters.flows_rerouted
        assert total["dp_flows_reused"] == engine.counters.flows_reused > 0
        # Every layer's keys are present in the merged total.
        for key in ("spf_cache_hits", "rib_cache_hits", "dp_alloc_warm_starts"):
            assert key in total
        # Per-key reconciliation across the router + dataplane entries.
        for key, value in total.items():
            assert value == sum(
                counters.get(key, 0)
                for name, counters in per_router.items()
                if name != "total"
            )

    def test_collect_spf_counters_alias_is_preserved(self):
        from repro.monitoring.counters import collect_counters, collect_spf_counters

        assert collect_spf_counters is collect_counters

    def test_network_merges_multiple_engines(self):
        from repro.dataplane.path_cache import DataPlaneCounters

        network, engine = self.build_network_with_engine()
        second = DataPlaneEngine(
            network.topology,
            lambda: network.fibs(),
            network.timeline,
            sample_interval=1.0,
        )
        second.bind_to_network(network)
        second.bind_to_network(network)  # double-bind must not double-count
        second.add_flow("A", BLUE_PREFIX, mbps(1))
        merged = network.dataplane_counters()
        expected = DataPlaneCounters()
        expected.merge(engine.counters)
        expected.merge(second.counters)
        assert merged.snapshot() == expected.snapshot()
        assert network.dataplane_stats == merged.snapshot()

    def test_controller_stats_mirror_dataplane_counters(self):
        from repro.core.controller import FibbingController

        network, engine = self.build_network_with_engine()
        controller = FibbingController(
            network.topology, network=network, attachment="R3"
        )
        stats = controller.stats.snapshot()
        assert stats["dp_flows_rerouted"] == engine.counters.flows_rerouted
        assert stats["dp_flows_reused"] == engine.counters.flows_reused
        assert stats["dp_alloc_full"] == engine.counters.alloc_full

    def test_network_merges_multiple_controllers(self):
        """Two controllers on one network: ctl_* counters merge — the last
        registration must not overwrite (or double-count) earlier ones."""
        from repro.core.controller import FibbingController
        from repro.monitoring.counters import collect_counters

        network, _engine = self.build_network_with_engine()
        first = FibbingController(
            network.topology, name="tenant-a", network=network, attachment="R3"
        )
        second = FibbingController(
            network.topology, name="tenant-b", network=network, attachment="R3"
        )
        network.register_controller(second)  # double-register must not double-count
        first.reconciler.counters.plans_recomputed += 5
        first.reconciler.counters.lies_injected += 2
        second.reconciler.counters.plans_recomputed += 7
        merged = network.controller_counters()
        assert merged.plans_recomputed == 12
        assert merged.lies_injected == 2
        assert network.spf_stats["ctl_plans_recomputed"] == 12
        per_router = collect_counters(network)
        assert per_router["controller"]["ctl_plans_recomputed"] == 12
        assert per_router["total"]["ctl_plans_recomputed"] == 12

    def test_sharded_facade_registers_once_and_reports_shard_keys(self):
        """A sharded facade's aggregate view covers its shards exactly once,
        and the shard_* wave counters surface through every reporting
        surface (spf_stats, collect_counters, ControllerStats)."""
        from repro.core.shard import ShardedFibbingController
        from repro.monitoring.counters import collect_counters

        network, _engine = self.build_network_with_engine()
        facade = ShardedFibbingController(
            network.topology, shards=3, network=network, attachment="R3"
        )
        facade.shards[0].reconciler.counters.plans_recomputed += 4
        facade.shards[2].reconciler.counters.plans_recomputed += 6
        facade.shard_counters.waves_parallel += 2
        assert network.controller_counters().plans_recomputed == 10
        assert network.spf_stats["shard_waves_parallel"] == 2
        per_router = collect_counters(network)
        assert per_router["controller"]["ctl_plans_recomputed"] == 10
        assert per_router["controller"]["shard_waves_parallel"] == 2
        assert per_router["total"]["shard_waves_parallel"] == 2
        assert facade.stats.snapshot()["shard_waves_parallel"] == 2
        # Registering an inner shard directly afterwards must not make its
        # counters count twice: the facade's view already folds it in.
        network.register_controller(facade.shards[0])
        network.register_controller(facade)
        assert network.controller_counters().plans_recomputed == 10

    def test_dataplane_counters_merge_and_snapshot_roundtrip(self):
        from repro.dataplane.path_cache import DataPlaneCounters

        first = DataPlaneCounters(
            flows_rerouted=1, flows_reused=2, alloc_warm_starts=3, alloc_full=4, fallbacks=5
        )
        second = DataPlaneCounters(flows_rerouted=10, fallbacks=1)
        first.merge(second)
        assert first.snapshot() == {
            "dp_flows_rerouted": 11,
            "dp_flows_reused": 2,
            "dp_alloc_warm_starts": 3,
            "dp_alloc_full": 4,
            "dp_fallbacks": 6,
            "dp_classes_rewalked": 0,
            "dp_classes_reused": 0,
            "dp_classes_splits": 0,
        }
        assert first.alloc_events == 3 + 4 + 6
