"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dataplane.demand import TrafficMatrix
from repro.igp.network import compute_static_fibs
from repro.topologies.demo import (
    BLUE_PREFIX,
    DemoScenario,
    build_demo_scenario,
    build_demo_topology,
    demo_lies,
)
from repro.util.units import mbps


@pytest.fixture
def demo_topology():
    """The paper's Fig. 1a topology."""
    return build_demo_topology()


@pytest.fixture
def demo_scenario() -> DemoScenario:
    """The full demo scenario (topology, servers, schedule, monitors)."""
    return build_demo_scenario()


@pytest.fixture
def blue_prefix():
    """The destination prefix of the playback clients."""
    return BLUE_PREFIX


@pytest.fixture
def demo_fibs_baseline(demo_topology):
    """Converged FIBs of the demo topology without any lie."""
    return compute_static_fibs(demo_topology)


@pytest.fixture
def demo_fibs_fibbed(demo_topology):
    """Converged FIBs of the demo topology with the Fig. 1c lies."""
    return compute_static_fibs(demo_topology, demo_lies())


@pytest.fixture
def demo_demands():
    """The Fig. 1b static demands: 100 units from each source."""
    return TrafficMatrix.from_dict(
        {("A", BLUE_PREFIX): 100.0, ("B", BLUE_PREFIX): 100.0}
    )


@pytest.fixture
def fig2_demands():
    """The aggregate demands of the Fig. 2 steady state (31 Mbit/s per source)."""
    return TrafficMatrix.from_dict(
        {("A", BLUE_PREFIX): mbps(31), ("B", BLUE_PREFIX): mbps(31)}
    )
