"""Tests for repro.util.timeline."""

import pytest

from repro.util.errors import SimulationError, ValidationError
from repro.util.timeline import Timeline


class TestScheduling:
    def test_events_fire_in_time_order(self):
        timeline = Timeline()
        fired = []
        timeline.schedule(2.0, lambda: fired.append("late"))
        timeline.schedule(1.0, lambda: fired.append("early"))
        timeline.run_all()
        assert fired == ["early", "late"]

    def test_ties_fire_in_insertion_order(self):
        timeline = Timeline()
        fired = []
        for name in ["first", "second", "third"]:
            timeline.schedule(1.0, lambda name=name: fired.append(name))
        timeline.run_all()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        timeline = Timeline()
        timeline.schedule(3.5, lambda: None)
        timeline.run_all()
        assert timeline.now == 3.5

    def test_schedule_in_uses_relative_delay(self):
        timeline = Timeline(start=10.0)
        event = timeline.schedule_in(2.0, lambda: None)
        assert event.time == 12.0

    def test_scheduling_in_the_past_rejected(self):
        timeline = Timeline(start=5.0)
        with pytest.raises(ValidationError):
            timeline.schedule(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        timeline = Timeline()
        with pytest.raises(ValidationError):
            timeline.schedule_in(-1.0, lambda: None)

    def test_scheduling_at_current_time_allowed(self):
        timeline = Timeline(start=5.0)
        fired = []
        timeline.schedule(5.0, lambda: fired.append(True))
        timeline.run_all()
        assert fired == [True]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        timeline = Timeline()
        fired = []
        event = timeline.schedule(1.0, lambda: fired.append(True))
        event.cancel()
        timeline.run_all()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        timeline = Timeline()
        event = timeline.schedule(1.0, lambda: None)
        timeline.schedule(2.0, lambda: None)
        assert timeline.pending == 2
        event.cancel()
        assert timeline.pending == 1

    def test_timeline_cancel_reports_whether_it_cancelled(self):
        timeline = Timeline()
        event = timeline.schedule(1.0, lambda: None)
        assert timeline.cancel(event) is True
        # Cancelling twice is a no-op (and must not corrupt `pending`).
        assert timeline.cancel(event) is False
        assert timeline.pending == 0

    def test_cancel_after_fire_is_a_noop(self):
        timeline = Timeline()
        event = timeline.schedule(1.0, lambda: None)
        timeline.run_all()
        assert event.fired
        assert timeline.cancel(event) is False
        event.cancel()
        # A late cancel must not drive the O(1) pending count negative.
        assert timeline.pending == 0

    def test_pending_tracks_schedule_fire_cancel_interleaving(self):
        timeline = Timeline()
        keep = timeline.schedule(2.0, lambda: None)
        drop = timeline.schedule(3.0, lambda: None)
        timeline.schedule(1.0, lambda: None)
        assert timeline.pending == 3
        timeline.run_until(1.0)
        assert timeline.pending == 2
        timeline.cancel(drop)
        assert timeline.pending == 1
        timeline.run_all()
        assert keep.fired
        assert timeline.pending == 0


class TestRunUntil:
    def test_run_until_executes_only_due_events(self):
        timeline = Timeline()
        fired = []
        timeline.schedule(1.0, lambda: fired.append(1))
        timeline.schedule(5.0, lambda: fired.append(5))
        executed = timeline.run_until(3.0)
        assert executed == 1
        assert fired == [1]
        assert timeline.now == 3.0

    def test_run_until_includes_boundary_events(self):
        timeline = Timeline()
        fired = []
        timeline.schedule(3.0, lambda: fired.append(3))
        timeline.run_until(3.0)
        assert fired == [3]

    def test_run_until_cannot_go_backwards(self):
        timeline = Timeline(start=5.0)
        with pytest.raises(ValidationError):
            timeline.run_until(4.0)

    def test_events_can_schedule_more_events(self):
        timeline = Timeline()
        fired = []

        def chain():
            fired.append(timeline.now)
            if timeline.now < 3.0:
                timeline.schedule_in(1.0, chain)

        timeline.schedule(1.0, chain)
        timeline.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_runaway_loop_is_detected(self):
        timeline = Timeline()

        def reschedule():
            timeline.schedule_in(0.0, reschedule)

        timeline.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            timeline.run_until(1.0, max_events=100)

    def test_exactly_max_events_legitimate_events_are_allowed(self):
        # The historical off-by-one allowed max_events + 1 events through;
        # the cap is now exact.
        timeline = Timeline()
        fired = []
        for index in range(5):
            timeline.schedule(1.0, lambda index=index: fired.append(index))
        assert timeline.run_until(1.0, max_events=5) == 5
        assert fired == [0, 1, 2, 3, 4]

    def test_one_event_past_the_cap_raises(self):
        timeline = Timeline()
        for _ in range(6):
            timeline.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            timeline.run_until(1.0, max_events=5)

    def test_run_all_cap_is_exact_too(self):
        timeline = Timeline()
        for _ in range(5):
            timeline.schedule(1.0, lambda: None)
        assert timeline.run_all(max_events=5) == 5
        timeline = Timeline()
        for _ in range(6):
            timeline.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            timeline.run_all(max_events=5)

    def test_peek_time_returns_next_event(self):
        timeline = Timeline()
        assert timeline.peek_time() is None
        timeline.schedule(4.0, lambda: None)
        assert timeline.peek_time() == 4.0

    def test_fired_counter(self):
        timeline = Timeline()
        timeline.schedule(1.0, lambda: None)
        timeline.schedule(2.0, lambda: None)
        timeline.run_all()
        assert timeline.fired == 2

    def test_step_returns_none_when_empty(self):
        assert Timeline().step() is None
