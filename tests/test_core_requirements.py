"""Tests for forwarding requirements and their validation."""

import pytest

from repro.core.requirements import DestinationRequirement, RequirementSet
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.util.errors import ControllerError
from repro.util.prefixes import Prefix

OTHER_PREFIX = Prefix.parse("10.9.0.0/24")


class TestConstruction:
    def test_basic_requirement(self):
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 2}, "B": {"R2": 1, "R3": 1}}
        )
        assert requirement.routers == ["A", "B"]
        assert requirement.weights_at("A") == {"B": 1, "R1": 2}
        assert requirement.total_entries() == 5

    def test_from_fractions_uses_approximation(self):
        requirement = DestinationRequirement.from_fractions(
            BLUE_PREFIX, {"A": {"B": 1 / 3, "R1": 2 / 3}}, max_entries=16
        )
        assert requirement.weights_at("A") == {"B": 1, "R1": 2}

    def test_from_fractions_skips_empty_routers(self):
        requirement = DestinationRequirement.from_fractions(BLUE_PREFIX, {"A": {}})
        assert requirement.routers == []

    def test_empty_next_hops_rejected(self):
        with pytest.raises(ControllerError):
            DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {}})

    def test_non_integer_weight_rejected(self):
        with pytest.raises(ControllerError):
            DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1.5}})

    def test_zero_weight_rejected(self):
        with pytest.raises(ControllerError):
            DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 0}})

    def test_self_next_hop_rejected(self):
        with pytest.raises(ControllerError):
            DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"A": 1}})

    def test_weights_at_unconstrained_router_raises(self):
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}})
        with pytest.raises(ControllerError):
            requirement.weights_at("R4")

    def test_without_drops_routers(self):
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}, "B": {"R2": 1}}
        )
        reduced = requirement.without(["A"])
        assert reduced.routers == ["B"]

    def test_iteration_yields_router_weight_pairs(self):
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 2}})
        assert list(requirement) == [("A", {"B": 2})]


class TestValidation:
    def test_paper_requirement_validates(self):
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 2}, "B": {"R2": 1, "R3": 1}}
        )
        requirement.validate(build_demo_topology())

    def test_unknown_router_rejected(self):
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"Z9": {"B": 1}})
        with pytest.raises(ControllerError):
            requirement.validate(build_demo_topology())

    def test_unknown_next_hop_rejected(self):
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"Z9": 1}})
        with pytest.raises(ControllerError):
            requirement.validate(build_demo_topology())

    def test_non_adjacent_next_hop_rejected(self):
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"C": 1}})
        with pytest.raises(ControllerError, match="neighbor"):
            requirement.validate(build_demo_topology())

    def test_loop_rejected(self):
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}, "B": {"A": 1}}
        )
        with pytest.raises(ControllerError, match="loop"):
            requirement.validate(build_demo_topology())

    def test_stranded_traffic_rejected(self):
        # A forwards only to R1, but R1 is forced to send everything back
        # toward nodes that never reach C... build a dead-end by forcing R1->A.
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"R1": 1}, "R1": {"A": 1}}
        )
        with pytest.raises(ControllerError):
            requirement.validate(build_demo_topology())

    def test_unannounced_prefix_rejected(self):
        requirement = DestinationRequirement(
            prefix=Prefix.parse("203.0.113.0/24"), next_hops={"A": {"B": 1}}
        )
        with pytest.raises(Exception):
            requirement.validate(build_demo_topology())


class TestRequirementSet:
    def test_add_get_remove(self):
        requirement = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}})
        bundle = RequirementSet([requirement])
        assert bundle.get(BLUE_PREFIX) is requirement
        assert BLUE_PREFIX in bundle
        bundle.remove(BLUE_PREFIX)
        assert bundle.get(BLUE_PREFIX) is None
        with pytest.raises(ControllerError):
            bundle.remove(BLUE_PREFIX)

    def test_add_replaces_same_prefix(self):
        first = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}})
        second = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"B": {"R2": 1}})
        bundle = RequirementSet([first])
        bundle.add(second)
        assert len(bundle) == 1
        assert bundle.get(BLUE_PREFIX) is second

    def test_total_entries_sums_over_prefixes(self):
        bundle = RequirementSet(
            [
                DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 2}}),
                DestinationRequirement(prefix=OTHER_PREFIX, next_hops={"B": {"R2": 1, "R3": 1}}),
            ]
        )
        assert bundle.total_entries() == 4

    def test_validate_checks_every_requirement(self):
        bundle = RequirementSet(
            [DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"C": 1}})]
        )
        with pytest.raises(ControllerError):
            bundle.validate(build_demo_topology())

    def test_iteration_sorted_by_prefix(self):
        topology = build_demo_topology()
        topology.attach_prefix("R4", OTHER_PREFIX)
        bundle = RequirementSet(
            [
                DestinationRequirement(prefix=OTHER_PREFIX, next_hops={"A": {"B": 1}}),
                DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}}),
            ]
        )
        assert [req.prefix for req in bundle] == sorted([BLUE_PREFIX, OTHER_PREFIX])


class TestDigests:
    """The plan cache keys on these; they must be content-only and stable."""

    def test_digest_is_insertion_order_independent(self):
        forward = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 1, "R1": 2}, "B": {"R2": 1}}
        )
        reversed_order = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"B": {"R2": 1}, "A": {"R1": 2, "B": 1}}
        )
        assert forward.digest() == reversed_order.digest()

    def test_digest_changes_with_content(self):
        base = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}})
        weight = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 2}})
        hop = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"R1": 1}})
        prefix = DestinationRequirement(prefix=OTHER_PREFIX, next_hops={"A": {"B": 1}})
        assert len({r.digest() for r in (base, weight, hop, prefix)}) == 4

    def test_set_digest_is_order_independent_and_content_sensitive(self):
        first = DestinationRequirement(prefix=BLUE_PREFIX, next_hops={"A": {"B": 1}})
        second = DestinationRequirement(prefix=OTHER_PREFIX, next_hops={"A": {"B": 1}})
        assert (
            RequirementSet([first, second]).digest()
            == RequirementSet([second, first]).digest()
        )
        assert RequirementSet([first]).digest() != RequirementSet([first, second]).digest()
