"""Tests for the on-demand load-balancing service."""

import pytest

from repro.core.controller import FibbingController
from repro.core.loadbalancer import OnDemandLoadBalancer
from repro.core.policies import LoadBalancerPolicy
from repro.dataplane.forwarding import route_fractional
from repro.monitoring.alarms import AlarmEvent
from repro.monitoring.collector import LinkLoadView
from repro.monitoring.notifications import ClientNotification, ClientRegistry
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.util.errors import ControllerError
from repro.util.prefixes import Prefix
from repro.util.units import mbps


def registry_with_clients(count_b: int, count_a: int) -> ClientRegistry:
    registry = ClientRegistry()
    for _ in range(count_b):
        registry.observe(
            ClientNotification(time=0.0, server="S1", ingress="B", prefix=BLUE_PREFIX, bitrate=mbps(1))
        )
    for _ in range(count_a):
        registry.observe(
            ClientNotification(time=0.0, server="S2", ingress="A", prefix=BLUE_PREFIX, bitrate=mbps(1))
        )
    return registry


def fake_alarm(time=20.0) -> AlarmEvent:
    return AlarmEvent(
        time=time,
        hot_links=(LinkLoadView(link=("B", "R2"), rate=mbps(31), capacity=mbps(32)),),
    )


class TestReactions:
    def test_first_surge_adds_ecmp_at_b_only(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 0))
        action = balancer.handle_alarm(fake_alarm())
        assert action is not None
        assert action.lies_injected == 1
        assert controller.active_lies()[0].anchor == "B"
        fibs = controller.static_fibs()
        assert fibs["B"].split_ratios(BLUE_PREFIX) == {"R2": 0.5, "R3": 0.5}
        assert fibs["A"].split_ratios(BLUE_PREFIX) == {"B": 1.0}

    def test_second_surge_adds_uneven_split_at_a(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 0))
        balancer.handle_alarm(fake_alarm(time=18.0))
        # 31 more clients now arrive behind A.
        balancer.clients = registry_with_clients(31, 31)
        action = balancer.handle_alarm(fake_alarm(time=37.0))
        assert action.lies_injected == 2
        assert controller.active_lie_count(BLUE_PREFIX) == 3
        fibs = controller.static_fibs()
        assert fibs["A"].split_ratios(BLUE_PREFIX)["R1"] == pytest.approx(2 / 3)
        # The congestion is actually resolved in the data plane.
        outcome = route_fractional(fibs, balancer.current_demands())
        assert outcome.loads.max_utilization(topology) < 0.7

    def test_reaction_with_no_clients_is_none(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        balancer = OnDemandLoadBalancer(controller, ClientRegistry())
        assert balancer.handle_alarm(fake_alarm()) is None
        assert balancer.reaction_count == 0

    def test_predicted_utilization_reported(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 31))
        action = balancer.handle_alarm(fake_alarm())
        assert action.predicted_max_utilization == pytest.approx(0.6458, abs=1e-3)

    def test_repeated_identical_alarms_do_not_churn(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 31))
        first = balancer.handle_alarm(fake_alarm(time=10.0))
        second = balancer.handle_alarm(fake_alarm(time=20.0))
        assert first.changed_network
        assert not second.changed_network
        assert balancer.total_lies_injected == 3

    def test_managed_prefix_filter(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        other = Prefix.parse("10.1.0.0/24")
        balancer = OnDemandLoadBalancer(
            controller, registry_with_clients(31, 0), managed_prefixes=[other]
        )
        assert balancer.handle_alarm(fake_alarm()) is None

    def test_rebalance_now_without_alarm(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 31))
        action = balancer.rebalance_now(time=5.0)
        assert action is not None
        assert action.time == 5.0
        assert controller.active_lie_count() == 3


class TestPolicy:
    def test_max_ecmp_entries_bound_split_granularity(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        policy = LoadBalancerPolicy(max_ecmp_entries=2)
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 31), policy=policy)
        balancer.handle_alarm(fake_alarm())
        fibs = controller.static_fibs(max_ecmp=2)
        ratios = fibs["A"].split_ratios(BLUE_PREFIX)
        # With only 2 entries the best approximation of 1/3-2/3 is 1/2-1/2.
        assert ratios == {"B": 0.5, "R1": 0.5}

    def test_policy_validation(self):
        with pytest.raises(ControllerError):
            LoadBalancerPolicy(utilization_threshold=0.5, clear_threshold=0.9)
        with pytest.raises(ControllerError):
            LoadBalancerPolicy(max_ecmp_entries=0)
        with pytest.raises(Exception):
            LoadBalancerPolicy(epsilon=0.0)

    def test_merge_report_attached_to_action(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 31))
        action = balancer.handle_alarm(fake_alarm())
        # The LP constrains every on-path router; the merger prunes the
        # transit routers whose default forwarding already matches.
        assert action.merge_report.routers_pruned >= 3
