"""Tests for the lie registry and diff-based updates."""

import pytest

from repro.core.lies import Lie, LieRegistry, LieState
from repro.igp.lsa import FakeNodeLsa
from repro.topologies.demo import BLUE_PREFIX
from repro.util.errors import ControllerError
from repro.util.prefixes import Prefix

OTHER_PREFIX = Prefix.parse("10.7.0.0/24")


def make_lsa(name="f1", anchor="B", forwarding="R3", cost=2.0, prefix=BLUE_PREFIX):
    return FakeNodeLsa(
        origin="ctrl",
        fake_node=name,
        anchor=anchor,
        link_cost=cost / 2,
        prefix=prefix,
        prefix_cost=cost / 2,
        forwarding_address=forwarding,
    )


class TestRegistryBasics:
    def test_commit_injection_registers_active_lie(self):
        registry = LieRegistry()
        update = registry.plan_update(BLUE_PREFIX, [make_lsa()])
        assert len(update.to_inject) == 1
        assert update.to_withdraw == ()
        registry.commit(update, now=5.0)
        assert registry.active_count(BLUE_PREFIX) == 1
        assert registry.active_lies()[0].injected_at == 5.0
        assert registry.prefixes() == [BLUE_PREFIX]

    def test_duplicate_commit_rejected(self):
        registry = LieRegistry()
        update = registry.plan_update(BLUE_PREFIX, [make_lsa()])
        registry.commit(update)
        with pytest.raises(ControllerError):
            registry.commit(update)

    def test_plan_update_rejects_wrong_prefix(self):
        registry = LieRegistry()
        with pytest.raises(ControllerError):
            registry.plan_update(OTHER_PREFIX, [make_lsa(prefix=BLUE_PREFIX)])

    def test_lie_signature_ignores_name(self):
        a = Lie(lsa=make_lsa(name="x"))
        b = Lie(lsa=make_lsa(name="y"))
        assert a.signature == b.signature


class TestDiffing:
    def test_identical_desired_state_is_noop(self):
        registry = LieRegistry()
        registry.commit(registry.plan_update(BLUE_PREFIX, [make_lsa(name="f1")]))
        update = registry.plan_update(BLUE_PREFIX, [make_lsa(name="f2")])
        assert update.is_noop
        assert update.unchanged == 1

    def test_new_lie_injected_old_kept(self):
        registry = LieRegistry()
        registry.commit(registry.plan_update(BLUE_PREFIX, [make_lsa(name="f1")]))
        desired = [make_lsa(name="f2"), make_lsa(name="f3", anchor="A", forwarding="R1", cost=3.0)]
        update = registry.plan_update(BLUE_PREFIX, desired)
        assert len(update.to_inject) == 1
        assert update.to_inject[0].anchor == "A"
        assert update.to_withdraw == ()
        assert update.unchanged == 1

    def test_obsolete_lie_withdrawn(self):
        registry = LieRegistry()
        registry.commit(
            registry.plan_update(
                BLUE_PREFIX,
                [make_lsa(name="f1"), make_lsa(name="f2", anchor="A", forwarding="R1", cost=3.0)],
            )
        )
        update = registry.plan_update(BLUE_PREFIX, [make_lsa(name="f3")])
        assert len(update.to_withdraw) == 1
        assert update.to_withdraw[0].anchor == "A"
        registry.commit(update, now=9.0)
        assert registry.active_count(BLUE_PREFIX) == 1
        withdrawn = [lie for lie in registry.history() if lie.state is LieState.WITHDRAWN]
        assert withdrawn[0].withdrawn_at == 9.0

    def test_multiplicity_matters_in_diff(self):
        registry = LieRegistry()
        # Two identical-signature lies active (uneven split replication).
        registry.commit(
            registry.plan_update(
                BLUE_PREFIX,
                [make_lsa(name="f1", anchor="A", forwarding="R1", cost=3.0),
                 make_lsa(name="f2", anchor="A", forwarding="R1", cost=3.0)],
            )
        )
        # Desired state only needs one of them: exactly one withdrawal.
        update = registry.plan_update(
            BLUE_PREFIX, [make_lsa(name="f3", anchor="A", forwarding="R1", cost=3.0)]
        )
        assert len(update.to_withdraw) == 1
        assert update.unchanged == 1

    def test_changed_cost_replaces_lie(self):
        registry = LieRegistry()
        registry.commit(registry.plan_update(BLUE_PREFIX, [make_lsa(name="f1", cost=2.0)]))
        update = registry.plan_update(BLUE_PREFIX, [make_lsa(name="f2", cost=4.0)])
        assert len(update.to_inject) == 1
        assert len(update.to_withdraw) == 1

    def test_prefixes_are_independent(self):
        registry = LieRegistry()
        registry.commit(registry.plan_update(BLUE_PREFIX, [make_lsa(name="f1")]))
        registry.commit(
            registry.plan_update(OTHER_PREFIX, [make_lsa(name="f2", prefix=OTHER_PREFIX)])
        )
        update = registry.plan_update(BLUE_PREFIX, [])
        assert len(update.to_withdraw) == 1
        registry.commit(update)
        assert registry.active_count(OTHER_PREFIX) == 1
        assert registry.active_count(BLUE_PREFIX) == 0


class TestClear:
    def test_clear_prefix_plans_all_withdrawals(self):
        registry = LieRegistry()
        registry.commit(
            registry.plan_update(BLUE_PREFIX, [make_lsa(name="f1"), make_lsa(name="f2", anchor="A", forwarding="R1", cost=3.0)])
        )
        update = registry.clear(BLUE_PREFIX)
        assert len(update.to_withdraw) == 2
        registry.commit(update)
        assert len(registry) == 0

    def test_withdraw_unknown_lie_rejected(self):
        registry = LieRegistry()
        from repro.core.lies import LieUpdate

        bogus = LieUpdate(
            prefix=BLUE_PREFIX, to_inject=(), to_withdraw=(make_lsa(name="ghost"),), unchanged=0
        )
        with pytest.raises(ControllerError):
            registry.commit(bogus)

    def test_active_lsas_returns_lsa_objects(self):
        registry = LieRegistry()
        registry.commit(registry.plan_update(BLUE_PREFIX, [make_lsa(name="f1")]))
        lsas = registry.active_lsas()
        assert len(lsas) == 1
        assert isinstance(lsas[0], FakeNodeLsa)
