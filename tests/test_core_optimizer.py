"""Tests for the min-max link-utilisation LP."""

import pytest

from repro.core.optimizer import MinMaxLoadOptimizer
from repro.dataplane.demand import TrafficMatrix
from repro.dataplane.forwarding import route_fractional
from repro.dataplane.linkstats import LinkLoads
from repro.igp.network import compute_static_fibs
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.topologies.random import random_topology
from repro.topologies.zoo import dumbbell
from repro.util.errors import ControllerError
from repro.util.prefixes import Prefix
from repro.util.units import mbps


class TestDemoInstance:
    def test_fig2_steady_state_objective(self, fig2_demands):
        """The min-max optimum of the t>35s situation is (31+31/3)/2 / 32."""
        optimizer = MinMaxLoadOptimizer(build_demo_topology())
        result = optimizer.optimize(fig2_demands)
        expected = (mbps(31) + mbps(31) / 3) / 2 / mbps(32)
        assert result.objective == pytest.approx(expected, rel=1e-4)

    def test_fractions_match_paper_splits(self, fig2_demands):
        optimizer = MinMaxLoadOptimizer(build_demo_topology())
        fractions = optimizer.optimize(fig2_demands).to_fractions()[BLUE_PREFIX]
        assert fractions["A"]["B"] == pytest.approx(1 / 3, abs=1e-3)
        assert fractions["A"]["R1"] == pytest.approx(2 / 3, abs=1e-3)
        assert fractions["B"]["R2"] == pytest.approx(0.5, abs=1e-3)
        assert fractions["B"]["R3"] == pytest.approx(0.5, abs=1e-3)

    def test_flow_conservation_holds(self, fig2_demands):
        optimizer = MinMaxLoadOptimizer(build_demo_topology())
        result = optimizer.optimize(fig2_demands)
        flows = result.flows[BLUE_PREFIX]
        for router in ["A", "B", "R1", "R2", "R3", "R4"]:
            inbound = sum(v for (s, t), v in flows.items() if t == router)
            outbound = sum(v for (s, t), v in flows.items() if s == router)
            demand = fig2_demands.rate(router, BLUE_PREFIX)
            assert outbound - inbound == pytest.approx(demand, rel=1e-6, abs=1.0)

    def test_optimum_beats_default_routing(self, fig2_demands):
        topology = build_demo_topology()
        optimizer = MinMaxLoadOptimizer(topology)
        optimum = optimizer.optimize(fig2_demands).objective
        default = route_fractional(
            compute_static_fibs(topology), fig2_demands
        ).loads.max_utilization(topology)
        assert optimum < default

    def test_single_prefix_subset_optimisation(self, fig2_demands):
        optimizer = MinMaxLoadOptimizer(build_demo_topology())
        result = optimizer.optimize(fig2_demands, prefixes=[BLUE_PREFIX])
        assert result.prefixes == (BLUE_PREFIX,)

    def test_link_loads_view(self, fig2_demands):
        optimizer = MinMaxLoadOptimizer(build_demo_topology())
        loads = optimizer.optimize(fig2_demands).link_loads()
        assert loads.max_utilization(build_demo_topology()) == pytest.approx(0.6458, abs=1e-3)


class TestPathStretch:
    def test_unrestricted_lp_spreads_single_source_over_three_paths(self):
        demands = TrafficMatrix.from_dict({("B", BLUE_PREFIX): mbps(31)})
        optimizer = MinMaxLoadOptimizer(build_demo_topology())
        fractions = optimizer.optimize(demands).to_fractions()[BLUE_PREFIX]
        # Without a stretch limit the LP also detours through A-R1-R4.
        assert len(fractions["B"]) == 3

    def test_stretch_one_keeps_only_reasonable_paths(self):
        demands = TrafficMatrix.from_dict({("B", BLUE_PREFIX): mbps(31)})
        optimizer = MinMaxLoadOptimizer(build_demo_topology(), max_stretch=1.0)
        fractions = optimizer.optimize(demands).to_fractions()[BLUE_PREFIX]
        assert set(fractions["B"]) == {"R2", "R3"}
        assert fractions["B"]["R2"] == pytest.approx(0.5, abs=1e-3)

    def test_stretch_zero_forces_shortest_paths(self):
        demands = TrafficMatrix.from_dict({("A", BLUE_PREFIX): mbps(10)})
        optimizer = MinMaxLoadOptimizer(build_demo_topology(), max_stretch=0.0)
        fractions = optimizer.optimize(demands).to_fractions()[BLUE_PREFIX]
        assert fractions["A"] == {"B": 1.0}

    def test_negative_stretch_rejected(self):
        with pytest.raises(ControllerError):
            MinMaxLoadOptimizer(build_demo_topology(), max_stretch=-1.0)


class TestGeneralProperties:
    def test_objective_can_exceed_one_when_overloaded(self):
        topology = dumbbell(pairs=1, edge_capacity=mbps(10))
        prefix = topology.attachments_of("Dst0")[0].prefix
        demands = TrafficMatrix.from_dict({("Src0", prefix): mbps(20)})
        result = MinMaxLoadOptimizer(topology).optimize(demands)
        assert result.objective > 1.0

    def test_background_load_shifts_optimum(self):
        topology = build_demo_topology()
        demands = TrafficMatrix.from_dict({("B", BLUE_PREFIX): mbps(10)})
        background = LinkLoads()
        background.add("B", "R2", mbps(30))
        with_background = MinMaxLoadOptimizer(topology, background=background).optimize(demands)
        without = MinMaxLoadOptimizer(topology).optimize(demands)
        assert with_background.objective > without.objective
        # With a nearly full B-R2, most demand must move to B-R3.
        fractions = with_background.to_fractions()[BLUE_PREFIX]
        assert fractions["B"].get("R3", 0.0) > 0.5

    def test_unknown_prefix_rejected(self):
        optimizer = MinMaxLoadOptimizer(build_demo_topology())
        demands = TrafficMatrix.from_dict({("A", "203.0.113.0/24"): 1.0})
        with pytest.raises(Exception):
            optimizer.optimize(demands)

    def test_empty_demands_rejected(self):
        optimizer = MinMaxLoadOptimizer(build_demo_topology())
        with pytest.raises(ControllerError):
            optimizer.optimize(TrafficMatrix())

    def test_solution_has_no_cycles(self):
        for seed in range(3):
            topology = random_topology(10, seed=seed)
            prefix = topology.prefixes[0]
            ingresses = [r for r in topology.routers if r != topology.prefix_attachments(prefix)[0].router]
            demands = TrafficMatrix.from_dict({(ingresses[0], prefix): mbps(5), (ingresses[1], prefix): mbps(5)})
            result = MinMaxLoadOptimizer(topology).optimize(demands)
            flows = result.flows[prefix]
            # Kahn-style check: positive-flow subgraph must be a DAG.
            nodes = {n for link in flows for n in link}
            edges = {link for link, v in flows.items() if v > 1e-6}
            removed = True
            while removed and edges:
                removed = False
                sinks = {n for n in nodes if not any(s == n for s, _ in edges)}
                new_edges = {(s, t) for (s, t) in edges if t not in sinks and s not in sinks}
                if new_edges != edges:
                    edges = new_edges
                    removed = True
                nodes = {n for link in edges for n in link}
            assert not edges, f"cycle remaining in LP solution for seed {seed}"

    def test_objective_never_above_worst_single_path(self, fig2_demands):
        """Optimal min-max cannot be worse than any feasible routing."""
        topology = build_demo_topology()
        result = MinMaxLoadOptimizer(topology).optimize(fig2_demands)
        default_util = route_fractional(
            compute_static_fibs(topology), fig2_demands
        ).loads.max_utilization(topology)
        assert result.objective <= default_util + 1e-9

    def test_min_fraction_filtering(self, fig2_demands):
        optimizer = MinMaxLoadOptimizer(build_demo_topology())
        result = optimizer.optimize(fig2_demands)
        coarse = result.to_fractions(min_fraction=0.4)
        # At A, the 1/3 share toward B falls below the 0.4 threshold and is
        # dropped; the remaining fraction is renormalised to 1.0.
        assert coarse[BLUE_PREFIX]["A"] == {"R1": pytest.approx(1.0)}


class TestBackgroundLoadAwareCaching:
    """Whole-LP reuse on the measurement-driven path (quantised digests).

    Background loads are live measurements the graph version cannot attest;
    they enter the plan-cache key as a (quantised) digest, so unchanged —
    or sub-bucket-jittered — measurements reuse the cached solution and
    ``ctl_opt_cache_hits`` fires on the measurement-driven path too.
    """

    def build(self, background, quantum=0.0):
        from repro.core.reconciler import PlanCache

        topology = build_demo_topology()
        plan_cache = PlanCache()
        optimizer = MinMaxLoadOptimizer(
            topology,
            background=background,
            plan_cache=plan_cache,
            background_quantum=quantum,
        )
        return optimizer, plan_cache

    def background(self, load=mbps(4)):
        loads = LinkLoads()
        loads.add("R1", "R4", load)
        return loads

    def test_unchanged_background_reuses_the_lp(self, fig2_demands):
        optimizer, plan_cache = self.build(self.background())
        first = optimizer.optimize(fig2_demands, plan_version=7)
        assert plan_cache.counters.opt_cache_hits == 0
        second = optimizer.optimize(fig2_demands, plan_version=7)
        assert plan_cache.counters.opt_cache_hits == 1
        assert second is first

    def test_changed_background_misses_exact_cache(self, fig2_demands):
        optimizer, plan_cache = self.build(self.background())
        optimizer.optimize(fig2_demands, plan_version=7)
        optimizer.background = self.background(mbps(12))
        changed = optimizer.optimize(fig2_demands, plan_version=7)
        assert plan_cache.counters.opt_cache_hits == 0
        # The fresh solve actually saw the new background (R1->R4 carries
        # 12 of 32 Mbit/s, so less optimised flow fits there).
        assert changed.objective > 0

    def test_jitter_within_the_quantum_still_hits(self, fig2_demands):
        optimizer, plan_cache = self.build(self.background(mbps(4)), quantum=mbps(1))
        first = optimizer.optimize(fig2_demands, plan_version=7)
        optimizer.background = self.background(mbps(4) + 1000.0)  # sub-bucket jitter
        second = optimizer.optimize(fig2_demands, plan_version=7)
        assert plan_cache.counters.opt_cache_hits == 1
        assert second is first

    def test_jitter_beyond_the_quantum_misses(self, fig2_demands):
        optimizer, plan_cache = self.build(self.background(mbps(4)), quantum=mbps(1))
        optimizer.optimize(fig2_demands, plan_version=7)
        optimizer.background = self.background(mbps(6))
        optimizer.optimize(fig2_demands, plan_version=7)
        assert plan_cache.counters.opt_cache_hits == 0

    def test_negative_quantum_is_rejected(self):
        with pytest.raises(ControllerError):
            MinMaxLoadOptimizer(build_demo_topology(), background_quantum=-1.0)

    def test_background_digest_is_stable_and_quantised(self):
        from repro.core.optimizer import background_digest

        exact = background_digest(self.background(mbps(4)), 0.0)
        assert exact == background_digest(self.background(mbps(4)), 0.0)
        assert exact != background_digest(self.background(mbps(5)), 0.0)
        bucketed = background_digest(self.background(mbps(4)), mbps(1))
        assert bucketed == background_digest(self.background(mbps(4) + 1.0), mbps(1))
        assert bucketed != background_digest(self.background(mbps(6)), mbps(1))
