"""Tests for repro.dataplane.forwarding (fluid and hashed routing)."""

import pytest

from repro.dataplane.demand import TrafficMatrix
from repro.dataplane.flows import Flow
from repro.dataplane.forwarding import (
    forwarding_graph,
    route_flows_hashed,
    route_fractional,
)
from repro.igp.fib import Fib, FibEntry, PrefixFib
from repro.igp.network import compute_static_fibs
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.util.errors import RoutingError
from repro.util.prefixes import Prefix


@pytest.fixture
def baseline_fibs():
    return compute_static_fibs(build_demo_topology())


@pytest.fixture
def fibbed_fibs():
    return compute_static_fibs(build_demo_topology(), demo_lies())


class TestForwardingGraph:
    def test_graph_structure_baseline(self, baseline_fibs):
        graph = forwarding_graph(baseline_fibs, BLUE_PREFIX)
        assert graph["A"] == {"B": 1.0}
        assert graph["B"] == {"R2": 1.0}
        assert graph["C"] == {}  # local delivery

    def test_graph_structure_with_lies(self, fibbed_fibs):
        graph = forwarding_graph(fibbed_fibs, BLUE_PREFIX)
        assert graph["A"]["R1"] == pytest.approx(2 / 3)
        assert graph["B"] == {"R2": 0.5, "R3": 0.5}

    def test_routers_without_entry_are_absent(self, baseline_fibs):
        graph = forwarding_graph(baseline_fibs, Prefix.parse("10.1.0.0/24"))
        assert "B" in graph  # S1 prefix is attached at B
        assert graph["B"] == {}


class TestFractionalRouting:
    def test_fig1b_baseline_loads(self, baseline_fibs, demo_demands):
        outcome = route_fractional(baseline_fibs, demo_demands)
        assert outcome.loads.load("A", "B") == pytest.approx(100.0)
        assert outcome.loads.load("B", "R2") == pytest.approx(200.0)
        assert outcome.loads.load("R2", "C") == pytest.approx(200.0)
        assert outcome.loads.load("A", "R1") == 0.0
        assert outcome.delivered == pytest.approx(200.0)
        assert outcome.undeliverable == 0.0

    def test_fig1d_fibbed_loads(self, fibbed_fibs, demo_demands):
        outcome = route_fractional(fibbed_fibs, demo_demands)
        for link in [("A", "R1"), ("B", "R2"), ("B", "R3"), ("R1", "R4"), ("R4", "C")]:
            assert outcome.loads.load(*link) == pytest.approx(200.0 / 3)
        assert outcome.loads.load("A", "B") == pytest.approx(100.0 / 3)
        assert outcome.delivered == pytest.approx(200.0)

    def test_conservation_of_traffic(self, fibbed_fibs, demo_demands):
        outcome = route_fractional(fibbed_fibs, demo_demands)
        assert outcome.delivered + outcome.undeliverable == pytest.approx(demo_demands.total())

    def test_demand_at_destination_router_is_local(self, baseline_fibs):
        demands = TrafficMatrix.from_dict({("C", BLUE_PREFIX): 50.0})
        outcome = route_fractional(baseline_fibs, demands)
        assert outcome.delivered == 50.0
        assert len(outcome.loads) == 0

    def test_unroutable_demand_counted(self, baseline_fibs):
        demands = TrafficMatrix.from_dict({("A", "203.0.113.0/24"): 10.0})
        outcome = route_fractional(baseline_fibs, demands)
        assert outcome.undeliverable == 10.0
        assert outcome.loss_fraction == 1.0

    def test_forwarding_loop_detected(self):
        prefix = BLUE_PREFIX
        loop_fibs = {
            "X": Fib("X", {prefix: PrefixFib(prefix, 1, (FibEntry("Y", 1),))}),
            "Y": Fib("Y", {prefix: PrefixFib(prefix, 1, (FibEntry("X", 1),))}),
        }
        demands = TrafficMatrix.from_dict({("X", prefix): 1.0})
        with pytest.raises(RoutingError):
            route_fractional(loop_fibs, demands)


class TestHashedRouting:
    def build_flows(self, count: int, ingress: str = "B") -> list:
        return [
            Flow(flow_id=i, ingress=ingress, prefix=BLUE_PREFIX, demand=1.0)
            for i in range(count)
        ]

    def test_single_flow_takes_single_path(self, fibbed_fibs):
        outcome = route_flows_hashed(fibbed_fibs, self.build_flows(1))
        path = outcome.flow_paths[0]
        assert path.delivered
        assert path.hops[0] == "B"
        assert path.hops[-1] == "C"
        # A single flow is never split: exactly one outgoing link at B is used.
        used_at_b = [link for link in path.links if link[0] == "B"]
        assert len(used_at_b) == 1

    def test_many_flows_approximate_even_split(self, fibbed_fibs):
        outcome = route_flows_hashed(fibbed_fibs, self.build_flows(400), salt=1)
        via_r2 = outcome.loads.load("B", "R2")
        via_r3 = outcome.loads.load("B", "R3")
        assert via_r2 + via_r3 == pytest.approx(400.0)
        assert abs(via_r2 - via_r3) < 80  # within ~20% of an even split

    def test_uneven_split_at_a_is_respected(self, fibbed_fibs):
        flows = [
            Flow(flow_id=i, ingress="A", prefix=BLUE_PREFIX, demand=1.0) for i in range(600)
        ]
        outcome = route_flows_hashed(fibbed_fibs, flows, salt=3)
        via_b = outcome.loads.load("A", "B")
        via_r1 = outcome.loads.load("A", "R1")
        assert via_b + via_r1 == pytest.approx(600.0)
        # Expect roughly 1/3 vs 2/3.
        assert 0.22 < via_b / 600.0 < 0.45
        assert 0.55 < via_r1 / 600.0 < 0.78

    def test_deterministic_for_same_salt(self, fibbed_fibs):
        flows = self.build_flows(50)
        first = route_flows_hashed(fibbed_fibs, flows, salt=7)
        second = route_flows_hashed(fibbed_fibs, flows, salt=7)
        assert {
            fid: path.hops for fid, path in first.flow_paths.items()
        } == {fid: path.hops for fid, path in second.flow_paths.items()}

    def test_different_salt_changes_some_choices(self, fibbed_fibs):
        flows = self.build_flows(50)
        first = route_flows_hashed(fibbed_fibs, flows, salt=1)
        second = route_flows_hashed(fibbed_fibs, flows, salt=2)
        assert any(
            first.flow_paths[fid].hops != second.flow_paths[fid].hops for fid in range(50)
        )

    def test_undeliverable_flow_reported(self, baseline_fibs):
        flows = [Flow(flow_id=0, ingress="A", prefix=Prefix.parse("203.0.113.0/24"), demand=2.0)]
        outcome = route_flows_hashed(baseline_fibs, flows)
        assert outcome.undeliverable == 2.0
        assert not outcome.flow_paths[0].delivered

    def test_looping_fibs_flag_the_flow(self):
        prefix = BLUE_PREFIX
        loop_fibs = {
            "X": Fib("X", {prefix: PrefixFib(prefix, 1, (FibEntry("Y", 1),))}),
            "Y": Fib("Y", {prefix: PrefixFib(prefix, 1, (FibEntry("X", 1),))}),
        }
        flows = [Flow(flow_id=0, ingress="X", prefix=prefix, demand=1.0)]
        outcome = route_flows_hashed(loop_fibs, flows)
        assert outcome.flow_paths[0].looped
        assert not outcome.flow_paths[0].delivered

    def test_fibbing_never_creates_loops_in_demo(self, fibbed_fibs):
        flows = self.build_flows(100, ingress="A") + self.build_flows(100, ingress="B")
        # Re-number to keep ids unique.
        flows = [
            Flow(flow_id=i, ingress=flow.ingress, prefix=flow.prefix, demand=flow.demand)
            for i, flow in enumerate(flows)
        ]
        outcome = route_flows_hashed(fibbed_fibs, flows)
        assert not any(path.looped for path in outcome.flow_paths.values())
        assert all(path.delivered for path in outcome.flow_paths.values())
