"""Differential property tests for the incremental RIB/FIB engine.

Mirror of ``tests/test_igp_spf_incremental.py`` one layer up the stack: after
an arbitrary sequence of weight changes, link failures/additions, prefix
attachments/detachments and fake-LSA injections/withdrawals, the per-prefix
dirty repair served by :class:`~repro.igp.rib_cache.RibCache` must be
indistinguishable from a from-scratch :func:`~repro.igp.rib.compute_rib` —
contributions, costs and fake-node flags bit-identical — and the repaired
FIBs must equal a from-scratch :func:`~repro.igp.fib.resolve_rib_to_fib`.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.igp.fib import resolve_rib_to_fib
from repro.igp.graph import ComputationGraph
from repro.igp.lsa import FakeNodeLsa
from repro.igp.rib import compute_rib
from repro.igp.rib_cache import RibCache
from repro.topologies.random import random_topology
from repro.util.errors import TopologyError
from repro.util.prefixes import Prefix

TEST_PREFIX = Prefix.parse("10.99.0.0/24")
MAX_ECMP = 16


def assert_same_rib(incremental, full, context=""):
    """The strict differential oracle: identical prefixes, costs, contributions."""
    assert incremental.router == full.router, context
    assert incremental.prefixes == full.prefixes, context
    for prefix in full.prefixes:
        mine = incremental.route(prefix)
        want = full.route(prefix)
        assert mine.cost == want.cost, f"{context} prefix={prefix}"
        assert mine.contributions == want.contributions, f"{context} prefix={prefix}"


def assert_same_fib(incremental, full, context=""):
    assert incremental.prefixes == full.prefixes, context
    for prefix in full.prefixes:
        assert incremental.lookup(prefix) == full.lookup(prefix), (
            f"{context} prefix={prefix}"
        )


class MutationDriver:
    """Applies random topology/prefix/lie mutations and cross-checks every router."""

    def __init__(self, seed, num_routers=10, edge_probability=0.3):
        self.rng = random.Random(seed)
        self.topology = random_topology(
            num_routers, edge_probability=edge_probability, seed=seed
        )
        self.lies = {}
        self.cache = RibCache()
        self.lie_counter = 0
        self.prefix_counter = 0
        self.steps_applied = 0

    def apply(self, action):
        rng = self.rng
        topology = self.topology
        if action == "weight":
            links = topology.undirected_links
            source, target = links[rng.randrange(len(links))]
            weight = rng.choice([1, 2, 3, 5, round(rng.random() * 4 + 0.5, 3)])
            topology.set_weight(source, target, weight)
        elif action == "fail":
            links = topology.undirected_links
            if len(links) <= 2:
                return False
            source, target = links[rng.randrange(len(links))]
            topology.remove_link(source, target)
            # A real controller withdraws lies whose forwarding address rode
            # on the failed link; keep the lie set resolvable like it would.
            self.lies = {
                name: lie
                for name, lie in self.lies.items()
                if {lie.anchor, lie.forwarding_address} != {source, target}
            }
        elif action == "add_link":
            source, target = rng.sample(topology.routers, 2)
            if topology.has_link(source, target):
                return False
            topology.add_link(source, target, weight=rng.randint(1, 5))
        elif action == "attach":
            router = rng.choice(topology.routers)
            if rng.random() < 0.5:
                # Fresh prefix behind a random router.
                self.prefix_counter += 1
                prefix = Prefix.parse(f"10.200.{self.prefix_counter % 256}.0/24")
            else:
                # Second announcer for an existing prefix (anycast-style).
                prefix = rng.choice(topology.prefixes)
            try:
                topology.attach_prefix(router, prefix, cost=rng.choice([0, 1, 2]))
            except TopologyError:
                return False  # already attached there
        elif action == "detach":
            prefixes = topology.prefixes
            if not prefixes:
                return False
            prefix = rng.choice(prefixes)
            attachment = rng.choice(topology.prefix_attachments(prefix))
            topology.detach_prefix(attachment.router, prefix)
        elif action == "inject":
            anchor = rng.choice(topology.routers)
            neighbors = topology.neighbors(anchor)
            if not neighbors:
                return False
            self.lie_counter += 1
            name = f"fake-{self.lie_counter}"
            self.lies[name] = FakeNodeLsa(
                origin="controller",
                fake_node=name,
                anchor=anchor,
                link_cost=round(rng.random() * 2 + 0.1, 4),
                prefix=rng.choice([TEST_PREFIX] + topology.prefixes),
                prefix_cost=round(rng.random(), 4),
                forwarding_address=rng.choice(neighbors),
            )
        elif action == "withdraw":
            if not self.lies:
                return False
            self.lies.pop(rng.choice(sorted(self.lies)))
        else:  # pragma: no cover - defensive
            raise ValueError(action)
        self.steps_applied += 1
        return True

    def check_all_routers(self, context=""):
        graph = ComputationGraph.from_topology(self.topology, self.lies.values())
        graph = self.cache.observe(graph)
        for router in self.topology.routers:
            rib, fib = self.cache.resolve(graph, router, max_ecmp=MAX_ECMP)
            full_rib = compute_rib(graph, router)
            assert_same_rib(rib, full_rib, f"{context} router={router}")
            full_fib = resolve_rib_to_fib(graph, full_rib, max_ecmp=MAX_ECMP)
            assert_same_fib(fib, full_fib, f"{context} router={router}")


ACTIONS = (
    "weight",
    "fail",
    "add_link",
    "attach",
    "detach",
    "inject",
    "withdraw",
)


class TestDifferentialRandomized:
    """Seeded randomized sequences; jointly >= 250 mutation steps."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mutation_sequence(self, seed):
        driver = MutationDriver(seed)
        driver.check_all_routers(context=f"seed={seed} initial")
        steps = 0
        while steps < 25:
            action = driver.rng.choice(ACTIONS)
            if not driver.apply(action):
                continue
            steps += 1
            driver.check_all_routers(context=f"seed={seed} step={steps} action={action}")
        assert driver.steps_applied >= 25

    def test_cache_counters_reconcile_with_lookups(self):
        driver = MutationDriver(seed=42)
        steps = 0
        while steps < 10:
            if driver.apply(driver.rng.choice(ACTIONS)):
                steps += 1
                driver.check_all_routers()
        counters = driver.cache.counters
        assert counters.rib_lookups == (
            counters.hits
            + counters.incremental_updates
            + counters.full_recomputes
            + counters.fallbacks
        )
        # 10 mutation rounds x every router went through the cache.
        assert counters.rib_lookups >= 10 * len(driver.topology.routers)
        assert counters.incremental_updates > 0
        # Dirty tracking must actually pay off: across a long churn most
        # routes are carried over, not re-resolved.
        assert counters.prefixes_reused > counters.prefixes_repaired


class TestDifferentialHypothesis:
    """Hypothesis-driven action sequences on a smaller topology."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        actions=st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=8),
    )
    def test_any_action_sequence_matches_full_rib(self, seed, actions):
        driver = MutationDriver(seed, num_routers=7, edge_probability=0.35)
        for index, action in enumerate(actions):
            if driver.apply(action):
                driver.check_all_routers(
                    context=f"seed={seed} step={index} action={action}"
                )


class TestCacheStaleness:
    """Version gaps, dirty-threshold fallbacks and no-op deltas all behave."""

    def build(self, seed=3):
        driver = MutationDriver(seed)
        driver.check_all_routers()  # warm every router at the initial version
        return driver

    def test_repair_across_a_multi_step_version_gap(self):
        """Several uncheckpointed mutations are repaired in one incremental step."""
        driver = self.build()
        incremental_before = driver.cache.counters.incremental_updates
        full_before = driver.cache.counters.full_recomputes
        applied = 0
        while applied < 3:
            if driver.apply(driver.rng.choice(("weight", "inject", "attach"))):
                applied += 1
        driver.check_all_routers(context="after 3-step gap")
        counters = driver.cache.counters
        assert counters.incremental_updates > incremental_before
        assert counters.full_recomputes == full_before

    def test_truncated_delta_log_forces_full_recompute(self):
        """A version gap beyond the delta log's reach is a counted full miss."""
        driver = self.build()
        full_before = driver.cache.counters.full_recomputes
        graph = ComputationGraph.from_topology(driver.topology, driver.lies.values())
        graph = driver.cache.observe(graph)
        source, target = driver.topology.undirected_links[0]
        # Overflow the per-graph delta log (bounded steps) on the live graph.
        for step in range(2000):
            graph.add_edge(source, target, 2 + (step % 7))
        assert graph.changes_since(0) is None
        driver.check_all_routers(context="after log truncation")
        counters = driver.cache.counters
        assert counters.full_recomputes >= full_before + len(driver.topology.routers)

    def test_dirty_threshold_fallback_is_counted_and_correct(self):
        """A change dirtying more than the threshold falls back to a full rescan."""
        driver = MutationDriver(seed=5)
        driver.cache = RibCache(dirty_threshold=0.0)  # any dirty prefix trips it
        driver.check_all_routers()
        fallback_before = driver.cache.counters.fallbacks
        assert driver.apply("weight")
        driver.check_all_routers(context="past threshold")
        counters = driver.cache.counters
        assert counters.fallbacks > fallback_before
        # At threshold 0 a repair is only allowed when nothing is dirty, so
        # no prefix is ever re-resolved incrementally.
        assert counters.prefixes_repaired == 0

    def test_noop_delta_is_a_pure_hit(self):
        """Rebuilding an identical graph keeps the version: pure cache hits."""
        driver = self.build()
        hits_before = driver.cache.counters.hits
        incremental_before = driver.cache.counters.incremental_updates
        full_before = driver.cache.counters.full_recomputes
        driver.check_all_routers(context="no-op rebuild")
        counters = driver.cache.counters
        assert counters.hits >= hits_before + len(driver.topology.routers)
        assert counters.incremental_updates == incremental_before
        assert counters.full_recomputes == full_before

    def test_lost_forwarding_adjacency_matches_full_resolution(self):
        """An edge removal can strip a lie's forwarding-address adjacency
        while the route itself stays byte-identical (the fake node's own
        distance is untouched).  The repaired FIB must reproduce what a
        from-scratch resolution does — here: raise, not serve a stale entry
        forwarding onto the dead link."""
        from repro.util.errors import RoutingError

        graph = ComputationGraph()
        for source, target in [("A", "B"), ("A", "C"), ("B", "C")]:
            graph.add_edge(source, target, 1.0)
            graph.add_edge(target, source, 1.0)
        graph.add_fake_node(
            name="F",
            anchor="A",
            link_cost=0.5,
            prefix=TEST_PREFIX,
            prefix_cost=0.0,
            forwarding_address="B",
        )
        cache = RibCache()
        cache.observe(graph)
        _, fib = cache.resolve(graph, "A", max_ecmp=MAX_ECMP)
        assert fib.lookup(TEST_PREFIX).entries[0].via_fake == ("F",)

        graph.remove_edge("A", "B")
        graph.remove_edge("B", "A")
        with pytest.raises(RoutingError):
            resolve_rib_to_fib(graph, compute_rib(graph, "A"), max_ecmp=MAX_ECMP)
        with pytest.raises(RoutingError):
            cache.resolve(graph, "A", max_ecmp=MAX_ECMP)

    def test_invalidate_drops_entries_but_keeps_counters(self):
        driver = self.build()
        lookups_before = driver.cache.counters.rib_lookups
        full_before = driver.cache.counters.full_recomputes
        driver.cache.invalidate()
        driver.check_all_routers(context="after invalidate")
        counters = driver.cache.counters
        assert counters.rib_lookups > lookups_before
        assert counters.full_recomputes >= full_before + len(driver.topology.routers)


class TestFloatTieRegression:
    """Announcers tied within the SPF tolerance must all contribute.

    ``compute_rib`` used to compare ``total > best_cost +
    cost_tolerance(best_cost)`` with ``best_cost`` collected by exact
    ``min()`` — an asymmetric form that under-estimates the tolerance of the
    larger total compared to SPF's own ``costs_equal`` (which scales with the
    larger magnitude).  The tie-break now uses ``costs_equal`` itself; these
    tests pin the behaviour at the magnitudes where it matters.
    """

    def test_sub_tolerance_announcers_both_contribute_at_large_magnitude(self):
        graph = ComputationGraph()
        # Totals 3e12 and 3e12 + 2000: the relative tolerance up there is
        # 3000, so the two announcers are an ECMP tie despite the huge
        # absolute difference.
        graph.add_edge("S", "A", 1e12)
        graph.add_edge("A", "T", 2e12)
        graph.add_edge("S", "B", 2e12)
        graph.add_edge("B", "U", 1e12 + 2000.0)
        graph.announce("T", TEST_PREFIX, 0.0)
        graph.announce("U", TEST_PREFIX, 0.0)
        rib = compute_rib(graph, "S")
        route = rib.route(TEST_PREFIX)
        assert {c.announcer for c in route.contributions} == {"T", "U"}
        assert route.cost == 3e12

    def test_sub_tolerance_announcers_both_contribute_with_float_noise(self):
        graph = ComputationGraph()
        # 0.1 + 0.2 != 0.3 in binary floating point; the two announcer
        # totals differ by ~5.5e-17, far below the 1e-9 floor tolerance.
        graph.add_edge("S", "A", 0.1)
        graph.add_edge("A", "T", 0.2)
        graph.add_edge("S", "U", 0.3)
        graph.announce("T", TEST_PREFIX, 0.0)
        graph.announce("U", TEST_PREFIX, 0.0)
        rib = compute_rib(graph, "S")
        route = rib.route(TEST_PREFIX)
        assert {c.announcer for c in route.contributions} == {"T", "U"}

    def test_beyond_tolerance_announcer_is_dropped(self):
        graph = ComputationGraph()
        graph.add_edge("S", "T", 1.0)
        graph.add_edge("S", "U", 1.0 + 1e-6)
        graph.announce("T", TEST_PREFIX, 0.0)
        graph.announce("U", TEST_PREFIX, 0.0)
        rib = compute_rib(graph, "S")
        route = rib.route(TEST_PREFIX)
        assert {c.announcer for c in route.contributions} == {"T"}

    def test_incremental_repair_preserves_the_tie(self):
        graph = ComputationGraph()
        graph.add_edge("S", "A", 1e12)
        graph.add_edge("A", "T", 2e12)
        graph.add_edge("S", "B", 9e12)
        graph.add_edge("B", "U", 1e12)
        graph.announce("T", TEST_PREFIX, 0.0)
        graph.announce("U", TEST_PREFIX, 0.0)
        cache = RibCache()
        cache.observe(graph)
        first = cache.rib(graph, "S")
        assert {c.announcer for c in first.route(TEST_PREFIX).contributions} == {"T"}
        # Cheapen the B branch so U ties with T within the relative tolerance.
        graph.add_edge("S", "B", 2e12)
        graph.add_edge("B", "U", 1e12 + 2000.0)
        repaired = cache.rib(graph, "S")
        assert_same_rib(repaired, compute_rib(graph, "S"), "tie repair")
        assert {c.announcer for c in repaired.route(TEST_PREFIX).contributions} == {
            "T",
            "U",
        }
