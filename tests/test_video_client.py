"""Tests for the playback client buffer model."""

import pytest

from repro.util.errors import SimulationError, ValidationError
from repro.video.catalog import Video, VideoCatalog
from repro.video.client import PlaybackClient, PlaybackState
from repro.util.units import mbps

VIDEO = Video(title="clip", bitrate=mbps(1), duration=30.0)


def make_client(startup=2.0, resume=1.0) -> PlaybackClient:
    return PlaybackClient(
        client_id=0, video=VIDEO, started_at=0.0, startup_buffer=startup, resume_buffer=resume
    )


def full_rate_bits(seconds: float) -> float:
    """Bits received when downloading at exactly the video bitrate."""
    return VIDEO.bitrate * seconds


class TestCatalog:
    def test_video_size(self):
        assert VIDEO.size_bits == mbps(1) * 30.0

    def test_video_validation(self):
        with pytest.raises(ValidationError):
            Video(title="", bitrate=1.0, duration=1.0)
        with pytest.raises(ValidationError):
            Video(title="x", bitrate=0.0, duration=1.0)

    def test_catalog_lookup_and_duplicates(self):
        catalog = VideoCatalog([VIDEO])
        assert catalog.get("clip") is VIDEO
        assert "clip" in catalog
        with pytest.raises(ValidationError):
            catalog.add(VIDEO)
        with pytest.raises(ValidationError):
            catalog.get("missing")

    def test_default_catalog(self):
        catalog = VideoCatalog.default()
        assert len(catalog) == 2
        assert "demo-clip" in catalog


class TestStartup:
    def test_starts_in_startup_state(self):
        client = make_client()
        assert client.state is PlaybackState.STARTUP
        assert client.buffer_seconds == 0.0

    def test_playback_starts_after_startup_buffer(self):
        client = make_client(startup=2.0)
        client.advance(1.0, full_rate_bits(1.0))
        assert client.state is PlaybackState.STARTUP
        client.advance(2.0, full_rate_bits(1.0))
        assert client.state is PlaybackState.PLAYING
        assert client.startup_delay == pytest.approx(2.0)

    def test_slow_download_delays_startup(self):
        client = make_client(startup=2.0)
        # Half-rate download: needs 4 seconds to accumulate 2 content seconds.
        for second in range(1, 5):
            client.advance(float(second), full_rate_bits(0.5))
        assert client.state is PlaybackState.PLAYING
        assert client.startup_delay == pytest.approx(4.0)

    def test_never_started_counts_elapsed_as_delay(self):
        client = make_client()
        client.advance(5.0, 0.0)
        assert client.state is PlaybackState.STARTUP
        assert client.startup_delay == 5.0


class TestSmoothPlayback:
    def test_full_rate_playback_never_stalls(self):
        client = make_client()
        for second in range(1, 40):
            client.advance(float(second), full_rate_bits(1.0))
            if client.finished:
                break
        assert client.finished
        assert client.stall_count == 0
        assert client.total_stall_time == 0.0
        assert client.played_seconds == pytest.approx(VIDEO.duration)

    def test_fast_download_finishes_playback_in_real_time(self):
        client = make_client(startup=1.0)
        # Download the whole video in the first 5 seconds.
        for second in range(1, 6):
            client.advance(float(second), full_rate_bits(6.0))
        for second in range(6, 40):
            client.advance(float(second), 0.0)
            if client.finished:
                break
        assert client.finished
        assert client.stall_count == 0


class TestStalling:
    def test_starved_client_stalls(self):
        client = make_client(startup=2.0)
        client.advance(2.0, full_rate_bits(2.0))   # buffer = 2s, starts playing
        client.advance(4.0, full_rate_bits(2.0))   # keeps up
        client.advance(10.0, 0.0)                   # starvation: buffer drains
        assert client.state is PlaybackState.STALLED
        assert client.stall_count == 1
        assert client.total_stall_time > 0

    def test_stall_ends_after_resume_buffer(self):
        client = make_client(startup=2.0, resume=1.0)
        client.advance(2.0, full_rate_bits(2.0))
        client.advance(10.0, 0.0)  # stall
        client.advance(11.0, full_rate_bits(2.0))  # 2 content seconds arrive
        assert client.state is PlaybackState.PLAYING
        assert client.stall_count == 1
        assert client.total_stall_time == pytest.approx(11.0 - 4.0)

    def test_half_rate_playback_stalls_repeatedly(self):
        client = make_client(startup=2.0, resume=1.0)
        for second in range(1, 61):
            client.advance(float(second), full_rate_bits(0.5))
        assert client.stall_count >= 2
        assert client.total_stall_time > 5.0

    def test_rebuffer_time_roughly_matches_deficit(self):
        """At half rate, playing 30s of content takes about 60s wall clock."""
        client = make_client(startup=2.0, resume=1.0)
        second = 0
        while not client.finished and second < 120:
            second += 1
            client.advance(float(second), full_rate_bits(0.5))
        assert client.finished
        total_time = client.finished_at - client.started_at
        assert total_time == pytest.approx(60.0, rel=0.1)


class TestValidation:
    def test_time_cannot_go_backwards(self):
        client = make_client()
        client.advance(2.0, 0.0)
        with pytest.raises(SimulationError):
            client.advance(1.0, 0.0)

    def test_negative_bits_rejected(self):
        client = make_client()
        with pytest.raises(ValidationError):
            client.advance(1.0, -5.0)

    def test_negative_client_id_rejected(self):
        with pytest.raises(ValidationError):
            PlaybackClient(client_id=-1, video=VIDEO, started_at=0.0)

    def test_advance_after_finish_is_noop(self):
        client = make_client()
        for second in range(1, 40):
            client.advance(float(second), full_rate_bits(1.0))
            if client.finished:
                break
        finished_at = client.finished_at
        client.advance(100.0, full_rate_bits(10.0))
        assert client.finished_at == finished_at
