"""Tests for the lie merger (requirement reduction)."""

import pytest

from repro.core.augmentation import synthesize_lies
from repro.core.merger import LieMerger, reduce_weights
from repro.core.requirements import DestinationRequirement, RequirementSet
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.topologies.zoo import grid
from repro.util.errors import ControllerError
from repro.util.prefixes import Prefix


class TestReduceWeights:
    def test_divides_by_gcd(self):
        assert reduce_weights({"a": 2, "b": 4}) == {"a": 1, "b": 2}

    def test_coprime_weights_unchanged(self):
        assert reduce_weights({"a": 3, "b": 5}) == {"a": 3, "b": 5}

    def test_zero_weights_dropped(self):
        assert reduce_weights({"a": 4, "b": 0}) == {"a": 1}

    def test_empty_rejected(self):
        with pytest.raises(ControllerError):
            reduce_weights({})


class TestMergerPruning:
    def test_default_requirements_are_pruned(self):
        """Requirements matching what the IGP already does produce no lies."""
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX,
            next_hops={
                "A": {"B": 1, "R1": 2},
                "B": {"R2": 1, "R3": 1},
                "R1": {"R4": 1},
                "R2": {"C": 1},
                "R3": {"C": 1},
                "R4": {"C": 1},
            },
        )
        merger = LieMerger(topology)
        reduced, report = merger.optimize(RequirementSet([requirement]))
        only = list(reduced)[0]
        assert only.routers == ["A", "B"]
        assert report.routers_pruned == 4
        assert report.entries_saved == 4

    def test_pruned_requirement_still_produces_paper_lies(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX,
            next_hops={"A": {"B": 1, "R1": 2}, "B": {"R2": 1, "R3": 1}, "R4": {"C": 1}},
        )
        reduced, _ = LieMerger(topology).optimize(RequirementSet([requirement]))
        lies = []
        for req in reduced:
            lies.extend(synthesize_lies(topology, req))
        assert len(lies) == 3

    def test_existing_ecmp_prune(self):
        topology = grid(2, 2, with_loopbacks=False)
        prefix = Prefix.parse("198.51.100.0/24")
        topology.attach_prefix("G1_1", prefix)
        requirement = DestinationRequirement(
            prefix=prefix, next_hops={"G0_0": {"G0_1": 2, "G1_0": 2}}
        )
        reduced, report = LieMerger(topology).optimize(RequirementSet([requirement]))
        assert len(reduced) == 0
        assert report.routers_pruned == 1

    def test_weight_reduction_before_pruning(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"B": {"R2": 2, "R3": 2}}
        )
        reduced, _ = LieMerger(topology).optimize(RequirementSet([requirement]))
        assert list(reduced)[0].weights_at("B") == {"R2": 1, "R3": 1}

    def test_report_per_prefix_accounting(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 2, "R1": 4}}
        )
        _, report = LieMerger(topology).optimize(RequirementSet([requirement]))
        before, after = report.per_prefix[str(BLUE_PREFIX)]
        assert before == 6
        assert after == 3

    def test_empty_requirement_set(self):
        topology = build_demo_topology()
        reduced, report = LieMerger(topology).optimize(RequirementSet())
        assert len(reduced) == 0
        assert report.routers_examined == 0


class TestToleranceShrinking:
    def test_tolerance_zero_keeps_exact_weights(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 5, "R1": 11}}
        )
        reduced, _ = LieMerger(topology, tolerance=0.0).optimize(RequirementSet([requirement]))
        assert list(reduced)[0].weights_at("A") == {"B": 5, "R1": 11}

    def test_tolerance_allows_coarser_split(self):
        topology = build_demo_topology()
        requirement = DestinationRequirement(
            prefix=BLUE_PREFIX, next_hops={"A": {"B": 5, "R1": 11}}
        )
        reduced, _ = LieMerger(topology, tolerance=0.15).optimize(RequirementSet([requirement]))
        weights = list(reduced)[0].weights_at("A")
        assert sum(weights.values()) < 16
        # 5/16 ~ 0.31, so a 1:2 split (0.33) is within the tolerance.
        assert weights == {"B": 1, "R1": 2}

    def test_invalid_parameters_rejected(self):
        topology = build_demo_topology()
        with pytest.raises(Exception):
            LieMerger(topology, tolerance=-0.1)
        with pytest.raises(ControllerError):
            LieMerger(topology, max_entries=0)
