"""Tests for the load balancer's lie lifecycle: stale-lie cleanup and failures."""

import pytest

from repro.core.controller import FibbingController
from repro.core.loadbalancer import OnDemandLoadBalancer
from repro.monitoring.alarms import AlarmEvent
from repro.monitoring.collector import LinkLoadView
from repro.monitoring.notifications import ClientNotification, ClientRegistry
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.util.units import mbps


def registry_with_clients(count_b: int, count_a: int = 0) -> ClientRegistry:
    registry = ClientRegistry()
    for ingress, count in (("B", count_b), ("A", count_a)):
        for _ in range(count):
            registry.observe(
                ClientNotification(
                    time=0.0, server="S", ingress=ingress, prefix=BLUE_PREFIX, bitrate=mbps(1)
                )
            )
    return registry


def alarm(time=10.0) -> AlarmEvent:
    return AlarmEvent(
        time=time,
        hot_links=(LinkLoadView(link=("B", "R2"), rate=mbps(31), capacity=mbps(32)),),
    )


class TestStaleLieCleanup:
    def test_lies_withdrawn_when_demand_disappears(self):
        controller = FibbingController(build_demo_topology())
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 31))
        balancer.handle_alarm(alarm(time=10.0))
        assert controller.active_lie_count() == 3

        # Every client leaves; the next evaluation must retire all lies.
        balancer.clients = ClientRegistry()
        action = balancer.handle_alarm(alarm(time=20.0))
        assert action is not None
        assert action.lies_withdrawn == 3
        assert controller.active_lie_count() == 0

    def test_no_action_when_nothing_installed_and_no_demand(self):
        controller = FibbingController(build_demo_topology())
        balancer = OnDemandLoadBalancer(controller, ClientRegistry())
        assert balancer.handle_alarm(alarm()) is None

    def test_shrinking_demand_shrinks_the_lie_set(self):
        controller = FibbingController(build_demo_topology())
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 31))
        balancer.handle_alarm(alarm(time=10.0))
        assert controller.active_lie_count() == 3

        # Only the clients behind B remain: A's uneven split is no longer
        # needed and its two lies are withdrawn, B's single lie stays.
        balancer.clients = registry_with_clients(31, 0)
        action = balancer.handle_alarm(alarm(time=20.0))
        assert controller.active_lie_count() == 1
        assert controller.active_lies()[0].anchor == "B"
        assert action.lies_withdrawn == 2

    def test_unmanaged_prefixes_never_touched(self):
        from repro.core.requirements import DestinationRequirement
        from repro.util.prefixes import Prefix

        topology = build_demo_topology()
        other = Prefix.parse("10.1.0.0/24")  # S1's prefix, announced by B
        controller = FibbingController(topology)
        # Manually installed lies for a prefix outside the balancer's scope.
        controller.enforce_requirement(
            DestinationRequirement(prefix=other, next_hops={"R2": {"B": 1, "R3": 1}})
        )
        installed_before = controller.active_lie_count(other)
        balancer = OnDemandLoadBalancer(
            controller, ClientRegistry(), managed_prefixes=[BLUE_PREFIX]
        )
        balancer.handle_alarm(alarm())
        assert controller.active_lie_count(other) == installed_before


class TestTopologyChangeHandling:
    def test_failure_triggers_requirement_refresh(self):
        """After R1-R4 fails, the 1/3-2/3 split at A is useless (R1 is a dead
        end toward C); handle_topology_change recomputes and retires it."""
        topology = build_demo_topology()
        controller = FibbingController(topology)
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31, 31))
        balancer.handle_alarm(alarm(time=10.0))
        assert controller.active_lie_count() == 3

        topology.remove_link("R1", "R4")
        action = balancer.handle_topology_change(time=12.0)
        assert action is not None
        fibs = controller.static_fibs()
        # No forwarding loops: every router's blue-prefix traffic reaches C.
        from repro.dataplane.demand import TrafficMatrix
        from repro.dataplane.forwarding import route_fractional

        outcome = route_fractional(fibs, balancer.current_demands())
        assert outcome.undeliverable == 0.0
        # A no longer sends anything toward R1 for the blue prefix.
        assert "R1" not in fibs["A"].split_ratios(BLUE_PREFIX)

    def test_topology_change_with_no_demand_only_cleans_up(self):
        topology = build_demo_topology()
        controller = FibbingController(topology)
        balancer = OnDemandLoadBalancer(controller, registry_with_clients(31))
        balancer.handle_alarm(alarm(time=5.0))
        assert controller.active_lie_count() == 1
        balancer.clients = ClientRegistry()
        balancer.handle_topology_change(time=6.0)
        assert controller.active_lie_count() == 0
