"""Tests for max-min fair allocation (progressive filling)."""

import pytest

from repro.dataplane.fairness import max_min_fair_allocation
from repro.util.errors import ValidationError

LINK = ("X", "Y")
LINK2 = ("Y", "Z")


class TestBasicSharing:
    def test_single_flow_gets_its_demand_when_capacity_allows(self):
        rates = max_min_fair_allocation({0: [LINK]}, {0: 10.0}, {LINK: 100.0})
        assert rates[0] == pytest.approx(10.0)

    def test_single_flow_capped_by_capacity(self):
        rates = max_min_fair_allocation({0: [LINK]}, {0: 200.0}, {LINK: 100.0})
        assert rates[0] == pytest.approx(100.0)

    def test_two_flows_share_bottleneck_evenly(self):
        rates = max_min_fair_allocation(
            {0: [LINK], 1: [LINK]}, {0: 100.0, 1: 100.0}, {LINK: 100.0}
        )
        assert rates[0] == pytest.approx(50.0)
        assert rates[1] == pytest.approx(50.0)

    def test_small_demand_frees_capacity_for_others(self):
        rates = max_min_fair_allocation(
            {0: [LINK], 1: [LINK]}, {0: 10.0, 1: 1000.0}, {LINK: 100.0}
        )
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(90.0)

    def test_flow_with_empty_path_gets_demand(self):
        rates = max_min_fair_allocation({0: []}, {0: 42.0}, {})
        assert rates[0] == 42.0

    def test_zero_demand_flow_gets_zero(self):
        rates = max_min_fair_allocation({0: [LINK]}, {0: 0.0}, {LINK: 10.0})
        assert rates[0] == 0.0


class TestMultiHop:
    def test_bottleneck_is_the_tightest_link(self):
        rates = max_min_fair_allocation(
            {0: [LINK, LINK2]}, {0: 100.0}, {LINK: 80.0, LINK2: 30.0}
        )
        assert rates[0] == pytest.approx(30.0)

    def test_classic_three_flow_example(self):
        """Two links; flow A uses both, flows B and C use one each.

        The textbook max-min solution gives the long flow the smaller fair
        share of its two bottlenecks.
        """
        flows = {0: [LINK, LINK2], 1: [LINK], 2: [LINK2]}
        demands = {0: 100.0, 1: 100.0, 2: 100.0}
        capacities = {LINK: 100.0, LINK2: 60.0}
        rates = max_min_fair_allocation(flows, demands, capacities)
        assert rates[0] == pytest.approx(30.0)
        assert rates[2] == pytest.approx(30.0)
        assert rates[1] == pytest.approx(70.0)

    def test_no_link_oversubscribed(self):
        flows = {i: [LINK, LINK2] for i in range(7)}
        demands = {i: 50.0 for i in range(7)}
        capacities = {LINK: 100.0, LINK2: 140.0}
        rates = max_min_fair_allocation(flows, demands, capacities)
        assert sum(rates.values()) <= 100.0 + 1e-6
        assert all(rate >= 0 for rate in rates.values())

    def test_total_equals_capacity_when_saturated(self):
        flows = {i: [LINK] for i in range(10)}
        demands = {i: 100.0 for i in range(10)}
        rates = max_min_fair_allocation(flows, demands, {LINK: 64.0})
        assert sum(rates.values()) == pytest.approx(64.0)
        assert all(rate == pytest.approx(6.4) for rate in rates.values())


class TestValidation:
    def test_missing_demand_rejected(self):
        with pytest.raises(ValidationError):
            max_min_fair_allocation({0: [LINK]}, {}, {LINK: 10.0})

    def test_unknown_link_rejected(self):
        with pytest.raises(ValidationError):
            max_min_fair_allocation({0: [LINK]}, {0: 1.0}, {})

    def test_negative_demand_rejected(self):
        with pytest.raises(ValidationError):
            max_min_fair_allocation({0: [LINK]}, {0: -1.0}, {LINK: 10.0})

    def test_empty_input_gives_empty_output(self):
        assert max_min_fair_allocation({}, {}, {}) == {}
