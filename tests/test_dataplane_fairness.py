"""Tests for max-min fair allocation (progressive filling)."""

import pytest

from repro.dataplane.fairness import max_min_fair_allocation
from repro.util.errors import ValidationError

LINK = ("X", "Y")
LINK2 = ("Y", "Z")


class TestBasicSharing:
    def test_single_flow_gets_its_demand_when_capacity_allows(self):
        rates = max_min_fair_allocation({0: [LINK]}, {0: 10.0}, {LINK: 100.0})
        assert rates[0] == pytest.approx(10.0)

    def test_single_flow_capped_by_capacity(self):
        rates = max_min_fair_allocation({0: [LINK]}, {0: 200.0}, {LINK: 100.0})
        assert rates[0] == pytest.approx(100.0)

    def test_two_flows_share_bottleneck_evenly(self):
        rates = max_min_fair_allocation(
            {0: [LINK], 1: [LINK]}, {0: 100.0, 1: 100.0}, {LINK: 100.0}
        )
        assert rates[0] == pytest.approx(50.0)
        assert rates[1] == pytest.approx(50.0)

    def test_small_demand_frees_capacity_for_others(self):
        rates = max_min_fair_allocation(
            {0: [LINK], 1: [LINK]}, {0: 10.0, 1: 1000.0}, {LINK: 100.0}
        )
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(90.0)

    def test_flow_with_empty_path_gets_demand(self):
        rates = max_min_fair_allocation({0: []}, {0: 42.0}, {})
        assert rates[0] == 42.0

    def test_zero_demand_flow_gets_zero(self):
        rates = max_min_fair_allocation({0: [LINK]}, {0: 0.0}, {LINK: 10.0})
        assert rates[0] == 0.0


class TestMultiHop:
    def test_bottleneck_is_the_tightest_link(self):
        rates = max_min_fair_allocation(
            {0: [LINK, LINK2]}, {0: 100.0}, {LINK: 80.0, LINK2: 30.0}
        )
        assert rates[0] == pytest.approx(30.0)

    def test_classic_three_flow_example(self):
        """Two links; flow A uses both, flows B and C use one each.

        The textbook max-min solution gives the long flow the smaller fair
        share of its two bottlenecks.
        """
        flows = {0: [LINK, LINK2], 1: [LINK], 2: [LINK2]}
        demands = {0: 100.0, 1: 100.0, 2: 100.0}
        capacities = {LINK: 100.0, LINK2: 60.0}
        rates = max_min_fair_allocation(flows, demands, capacities)
        assert rates[0] == pytest.approx(30.0)
        assert rates[2] == pytest.approx(30.0)
        assert rates[1] == pytest.approx(70.0)

    def test_no_link_oversubscribed(self):
        flows = {i: [LINK, LINK2] for i in range(7)}
        demands = {i: 50.0 for i in range(7)}
        capacities = {LINK: 100.0, LINK2: 140.0}
        rates = max_min_fair_allocation(flows, demands, capacities)
        assert sum(rates.values()) <= 100.0 + 1e-6
        assert all(rate >= 0 for rate in rates.values())

    def test_total_equals_capacity_when_saturated(self):
        flows = {i: [LINK] for i in range(10)}
        demands = {i: 100.0 for i in range(10)}
        rates = max_min_fair_allocation(flows, demands, {LINK: 64.0})
        assert sum(rates.values()) == pytest.approx(64.0)
        assert all(rate == pytest.approx(6.4) for rate in rates.values())


class TestValidation:
    def test_missing_demand_rejected(self):
        with pytest.raises(ValidationError):
            max_min_fair_allocation({0: [LINK]}, {}, {LINK: 10.0})

    def test_unknown_link_rejected(self):
        with pytest.raises(ValidationError):
            max_min_fair_allocation({0: [LINK]}, {0: 1.0}, {})

    def test_negative_demand_rejected(self):
        with pytest.raises(ValidationError):
            max_min_fair_allocation({0: [LINK]}, {0: -1.0}, {LINK: 10.0})

    def test_empty_input_gives_empty_output(self):
        assert max_min_fair_allocation({}, {}, {}) == {}


class TestCountMultiplicity:
    """``counts=``: one count-n entity == n identical count-1 entities."""

    def test_count_n_equals_n_singletons_bitwise(self):
        demand = 13.370001
        capacity = 100.0
        n = 7
        singles = max_min_fair_allocation(
            {i: [LINK] for i in range(n)},
            {i: demand for i in range(n)},
            {LINK: capacity},
        )
        bundled = max_min_fair_allocation(
            {0: [LINK]}, {0: demand}, {LINK: capacity}, counts={0: n}
        )
        # Bitwise, not approx: the kernel must drain the link once per
        # round with the exact integer multiplicity.
        assert all(rate == bundled[0] for rate in singles.values())

    def test_mixed_counts_classic_example(self):
        """The three-flow textbook case with the long flow as a cohort."""
        flows = {0: [LINK, LINK2], 1: [LINK], 2: [LINK2]}
        demands = {0: 100.0, 1: 100.0, 2: 100.0}
        capacities = {LINK: 100.0, LINK2: 60.0}
        expanded = dict(flows)
        expanded[3] = flows[0]
        rates = max_min_fair_allocation(
            flows, demands, capacities, counts={0: 2}
        )
        reference = max_min_fair_allocation(
            expanded, {**demands, 3: 100.0}, capacities
        )
        assert rates[0] == reference[0] == reference[3]
        assert rates[1] == reference[1]
        assert rates[2] == reference[2]

    def test_invalid_count_rejected(self):
        with pytest.raises(ValidationError):
            max_min_fair_allocation(
                {0: [LINK]}, {0: 1.0}, {LINK: 10.0}, counts={0: 0}
            )


class TestGbitScaleEpsilon:
    """Regression for the absolute 1e-6 bit/s epsilon (now capacity-relative).

    At 100+ Gbit/s capacities, one ulp is ~1.5e-5 bit/s: the old absolute
    threshold was *below* the rounding noise of the capacity drain, so a
    saturated link could keep a phantom sliver of headroom (or a satisfied
    demand a phantom deficit) and the filling loop would spin on it.  The
    relative ``rate_tolerance`` keeps the same semantics at every magnitude.
    """

    def test_saturated_terabit_link_splits_exactly(self):
        n = 10
        capacity = 400e9  # one ulp here is ~6e-5 > the old 1e-6 epsilon
        rates = max_min_fair_allocation(
            {i: [LINK] for i in range(n)},
            {i: capacity for i in range(n)},
            {LINK: capacity},
        )
        assert sum(rates.values()) == pytest.approx(capacity, rel=1e-12)
        for rate in rates.values():
            assert rate == pytest.approx(capacity / n, rel=1e-12)

    def test_demand_met_exactly_at_gbit_scale(self):
        # Non-round Gbit/s demands with spare capacity: every entity gets
        # its demand bit for bit, no epsilon-sized shortfall.
        demands = {i: (1.0 + 0.0137 * i) * 1e9 for i in range(5)}
        rates = max_min_fair_allocation(
            {i: [LINK] for i in range(5)}, demands, {LINK: 100e9}
        )
        assert rates == demands

    def test_million_session_cohort_on_terabit_link(self):
        """The flash-crowd shape: 10^6 sessions behind one entity."""
        sessions = 1_000_000
        rates = max_min_fair_allocation(
            {0: [LINK], 1: [LINK]},
            {0: 5e6, 1: 5e6},
            {LINK: 1e12},
            counts={0: sessions, 1: 1},
        )
        # 5 Tbit/s of aggregate demand on 1 Tbit/s: the fair share is
        # capacity / (sessions + 1) per session, for both entities alike.
        assert rates[0] == rates[1]
        assert rates[0] == pytest.approx(1e12 / (sessions + 1), rel=1e-9)

    def test_rate_tolerance_is_relative_above_one(self):
        from repro.dataplane.fairness import RATE_EPSILON, rate_tolerance

        assert rate_tolerance(1e12) == RATE_EPSILON * 1e12
        assert rate_tolerance(1.0) == RATE_EPSILON
        assert rate_tolerance(0.0) == RATE_EPSILON


class TestKernelEquivalence:
    """The numpy water-filling kernel is bit-identical to the python one."""

    def _instance(self):
        flows = {
            0: [LINK, LINK2],
            1: [LINK],
            2: [LINK2],
            3: [LINK, LINK2],
            4: [],
        }
        demands = {0: 97.3, 1: 41.0001, 2: 300.0, 3: 12.5, 4: 7.0}
        capacities = {LINK: 123.456, LINK2: 61.5}
        counts = {0: 3, 2: 1000, 3: 2}
        return flows, demands, capacities, counts

    def test_numpy_matches_python_bitwise(self):
        pytest.importorskip("numpy")
        flows, demands, capacities, counts = self._instance()
        python = max_min_fair_allocation(
            flows, demands, capacities, counts=counts, kernel="python"
        )
        numpy = max_min_fair_allocation(
            flows, demands, capacities, counts=counts, kernel="numpy"
        )
        assert python == numpy

    def test_unknown_kernel_rejected(self):
        with pytest.raises(Exception):
            max_min_fair_allocation({0: [LINK]}, {0: 1.0}, {LINK: 10.0}, kernel="fortran")
