"""Tests for the event-driven data-plane engine."""

import pytest

from repro.dataplane.engine import DataPlaneEngine
from repro.igp.network import compute_static_fibs
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.util.errors import SimulationError
from repro.util.timeline import Timeline
from repro.util.units import mbps


@pytest.fixture
def engine_setup():
    topology = build_demo_topology()
    fibs = compute_static_fibs(topology)
    timeline = Timeline()
    engine = DataPlaneEngine(topology, lambda: fibs, timeline, sample_interval=1.0)
    engine.start()
    return topology, fibs, timeline, engine


class TestFlowLifecycle:
    def test_add_flow_allocates_rate(self, engine_setup):
        _, _, timeline, engine = engine_setup
        flow = engine.add_flow("B", BLUE_PREFIX, mbps(1))
        assert engine.flow_rate(flow.flow_id) == pytest.approx(mbps(1))
        assert engine.link_rate("B", "R2") == pytest.approx(mbps(1))

    def test_add_flow_at_unknown_router_rejected(self, engine_setup):
        _, _, _, engine = engine_setup
        with pytest.raises(SimulationError):
            engine.add_flow("ghost", BLUE_PREFIX, mbps(1))

    def test_remove_flow_releases_capacity(self, engine_setup):
        _, _, _, engine = engine_setup
        flow = engine.add_flow("B", BLUE_PREFIX, mbps(1))
        engine.remove_flow(flow.flow_id)
        assert engine.link_rate("B", "R2") == 0.0
        assert engine.flow_rate(flow.flow_id) == 0.0

    def test_events_are_logged(self, engine_setup):
        _, _, _, engine = engine_setup
        flow = engine.add_flow("B", BLUE_PREFIX, mbps(1))
        engine.remove_flow(flow.flow_id)
        kinds = [event.kind for event in engine.events]
        assert kinds == ["flow-arrival", "flow-departure"]


class TestCountersAndSampling:
    def test_byte_counters_integrate_rates(self, engine_setup):
        _, _, timeline, engine = engine_setup
        engine.add_flow("B", BLUE_PREFIX, mbps(8))  # 1 MB/s
        timeline.run_until(10.0)
        counted = engine.link_transmitted_bytes("B", "R2")
        assert counted == pytest.approx(10e6, rel=0.01)

    def test_flow_counters_match_link_counters_single_flow(self, engine_setup):
        _, _, timeline, engine = engine_setup
        flow = engine.add_flow("B", BLUE_PREFIX, mbps(8))
        timeline.run_until(5.0)
        assert engine.flow_transmitted_bytes(flow.flow_id) == pytest.approx(
            engine.link_transmitted_bytes("B", "R2"), rel=0.01
        )

    def test_samples_report_average_rates(self, engine_setup):
        _, _, timeline, engine = engine_setup
        engine.add_flow("B", BLUE_PREFIX, mbps(4))
        timeline.run_until(5.0)
        assert len(engine.samples) == 5
        last = engine.samples[-1]
        assert last.rate_of("B", "R2") == pytest.approx(mbps(4), rel=0.01)
        assert last.rate_of("A", "R1") == 0.0

    def test_sample_listener_invoked(self, engine_setup):
        _, _, timeline, engine = engine_setup
        seen = []
        engine.on_sample(lambda sample: seen.append(sample.time))
        timeline.run_until(3.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_all_link_counters_snapshot(self, engine_setup):
        topology, _, timeline, engine = engine_setup
        engine.add_flow("B", BLUE_PREFIX, mbps(8))
        timeline.run_until(2.0)
        counters = engine.all_link_counters()
        assert counters[("B", "R2")] > 0
        assert len(counters) == topology.num_links


class TestCongestionAndFairness:
    def test_oversubscribed_link_caps_flows(self, engine_setup):
        _, _, timeline, engine = engine_setup
        # 40 x 1 Mbit/s flows through a 32 Mbit/s link.
        for _ in range(40):
            engine.add_flow("B", BLUE_PREFIX, mbps(1))
        total = engine.link_rate("B", "R2")
        assert total <= mbps(32) + 1.0
        assert engine.max_link_utilization() == pytest.approx(1.0, rel=0.01)

    def test_current_loads_view(self, engine_setup):
        topology, _, _, engine = engine_setup
        engine.add_flow("B", BLUE_PREFIX, mbps(2))
        loads = engine.current_loads()
        assert loads.load("B", "R2") == pytest.approx(mbps(2))
        assert loads.max_utilization(topology) > 0


class TestRoutingChanges:
    def test_notify_routing_change_moves_traffic(self):
        topology = build_demo_topology()
        timeline = Timeline()
        current = {"fibs": compute_static_fibs(topology)}
        engine = DataPlaneEngine(topology, lambda: current["fibs"], timeline, sample_interval=1.0)
        engine.start()
        for _ in range(20):
            engine.add_flow("B", BLUE_PREFIX, mbps(1))
        assert engine.link_rate("B", "R3") == 0.0

        current["fibs"] = compute_static_fibs(topology, demo_lies())
        engine.notify_routing_change()
        assert engine.link_rate("B", "R3") > 0.0
        assert engine.link_rate("B", "R2") + engine.link_rate("B", "R3") == pytest.approx(mbps(20))

    def test_counters_preserved_across_routing_change(self):
        topology = build_demo_topology()
        timeline = Timeline()
        current = {"fibs": compute_static_fibs(topology)}
        engine = DataPlaneEngine(topology, lambda: current["fibs"], timeline, sample_interval=1.0)
        engine.start()
        engine.add_flow("B", BLUE_PREFIX, mbps(8))
        timeline.run_until(3.0)
        before = engine.link_transmitted_bytes("B", "R2")
        current["fibs"] = compute_static_fibs(topology, demo_lies())
        engine.notify_routing_change()
        timeline.run_until(6.0)
        after = engine.link_transmitted_bytes("B", "R2")
        assert after >= before  # counters never go backwards
