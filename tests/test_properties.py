"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.splitting import approximate_ratios, split_error, weights_to_fractions
from repro.dataplane.fairness import max_min_fair_allocation
from repro.dataplane.demand import TrafficMatrix
from repro.dataplane.forwarding import route_flows_hashed, route_fractional
from repro.dataplane.flows import Flow
from repro.igp.graph import ComputationGraph
from repro.igp.network import compute_static_fibs
from repro.igp.spf import compute_spf
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.topologies.random import random_topology
from repro.util.prefixes import Prefix, format_ipv4, parse_ipv4
from repro.util.stats import percentile

# ----------------------------------------------------------------------- #
# Prefix arithmetic
# ----------------------------------------------------------------------- #

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
lengths = st.integers(min_value=0, max_value=32)


@given(addresses)
def test_ipv4_parse_format_round_trip(address):
    assert parse_ipv4(format_ipv4(address)) == address


@given(addresses, lengths)
def test_prefix_contains_its_own_network_and_broadcast(address, length):
    prefix = Prefix(address, length)
    assert prefix.contains_address(prefix.network)
    assert prefix.contains_address(prefix.broadcast)


@given(addresses, lengths)
def test_prefix_interning_means_equality_is_identity(address, length):
    assert Prefix(address, length) is Prefix(address, length)


@given(addresses, st.integers(min_value=1, max_value=32))
def test_supernet_contains_prefix(address, length):
    prefix = Prefix(address, length)
    assert prefix.supernet().contains(prefix)


@given(addresses, st.integers(min_value=0, max_value=31))
def test_subnets_partition_the_prefix(address, length):
    prefix = Prefix(address, length)
    subnets = list(prefix.subnets())
    assert len(subnets) == 2
    assert sum(subnet.num_addresses for subnet in subnets) == prefix.num_addresses
    assert all(prefix.contains(subnet) for subnet in subnets)


# ----------------------------------------------------------------------- #
# Splitting-ratio approximation
# ----------------------------------------------------------------------- #

fraction_maps = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d", "e"]),
    values=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=5,
)


@given(fraction_maps, st.integers(min_value=1, max_value=32))
def test_approximation_respects_table_size(fractions, max_entries):
    weights = approximate_ratios(fractions, max_entries=max_entries)
    assert 1 <= sum(weights.values()) <= max_entries
    assert all(weight >= 1 for weight in weights.values())
    assert set(weights) <= set(fractions)


@given(fraction_maps, st.integers(min_value=1, max_value=32))
def test_approximation_error_is_bounded(fractions, max_entries):
    weights = approximate_ratios(fractions, max_entries=max_entries)
    error = split_error(fractions, weights)
    assert 0.0 <= error <= 2.0
    # With a table at least as large as the number of next hops, every next
    # hop can get one entry, so the error stays below the trivial bound of
    # dropping everything but one hop.
    if max_entries >= len(fractions) and len(fractions) > 1:
        single = split_error(fractions, {max(fractions, key=fractions.get): 1})
        assert error <= single + 1e-9


@given(fraction_maps)
def test_large_table_recovers_fractions_closely(fractions):
    weights = approximate_ratios(fractions, max_entries=64)
    realised = weights_to_fractions(weights)
    total = sum(fractions.values())
    for key, value in fractions.items():
        assert abs(realised.get(key, 0.0) - value / total) < 0.05


# ----------------------------------------------------------------------- #
# Max-min fairness
# ----------------------------------------------------------------------- #

demand_lists = st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20)


@given(demand_lists, st.floats(min_value=1.0, max_value=500.0))
def test_single_bottleneck_allocation_invariants(demands, capacity):
    link = ("X", "Y")
    flow_links = {i: [link] for i in range(len(demands))}
    demand_map = {i: demands[i] for i in range(len(demands))}
    rates = max_min_fair_allocation(flow_links, demand_map, {link: capacity})
    total = sum(rates.values())
    # Capacity is never exceeded and no flow exceeds its demand.
    assert total <= capacity + 1e-6
    for i, demand in demand_map.items():
        assert rates[i] <= demand + 1e-9
    # Work conservation: either all demands are met or the link is full.
    if total < sum(demands) - 1e-6:
        assert abs(total - capacity) < 1e-6
    # Max-min property on a single link: an unsatisfied flow receives at
    # least as much as every other flow (nobody could be raised without
    # lowering somebody whose share is not larger).
    for i, rate in rates.items():
        if rate < demand_map[i] - 1e-9:
            assert all(rate >= other - 1e-6 for other in rates.values())


@given(st.integers(min_value=1, max_value=30), st.floats(min_value=1.0, max_value=64.0))
def test_equal_demands_get_equal_shares(count, capacity):
    link = ("X", "Y")
    flow_links = {i: [link] for i in range(count)}
    demands = {i: 10.0 for i in range(count)}
    rates = max_min_fair_allocation(flow_links, demands, {link: capacity})
    values = list(rates.values())
    assert max(values) - min(values) < 1e-6


# ----------------------------------------------------------------------- #
# SPF and forwarding invariants on random topologies
# ----------------------------------------------------------------------- #


@settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=4, max_value=12))
def test_spf_triangle_inequality_and_symmetry_free(seed, size):
    """Shortest-path distances obey the triangle inequality over one hop."""
    topology = random_topology(num_routers=size, edge_probability=0.3, seed=seed, with_prefixes=False)
    graph = ComputationGraph.from_topology(topology)
    source = topology.routers[0]
    spf = compute_spf(graph, source)
    for link in topology.links:
        if spf.reachable(link.source) and spf.reachable(link.target):
            assert spf.distance_to(link.target) <= spf.distance_to(link.source) + link.weight + 1e-9


@settings(deadline=None, max_examples=15, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=500), st.integers(min_value=4, max_value=10))
def test_fractional_routing_conserves_traffic(seed, size):
    """Whatever enters the network is either delivered or reported lost."""
    topology = random_topology(num_routers=size, edge_probability=0.4, seed=seed)
    fibs = compute_static_fibs(topology)
    prefix = topology.prefixes[0]
    destination = topology.prefix_attachments(prefix)[0].router
    sources = [router for router in topology.routers if router != destination][:3]
    demands = TrafficMatrix.from_dict({(source, prefix): 10.0 for source in sources})
    outcome = route_fractional(fibs, demands)
    assert outcome.delivered + outcome.undeliverable == pytest.approx(demands.total())
    assert outcome.undeliverable == pytest.approx(0.0)


@settings(deadline=None, max_examples=15, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=500))
def test_hashed_routing_follows_fib_next_hops(salt):
    """Every hop of every hashed flow path must be a next hop the FIB allows."""
    fibs = compute_static_fibs(build_demo_topology(), demo_lies())
    flows = [Flow(flow_id=i, ingress="A", prefix=BLUE_PREFIX, demand=1.0) for i in range(30)]
    outcome = route_flows_hashed(fibs, flows, salt=salt)
    for path in outcome.flow_paths.values():
        assert path.delivered
        for source, target in path.links:
            assert target in fibs[source].lookup(BLUE_PREFIX).split_ratios()


# ----------------------------------------------------------------------- #
# Statistics helpers
# ----------------------------------------------------------------------- #


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
       st.floats(min_value=0.0, max_value=1.0))
def test_percentile_is_bounded_by_min_and_max(values, fraction):
    result = percentile(values, fraction)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9

