"""Tests for the benchmark artifact helpers (``util/artifacts.py``)."""

import json

import pytest

from repro.util.artifacts import (
    BENCH_SCHEMA,
    BenchmarkReport,
    atomic_write_text,
    bench_json_path,
    git_describe,
    load_bench_json,
    write_bench_json,
)
from repro.util.errors import ValidationError


class TestAtomicWrite:
    def test_rewrite_fully_replaces_previous_content(self, tmp_path):
        # Regression: the old benchmark report appended via write_text on a
        # shared path; a regenerated run must not accumulate stale rows.
        path = tmp_path / "report.txt"
        atomic_write_text(path, "old row 1\nold row 2\n")
        atomic_write_text(path, "new row\n")
        assert path.read_text() == "new row\n"

    def test_no_tmp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "x\n")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "a.txt"
        atomic_write_text(path, "x\n")
        assert path.read_text() == "x\n"


class TestBenchJson:
    def test_path_defaults_to_repo_root(self):
        from repro.util.artifacts import REPO_ROOT

        assert bench_json_path("demo") == REPO_ROOT / "BENCH_demo.json"

    def test_rejects_path_separators_in_names(self):
        with pytest.raises(ValidationError):
            bench_json_path("../escape")
        with pytest.raises(ValidationError):
            bench_json_path("")

    def test_write_then_load_round_trip(self, tmp_path):
        path = write_bench_json("demo", "benchmark", {"lines": ["a"]}, directory=tmp_path)
        payload = load_bench_json(path)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["kind"] == "benchmark"
        assert payload["name"] == "demo"
        assert payload["lines"] == ["a"]
        assert payload["git"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValidationError):
            load_bench_json(path)

    def test_load_rejects_missing_envelope_fields(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA, "kind": "benchmark"}))
        with pytest.raises(ValidationError, match="name"):
            load_bench_json(path)

    def test_git_describe_returns_something(self):
        assert git_describe()  # "unknown" at worst, never empty

    def test_git_describe_ignores_regenerated_artifacts(self, tmp_path):
        # Regeneration paradox: `make bench` rewrites the tracked BENCH_*.json
        # one by one, so the first rewrite would mark every later artifact of
        # the same clean-source run as dirty.  Only source dirt counts.
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
                cwd=tmp_path,
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        (tmp_path / "benchmarks" / "results").mkdir(parents=True)
        (tmp_path / "src.py").write_text("x = 1\n")
        (tmp_path / "BENCH_demo.json").write_text("{}\n")
        (tmp_path / "benchmarks" / "results" / "demo.txt").write_text("old\n")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")

        clean = git_describe(tmp_path)
        assert not clean.endswith("-dirty") and clean != "unknown"

        # Rewriting tracked artifacts (plus a brand-new one) stays clean ...
        (tmp_path / "BENCH_demo.json").write_text('{"new": 1}\n')
        (tmp_path / "BENCH_other.json").write_text("{}\n")
        (tmp_path / "benchmarks" / "results" / "demo.txt").write_text("new\n")
        assert git_describe(tmp_path) == clean

        # ... but touching source flips the stamp to dirty.
        (tmp_path / "src.py").write_text("x = 2\n")
        assert git_describe(tmp_path) == f"{clean}-dirty"

    def test_metrics_land_in_payload(self, tmp_path):
        path = write_bench_json(
            "demo",
            "benchmark",
            {"lines": []},
            directory=tmp_path,
            metrics={"speedup": 4.2, "events": 30},
        )
        payload = load_bench_json(path)
        assert payload["metrics"] == {"speedup": 4.2, "events": 30.0}
        assert isinstance(payload["metrics"]["events"], float)

    def test_metrics_reject_bad_names_and_values(self, tmp_path):
        with pytest.raises(ValidationError, match="non-empty string"):
            write_bench_json("demo", "benchmark", {}, tmp_path, metrics={"": 1.0})
        with pytest.raises(ValidationError, match="not a number"):
            write_bench_json("demo", "benchmark", {}, tmp_path, metrics={"a": "1"})
        with pytest.raises(ValidationError, match="not a number"):
            write_bench_json("demo", "benchmark", {}, tmp_path, metrics={"a": True})
        with pytest.raises(ValidationError, match="not finite"):
            write_bench_json(
                "demo", "benchmark", {}, tmp_path, metrics={"a": float("nan")}
            )

    def test_load_rejects_malformed_metrics(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "kind": "benchmark",
                    "name": "x",
                    "git": "abc",
                    "metrics": {"a": "not-a-number"},
                }
            )
        )
        with pytest.raises(ValidationError):
            load_bench_json(path)

    def test_dirty_tree_stamps_warning(self, tmp_path, monkeypatch, caplog):
        import logging

        import repro.util.artifacts as artifacts

        monkeypatch.setattr(artifacts, "git_describe", lambda root=None: "abc1234-dirty")
        with caplog.at_level(logging.WARNING, logger="repro.util.artifacts"):
            path = artifacts.write_bench_json("demo", "benchmark", {}, tmp_path)
        payload = load_bench_json(path)
        assert payload["git"] == "abc1234-dirty"
        assert any("dirty working tree" in warning for warning in payload["warnings"])
        assert any("dirty working tree" in record.message for record in caplog.records)

    def test_clean_tree_has_no_warnings(self, tmp_path, monkeypatch):
        import repro.util.artifacts as artifacts

        monkeypatch.setattr(artifacts, "git_describe", lambda root=None: "abc1234")
        path = artifacts.write_bench_json("demo", "benchmark", {}, tmp_path)
        assert "warnings" not in load_bench_json(path)


class TestBenchmarkReport:
    def test_save_writes_txt_and_json(self, tmp_path, capsys):
        report = BenchmarkReport(
            "demo", results_dir=tmp_path / "results", bench_dir=tmp_path
        )
        report.add_line("hello")
        report.add_table(["a", "b"], [(1, 2), (3, 4)])
        report.add_metric("speedup", 3)
        txt_path = report.save()
        assert txt_path == tmp_path / "results" / "demo.txt"
        text = txt_path.read_text()
        assert "hello" in text and "1  2" in text
        payload = load_bench_json(tmp_path / "BENCH_demo.json")
        assert payload["kind"] == "benchmark"
        assert payload["lines"] == report.lines
        assert payload["tables"] == [
            {"headers": ["a", "b"], "rows": [["1", "2"], ["3", "4"]]}
        ]
        assert payload["metrics"] == {"speedup": 3.0}
        assert "hello" in capsys.readouterr().out  # lines echo to stdout

    def test_resave_replaces_instead_of_appending(self, tmp_path):
        kwargs = {"results_dir": tmp_path / "results", "bench_dir": tmp_path}
        first = BenchmarkReport("demo", **kwargs)
        first.add_line("stale")
        first.save()
        second = BenchmarkReport("demo", **kwargs)
        second.add_line("fresh")
        path = second.save()
        assert path.read_text() == "fresh\n"
        assert load_bench_json(tmp_path / "BENCH_demo.json")["lines"] == ["fresh"]
