"""Differential property tests for the incremental SPF engine.

Every test here enforces the same invariant from a different angle: after an
arbitrary sequence of weight changes, link failures/additions and fake-LSA
injections/withdrawals, the incrementally repaired SPF result (distances,
ECMP next-hop sets and the predecessor DAG) must be indistinguishable from a
from-scratch :func:`~repro.igp.spf.compute_spf` on the same graph.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.igp.graph import ComputationGraph, EdgeDelta
from repro.igp.lsa import FakeNodeLsa
from repro.igp.spf import compute_spf, costs_equal, update_spf
from repro.igp.spf_cache import SpfCache
from repro.topologies.random import random_topology
from repro.util.prefixes import Prefix

TEST_PREFIX = Prefix.parse("10.99.0.0/24")


def assert_same_spf(incremental, full, context=""):
    """The strict differential oracle: identical reachability, ECMP and DAG."""
    assert set(incremental.distance) == set(full.distance), context
    for node, dist in full.distance.items():
        assert math.isclose(
            incremental.distance[node], dist, rel_tol=1e-9, abs_tol=1e-9
        ), f"{context}: distance to {node}: {incremental.distance[node]} != {dist}"
    assert incremental.next_hops == full.next_hops, context
    assert incremental.predecessors == full.predecessors, context


class MutationDriver:
    """Applies random topology/lie mutations and cross-checks every source."""

    def __init__(self, seed, num_routers=10, edge_probability=0.3):
        self.rng = random.Random(seed)
        self.topology = random_topology(
            num_routers, edge_probability=edge_probability, seed=seed
        )
        self.lies = {}
        self.cache = SpfCache()
        self.lie_counter = 0
        self.steps_applied = 0

    def apply(self, action):
        rng = self.rng
        topology = self.topology
        if action == "weight":
            links = topology.undirected_links
            source, target = links[rng.randrange(len(links))]
            weight = rng.choice([1, 2, 3, 5, round(rng.random() * 4 + 0.5, 3)])
            topology.set_weight(source, target, weight)
        elif action == "fail":
            links = topology.undirected_links
            if len(links) <= 2:
                return False
            source, target = links[rng.randrange(len(links))]
            topology.remove_link(source, target)
        elif action == "add_link":
            source, target = rng.sample(topology.routers, 2)
            if topology.has_link(source, target):
                return False
            topology.add_link(source, target, weight=rng.randint(1, 5))
        elif action == "inject":
            anchor = rng.choice(topology.routers)
            neighbors = topology.neighbors(anchor)
            if not neighbors:
                return False
            self.lie_counter += 1
            name = f"fake-{self.lie_counter}"
            self.lies[name] = FakeNodeLsa(
                origin="controller",
                fake_node=name,
                anchor=anchor,
                link_cost=round(rng.random() * 2 + 0.1, 4),
                prefix=TEST_PREFIX,
                prefix_cost=round(rng.random(), 4),
                forwarding_address=rng.choice(neighbors),
            )
        elif action == "withdraw":
            if not self.lies:
                return False
            self.lies.pop(rng.choice(sorted(self.lies)))
        else:  # pragma: no cover - defensive
            raise ValueError(action)
        self.steps_applied += 1
        return True

    def check_all_sources(self, context=""):
        graph = ComputationGraph.from_topology(self.topology, self.lies.values())
        graph = self.cache.observe(graph)
        for source in self.topology.routers:
            incremental = self.cache.spf(graph, source)
            full = compute_spf(graph, source)
            assert_same_spf(incremental, full, f"{context} source={source}")


ACTIONS = ("weight", "fail", "add_link", "inject", "withdraw")


class TestDifferentialRandomized:
    """Seeded randomized sequences; jointly >= 200 mutation steps."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mutation_sequence(self, seed):
        driver = MutationDriver(seed)
        driver.check_all_sources(context=f"seed={seed} initial")
        steps = 0
        while steps < 25:
            action = driver.rng.choice(ACTIONS)
            if not driver.apply(action):
                continue
            steps += 1
            driver.check_all_sources(context=f"seed={seed} step={steps} action={action}")
        assert driver.steps_applied >= 25

    def test_cache_counters_reconcile_with_lookups(self):
        driver = MutationDriver(seed=42)
        steps = 0
        while steps < 10:
            if driver.apply(driver.rng.choice(ACTIONS)):
                steps += 1
                driver.check_all_sources()
        counters = driver.cache.counters
        assert counters.spf_lookups == (
            counters.hits
            + counters.incremental_updates
            + counters.full_recomputes
            + counters.fallbacks
        )
        # 11 rounds x 10 sources were served through the cache.
        assert counters.spf_lookups >= 10 * len(driver.topology.routers)
        assert counters.incremental_updates > 0


class TestDifferentialHypothesis:
    """Hypothesis-driven action sequences on a smaller topology."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        actions=st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=8),
    )
    def test_any_action_sequence_matches_full_spf(self, seed, actions):
        driver = MutationDriver(seed, num_routers=7, edge_probability=0.35)
        for index, action in enumerate(actions):
            if driver.apply(action):
                driver.check_all_sources(
                    context=f"seed={seed} step={index} action={action}"
                )


class TestUpdateSpfDirect:
    """Unit tests of update_spf on a live, mutated graph (no rebuild)."""

    def build_graph(self):
        graph = ComputationGraph()
        for source, target, cost in [
            ("S", "A", 1),
            ("A", "S", 1),
            ("S", "B", 1),
            ("B", "S", 1),
            ("A", "T", 1),
            ("T", "A", 1),
            ("B", "T", 1),
            ("T", "B", 1),
            ("T", "X", 2),
            ("X", "T", 2),
        ]:
            graph.add_edge(source, target, cost)
        return graph

    def test_weight_increase_on_tree_edge(self):
        graph = self.build_graph()
        prev = compute_spf(graph, "S")
        version = graph.version
        graph.add_edge("A", "T", 5)
        graph.add_edge("T", "A", 5)
        deltas = graph.deltas_since(version)
        repaired = update_spf(prev, graph, deltas)
        assert_same_spf(repaired, compute_spf(graph, "S"))
        # The ECMP set toward T collapsed onto B.
        assert repaired.next_hops["T"] == frozenset({"B"})

    def test_edge_removal_disconnects_subtree(self):
        graph = self.build_graph()
        graph.add_edge("X", "Y", 1)
        graph.add_edge("Y", "X", 1)
        prev = compute_spf(graph, "S")
        version = graph.version
        graph.remove_edge("T", "X")
        graph.remove_edge("X", "T")
        repaired = update_spf(prev, graph, graph.deltas_since(version))
        assert_same_spf(repaired, compute_spf(graph, "S"))
        assert not repaired.reachable("X")
        assert not repaired.reachable("Y")

    def test_decrease_creates_new_equal_cost_path(self):
        graph = self.build_graph()
        graph.add_edge("S", "T", 9)
        prev = compute_spf(graph, "S")
        version = graph.version
        graph.add_edge("S", "T", 2)  # ties with the two 2-hop paths
        repaired = update_spf(prev, graph, graph.deltas_since(version))
        assert_same_spf(repaired, compute_spf(graph, "S"))
        assert repaired.next_hops["T"] == frozenset({"A", "B", "T"})

    def test_fake_node_insert_and_remove(self):
        graph = self.build_graph()
        prev = compute_spf(graph, "S")
        version = graph.version
        graph.add_fake_node(
            name="fake-1",
            anchor="T",
            link_cost=0.5,
            prefix=TEST_PREFIX,
            prefix_cost=0.5,
            forwarding_address="X",
        )
        repaired = update_spf(prev, graph, graph.deltas_since(version))
        assert_same_spf(repaired, compute_spf(graph, "S"))
        assert repaired.reachable("fake-1")

        version = graph.version
        graph.remove_fake_node("fake-1")
        again = update_spf(repaired, graph, graph.deltas_since(version))
        assert_same_spf(again, compute_spf(graph, "S"))
        assert not again.reachable("fake-1")

    def test_empty_deltas_return_prev_object(self):
        graph = self.build_graph()
        prev = compute_spf(graph, "S")
        assert update_spf(prev, graph, ()) is prev

    def test_oversized_delta_falls_back_to_full(self):
        graph = self.build_graph()
        prev = compute_spf(graph, "S")
        version = graph.version
        # Rewrite every edge: the invalidated region exceeds the threshold.
        for source in list(graph.nodes):
            for target, cost in list(graph.successors(source).items()):
                graph.add_edge(source, target, cost + 10)
        repaired = update_spf(prev, graph, graph.deltas_since(version))
        assert_same_spf(repaired, compute_spf(graph, "S"))


class TestDeltaLog:
    """The dirty-edge delta log and version counter on ComputationGraph."""

    def test_mutations_bump_version(self):
        graph = ComputationGraph()
        version = graph.version
        graph.add_edge("A", "B", 1)
        assert graph.version > version
        version = graph.version
        graph.add_edge("A", "B", 1)  # idempotent: same cost
        assert graph.version == version
        graph.add_edge("A", "B", 2)
        assert graph.version > version

    def test_deltas_since_replays_changes(self):
        graph = ComputationGraph()
        graph.add_edge("A", "B", 1)
        version = graph.version
        graph.add_edge("A", "B", 3)
        graph.add_edge("B", "C", 2)
        graph.remove_edge("A", "B")
        deltas = graph.deltas_since(version)
        assert deltas == (
            EdgeDelta("A", "B", 1.0, 3.0),
            EdgeDelta("B", "C", None, 2.0),
            EdgeDelta("A", "B", 3.0, None),
        )
        assert graph.deltas_since(graph.version) == ()

    def test_deltas_since_unknown_version_is_none(self):
        graph = ComputationGraph()
        graph.add_edge("A", "B", 1)
        assert graph.deltas_since(graph.version + 5) is None

    def test_builders_start_with_clean_history(self):
        topology = random_topology(5, seed=0)
        graph = ComputationGraph.from_topology(topology)
        assert graph.version == 0
        assert graph.deltas_since(0) == ()

    def test_continue_from_identical_state_keeps_version(self):
        topology = random_topology(5, seed=0)
        first = ComputationGraph.from_topology(topology)
        first.add_edge("N0", "N1", 7)
        second = ComputationGraph.from_topology(topology)
        second.add_edge("N0", "N1", 7)
        second.continue_from(first)
        assert second.version == first.version
        assert second.deltas_since(first.version) == ()

    def test_continue_from_changed_state_appends_one_step(self):
        topology = random_topology(5, seed=0)
        first = ComputationGraph.from_topology(topology)
        topology.set_weight(*topology.undirected_links[0], 9)
        second = ComputationGraph.from_topology(topology)
        second.continue_from(first)
        assert second.version == first.version + 1
        deltas = second.deltas_since(first.version)
        assert deltas is not None and len(deltas) == 2  # both directions

    def test_log_truncation_forces_full_recompute(self):
        graph = ComputationGraph()
        graph.add_edge("A", "B", 1)
        stale_version = graph.version
        for step in range(2000):
            graph.add_edge("A", "B", 2 + (step % 7))
        assert graph.deltas_since(stale_version) is None


class TestEpsilonConsistency:
    """The ECMP tolerance is relative, so optimizer-emitted fractional and
    large-magnitude costs still tie exactly like small integer costs do."""

    def test_costs_equal_is_relative(self):
        assert costs_equal(0.1 + 0.2, 0.3)
        # 1e12-scale equal paths accumulate rounding far above the absolute
        # 1e-9 that the old comparison used.
        assert costs_equal(1e12 + 0.0001, 1e12)
        assert not costs_equal(1.0, 1.0 + 1e-6)

    def test_fractional_costs_still_form_ecmp(self):
        graph = ComputationGraph()
        # Two two-hop paths whose float sums differ only by rounding noise.
        graph.add_edge("S", "A", 0.1)
        graph.add_edge("A", "T", 0.2)
        graph.add_edge("S", "B", 0.3 - (0.1 + 0.2 - 0.3))
        graph.add_edge("B", "T", 1e-17)
        spf = compute_spf(graph, "S")
        assert spf.next_hops["T"] == frozenset({"A", "B"})

    def test_large_magnitude_costs_form_ecmp(self):
        graph = ComputationGraph()
        # Equal-cost paths at 3e12: the float spacing up there is ~0.00049,
        # so an absolute 1e-9 tolerance would (wrongly) break the tie.
        graph.add_edge("S", "A", 1e12)
        graph.add_edge("A", "T", 2e12)
        graph.add_edge("S", "B", 2e12)
        graph.add_edge("B", "T", 1e12 + 0.001)
        spf = compute_spf(graph, "S")
        assert spf.next_hops["T"] == frozenset({"A", "B"})

    def test_rib_keeps_equal_cost_announcers_at_large_magnitude(self):
        # The RIB tie-break must use the same relative tolerance as SPF:
        # two announcers of the same prefix at ~3e12 total cost (float
        # spacing ~5e-4) must both contribute to the route.
        from repro.igp.rib import compute_rib

        graph = ComputationGraph()
        graph.add_edge("S", "A", 1e12)
        graph.add_edge("A", "T", 2e12)
        graph.add_edge("S", "B", 2e12)
        graph.add_edge("B", "U", 1e12 + 0.001)
        graph.announce("T", TEST_PREFIX, 0.0)
        graph.announce("U", TEST_PREFIX, 0.0)
        rib = compute_rib(graph, "S")
        route = rib.route(TEST_PREFIX)
        assert {c.announcer for c in route.contributions} == {"T", "U"}

    def test_incremental_repair_with_fractional_costs(self):
        graph = ComputationGraph()
        graph.add_edge("S", "A", 0.1)
        graph.add_edge("A", "T", 0.2)
        graph.add_edge("S", "T", 0.9)
        prev = compute_spf(graph, "S")
        version = graph.version
        graph.add_edge("S", "T", 0.1 + 0.2)
        repaired = update_spf(prev, graph, graph.deltas_since(version))
        assert_same_spf(repaired, compute_spf(graph, "S"))
        assert repaired.next_hops["T"] == frozenset({"A", "T"})
