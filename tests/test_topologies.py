"""Tests for the topology builders (demo, zoo, random, isp)."""

import pytest

from repro.igp.graph import ComputationGraph
from repro.igp.network import compute_static_fibs
from repro.igp.spf import compute_spf
from repro.topologies import (
    abilene,
    build_demo_scenario,
    build_demo_topology,
    demo_lies,
    dumbbell,
    grid,
    random_topology,
    ring,
    synthetic_isp,
    waxman_topology,
)
from repro.topologies.demo import BLUE_PREFIX, SOURCE_PREFIXES
from repro.topologies.random import attach_destination_prefixes
from repro.util.errors import ValidationError


class TestDemoTopology:
    def test_paper_weights(self):
        topo = build_demo_topology()
        assert topo.link("A", "B").weight == 1
        assert topo.link("A", "R1").weight == 2
        assert topo.link("B", "R3").weight == 2
        assert topo.link("R2", "R3").weight == 2

    def test_shortest_paths_overlap_on_b_r2_c(self):
        """Fig. 1a: the IGP shortest paths from A and B overlap along B-R2-C."""
        graph = ComputationGraph.from_topology(build_demo_topology())
        spf_a = compute_spf(graph, "A")
        spf_b = compute_spf(graph, "B")
        assert spf_a.paths_to("C") == [("A", "B", "R2", "C")]
        assert spf_b.paths_to("C") == [("B", "R2", "C")]

    def test_blue_prefix_attached_at_c(self):
        topo = build_demo_topology()
        assert topo.prefix_attachments(BLUE_PREFIX)[0].router == "C"

    def test_server_prefixes_attached_at_ingresses(self):
        topo = build_demo_topology()
        assert topo.prefix_attachments(SOURCE_PREFIXES["S1"])[0].router == "B"
        assert topo.prefix_attachments(SOURCE_PREFIXES["S2"])[0].router == "A"

    def test_demo_lies_match_fig1c(self):
        lies = demo_lies()
        assert len(lies) == 3
        by_anchor = {}
        for lie in lies:
            by_anchor.setdefault(lie.anchor, []).append(lie)
        assert len(by_anchor["A"]) == 2
        assert len(by_anchor["B"]) == 1
        assert by_anchor["B"][0].forwarding_address == "R3"
        assert by_anchor["B"][0].total_cost == 2
        assert all(lie.forwarding_address == "R1" for lie in by_anchor["A"])
        assert all(lie.total_cost == 3 for lie in by_anchor["A"])

    def test_scenario_schedule_matches_paper(self):
        scenario = build_demo_scenario()
        assert scenario.flow_schedule == ((0.0, "S1", 1), (15.0, "S1", 30), (35.0, "S2", 31))
        assert scenario.controller_attachment == "R3"
        assert scenario.monitored_links == (("A", "R1"), ("B", "R2"), ("B", "R3"))

    def test_scenario_capacity_and_bitrate(self):
        scenario = build_demo_scenario()
        # 31 concurrent 1 Mbit/s flows come close to the 4e6 byte/s mark.
        assert 31 * scenario.video_bitrate <= scenario.link_capacity
        assert 62 * scenario.video_bitrate > scenario.link_capacity


class TestZooTopologies:
    def test_abilene_shape(self):
        topo = abilene()
        assert topo.num_routers == 11
        assert topo.is_connected()
        assert len(topo.prefixes) == 11

    def test_ring_size_and_connectivity(self):
        topo = ring(6)
        assert topo.num_routers == 6
        assert topo.num_links == 12
        assert topo.is_connected()

    def test_ring_minimum_size(self):
        with pytest.raises(ValidationError):
            ring(2)

    def test_grid_shape(self):
        topo = grid(3, 4, with_loopbacks=False)
        assert topo.num_routers == 12
        assert topo.is_connected()

    def test_grid_rejects_degenerate_dimensions(self):
        with pytest.raises(ValidationError):
            grid(1, 1)

    def test_dumbbell_bottleneck_capacity(self):
        topo = dumbbell(pairs=2, edge_capacity=100.0)
        assert topo.link("Left", "Right").capacity == 50.0
        assert topo.num_routers == 6

    def test_dumbbell_needs_at_least_one_pair(self):
        with pytest.raises(ValidationError):
            dumbbell(pairs=0)

    def test_zoo_topologies_are_routable(self):
        for topo in [abilene(), ring(5), grid(3, 3), dumbbell(2)]:
            fibs = compute_static_fibs(topo)
            assert set(fibs) == set(topo.routers)


class TestRandomTopologies:
    def test_deterministic_for_same_seed(self):
        a = random_topology(10, seed=7)
        b = random_topology(10, seed=7)
        assert [link.key for link in a.links] == [link.key for link in b.links]
        assert [link.weight for link in a.links] == [link.weight for link in b.links]

    def test_different_seeds_differ(self):
        a = random_topology(10, seed=1)
        b = random_topology(10, seed=2)
        assert [link.key for link in a.links] != [link.key for link in b.links]

    def test_always_connected(self):
        for seed in range(5):
            assert random_topology(15, edge_probability=0.05, seed=seed).is_connected()

    def test_prefix_attachment_mapping(self):
        topo = random_topology(5, seed=0, with_prefixes=False)
        mapping = attach_destination_prefixes(topo)
        assert set(mapping) == set(topo.routers)
        assert len(set(mapping.values())) == 5

    def test_waxman_connected_and_deterministic(self):
        a = waxman_topology(12, seed=3)
        b = waxman_topology(12, seed=3)
        assert a.is_connected()
        assert [link.key for link in a.links] == [link.key for link in b.links]

    def test_minimum_size_enforced(self):
        with pytest.raises(ValidationError):
            random_topology(1)
        with pytest.raises(ValidationError):
            waxman_topology(1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValidationError):
            random_topology(5, edge_probability=1.5)


class TestSyntheticIsp:
    def test_structure(self):
        topo = synthetic_isp(core_size=6, pops=3, prefixes_per_pop=2, seed=0)
        assert topo.num_routers == 6 + 3 * 2
        assert topo.is_connected()
        assert len(topo.prefixes) == 6

    def test_core_links_have_higher_capacity(self):
        topo = synthetic_isp(core_size=4, pops=1, seed=0)
        assert topo.link("Core0", "Core1").capacity > topo.link("Pop0A", "Pop0B").capacity

    def test_deterministic_for_seed(self):
        a = synthetic_isp(seed=5)
        b = synthetic_isp(seed=5)
        assert [link.key for link in a.links] == [link.key for link in b.links]

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            synthetic_isp(core_size=2)
        with pytest.raises(ValidationError):
            synthetic_isp(pops=0)
        with pytest.raises(ValidationError):
            synthetic_isp(prefixes_per_pop=-1)
