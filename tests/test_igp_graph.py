"""Tests for repro.igp.graph."""

import pytest

from repro.igp.graph import ComputationGraph
from repro.igp.lsa import FakeNodeLsa, PrefixLsa, RouterLsa
from repro.igp.topology import Topology
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.util.errors import TopologyError
from repro.util.prefixes import Prefix

PREFIX = Prefix.parse("10.0.0.0/24")


class TestConstruction:
    def test_add_edge_and_lookup(self):
        graph = ComputationGraph()
        graph.add_edge("A", "B", 2.0)
        assert graph.edge_cost("A", "B") == 2.0
        assert graph.has_node("A") and graph.has_node("B")

    def test_edge_cost_must_be_positive(self):
        graph = ComputationGraph()
        with pytest.raises(TopologyError):
            graph.add_edge("A", "B", 0)

    def test_missing_edge_raises(self):
        graph = ComputationGraph()
        graph.add_edge("A", "B", 1.0)
        with pytest.raises(TopologyError):
            graph.edge_cost("B", "A")

    def test_announce_keeps_cheapest(self):
        graph = ComputationGraph()
        graph.add_node("C")
        graph.announce("C", PREFIX, 5.0)
        graph.announce("C", PREFIX, 2.0)
        graph.announce("C", PREFIX, 9.0)
        assert graph.announcers(PREFIX) == {"C": 2.0}

    def test_negative_announcement_rejected(self):
        graph = ComputationGraph()
        graph.add_node("C")
        with pytest.raises(TopologyError):
            graph.announce("C", PREFIX, -1.0)

    def test_fake_node_requires_existing_anchor(self):
        graph = ComputationGraph()
        with pytest.raises(TopologyError):
            graph.add_fake_node("f1", "ghost", 1.0, PREFIX, 1.0, "B")

    def test_duplicate_fake_node_rejected(self):
        graph = ComputationGraph()
        graph.add_edge("A", "B", 1.0)
        graph.add_fake_node("f1", "A", 1.0, PREFIX, 1.0, "B")
        with pytest.raises(TopologyError):
            graph.add_fake_node("f1", "A", 1.0, PREFIX, 1.0, "B")

    def test_fake_info_for_real_node_raises(self):
        graph = ComputationGraph()
        graph.add_node("A")
        with pytest.raises(TopologyError):
            graph.fake_info("A")


class TestFromTopology:
    def test_demo_topology_nodes_and_edges(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        assert set(graph.real_nodes) == {"A", "B", "C", "R1", "R2", "R3", "R4"}
        assert graph.edge_cost("A", "R1") == 2
        assert graph.edge_cost("B", "R2") == 1

    def test_demo_topology_announcements(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        assert "C" in graph.announcers(BLUE_PREFIX)

    def test_lies_become_fake_nodes(self):
        graph = ComputationGraph.from_topology(build_demo_topology(), demo_lies())
        assert len(graph.fake_nodes) == 3
        assert graph.is_fake("fB")
        info = graph.fake_info("fB")
        assert info.anchor == "B"
        assert info.forwarding_address == "R3"

    def test_withdrawn_lies_are_skipped(self):
        lies = [lie.withdraw() for lie in demo_lies()]
        graph = ComputationGraph.from_topology(build_demo_topology(), lies)
        assert graph.fake_nodes == {}

    def test_prefix_listing_includes_all_prefixes(self):
        graph = ComputationGraph.from_topology(build_demo_topology())
        assert BLUE_PREFIX in graph.prefixes


class TestFromLsdb:
    def test_two_way_check_requires_both_directions(self):
        lsas = [
            RouterLsa(origin="A", links=(("B", 1.0),)),
            RouterLsa(origin="B", links=()),
        ]
        graph = ComputationGraph.from_lsdb(lsas)
        with pytest.raises(TopologyError):
            graph.edge_cost("A", "B")

    def test_bidirectional_advertisement_creates_edge(self):
        lsas = [
            RouterLsa(origin="A", links=(("B", 1.0),)),
            RouterLsa(origin="B", links=(("A", 3.0),)),
        ]
        graph = ComputationGraph.from_lsdb(lsas)
        assert graph.edge_cost("A", "B") == 1.0
        assert graph.edge_cost("B", "A") == 3.0

    def test_withdrawn_lsas_are_ignored(self):
        lsas = [
            RouterLsa(origin="A", links=(("B", 1.0),)),
            RouterLsa(origin="B", links=(("A", 1.0),)),
            PrefixLsa(origin="A", prefix=PREFIX, sequence=2, withdrawn=True),
        ]
        graph = ComputationGraph.from_lsdb(lsas)
        assert graph.announcers(PREFIX) == {}

    def test_fake_lsa_with_unknown_anchor_is_skipped(self):
        lsas = [
            RouterLsa(origin="A", links=(("B", 1.0),)),
            RouterLsa(origin="B", links=(("A", 1.0),)),
            FakeNodeLsa(
                origin="ctrl",
                fake_node="f1",
                anchor="ghost",
                link_cost=1.0,
                prefix=PREFIX,
                prefix_cost=1.0,
                forwarding_address="B",
            ),
        ]
        graph = ComputationGraph.from_lsdb(lsas)
        assert graph.fake_nodes == {}

    def test_fake_lsa_becomes_fake_node(self):
        lsas = [
            RouterLsa(origin="A", links=(("B", 1.0),)),
            RouterLsa(origin="B", links=(("A", 1.0),)),
            PrefixLsa(origin="B", prefix=PREFIX),
            FakeNodeLsa(
                origin="ctrl",
                fake_node="f1",
                anchor="A",
                link_cost=1.0,
                prefix=PREFIX,
                prefix_cost=0.5,
                forwarding_address="B",
            ),
        ]
        graph = ComputationGraph.from_lsdb(lsas)
        assert graph.is_fake("f1")
        assert graph.announcers(PREFIX)["f1"] == 0.5
        assert graph.announcements_of("f1") == {PREFIX: 0.5}
