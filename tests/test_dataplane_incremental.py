"""Differential property tests for the incremental flow-level data plane.

Mirror of ``tests/test_igp_rib_incremental.py`` one layer down the stack:
after an arbitrary sequence of flow arrivals (single and batched),
departures, mid-stream FIB swaps (weight changes, lie injections and
withdrawals) and link capacity changes, the incremental engine — versioned
flow-path caching plus warm-start max-min repair — must be indistinguishable
from a from-scratch :class:`~repro.dataplane.engine.DataPlaneEngine`
(``incremental=False``): flow paths, allocated rates, instantaneous link
rates, cumulative byte counters and periodic link samples all bit-identical.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.engine import DataPlaneEngine
from repro.dataplane.flows import FlowSpec
from repro.experiments.scaling import build_pod_topology, pod_prefix
from repro.igp.lsa import FakeNodeLsa
from repro.igp.network import compute_static_fibs
from repro.igp.rib_cache import RibCache
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.topologies.random import random_topology
from repro.util.errors import SimulationError
from repro.util.timeline import Timeline
from repro.util.units import mbps


class DualEngineDriver:
    """Drives an incremental engine and a from-scratch oracle in lockstep.

    Both engines see the same topology, the same FIB store and the same
    event sequence; their timelines advance to the same instants.  Flow ids
    are allocated in the same order on both sides, so the deterministic ECMP
    hash walks the same paths — any divergence is a caching bug.
    """

    def __init__(self, seed, topology=None, alloc_dirty_threshold=0.5):
        self.rng = random.Random(seed)
        self.topology = (
            topology
            if topology is not None
            else random_topology(8, edge_probability=0.3, seed=seed)
        )
        self.lies = {}
        self.lie_counter = 0
        self.rib_cache = RibCache()
        self.fibs = compute_static_fibs(self.topology, rib_cache=self.rib_cache)
        self.timeline_inc = Timeline()
        self.timeline_ref = Timeline()
        self.incremental = DataPlaneEngine(
            self.topology,
            lambda: self.fibs,
            self.timeline_inc,
            alloc_dirty_threshold=alloc_dirty_threshold,
        )
        self.reference = DataPlaneEngine(
            self.topology, lambda: self.fibs, self.timeline_ref, incremental=False
        )
        self.incremental.start()
        self.reference.start()
        self.active = []
        self.steps_applied = 0

    @property
    def engines(self):
        return (self.incremental, self.reference)

    # -------------------------------------------------------------- #
    # Mutations
    # -------------------------------------------------------------- #
    def _random_demand(self):
        # Deliberately non-round demands so bit-identity is meaningful.
        return self.rng.uniform(0.3, 4.0) * 1e6

    def apply(self, action):
        rng = self.rng
        if action == "arrive":
            prefixes = self.topology.prefixes
            if not prefixes:
                return False
            ingress = rng.choice(self.topology.routers)
            prefix = rng.choice(prefixes)
            demand = self._random_demand()
            for engine in self.engines:
                flow = engine.add_flow(ingress, prefix, demand, label="diff")
            self.active.append(flow.flow_id)
        elif action == "arrive_batch":
            prefixes = self.topology.prefixes
            if not prefixes:
                return False
            specs = [
                FlowSpec(
                    ingress=rng.choice(self.topology.routers),
                    prefix=rng.choice(prefixes),
                    demand=self._random_demand(),
                )
                for _ in range(rng.randint(2, 6))
            ]
            for engine in self.engines:
                flows = engine.add_flows(specs)
            self.active.extend(flow.flow_id for flow in flows)
        elif action == "depart":
            if not self.active:
                return False
            flow_id = self.active.pop(rng.randrange(len(self.active)))
            for engine in self.engines:
                engine.remove_flow(flow_id)
        elif action == "fib_swap":
            kind = rng.choice(("weight", "inject", "withdraw"))
            if kind == "weight":
                links = self.topology.undirected_links
                source, target = links[rng.randrange(len(links))]
                self.topology.set_weight(
                    source, target, rng.choice([1, 2, 3, 5, round(rng.random() * 4 + 0.5, 3)])
                )
            elif kind == "inject":
                anchor = rng.choice(self.topology.routers)
                neighbors = self.topology.neighbors(anchor)
                prefixes = self.topology.prefixes
                if not neighbors or not prefixes:
                    return False
                self.lie_counter += 1
                name = f"fake-{self.lie_counter}"
                self.lies[name] = FakeNodeLsa(
                    origin="controller",
                    fake_node=name,
                    anchor=anchor,
                    link_cost=round(rng.random() * 2 + 0.1, 4),
                    prefix=rng.choice(prefixes),
                    prefix_cost=round(rng.random(), 4),
                    forwarding_address=rng.choice(neighbors),
                )
            else:
                if not self.lies:
                    return False
                self.lies.pop(rng.choice(sorted(self.lies)))
            self.fibs = compute_static_fibs(
                self.topology, self.lies.values(), rib_cache=self.rib_cache
            )
            for engine in self.engines:
                engine.notify_routing_change()
        elif action == "noop_routing":
            for engine in self.engines:
                engine.notify_routing_change()
        elif action == "capacity":
            links = self.topology.links
            link = links[rng.randrange(len(links))]
            capacity = self.incremental.link_capacity(link.source, link.target)
            factor = rng.choice([0.5, 0.75, 1.5, 2.0])
            for engine in self.engines:
                engine.set_link_capacity(link.source, link.target, capacity * factor)
        elif action == "advance":
            delta = rng.choice([0.5, 1.0, 2.5])
            target = self.timeline_inc.now + delta
            self.timeline_inc.run_until(target)
            self.timeline_ref.run_until(target)
        else:  # pragma: no cover - defensive
            raise ValueError(action)
        self.steps_applied += 1
        return True

    # -------------------------------------------------------------- #
    # The differential oracle
    # -------------------------------------------------------------- #
    def check_equivalent(self, context=""):
        inc, ref = self.incremental, self.reference
        assert self.timeline_inc.now == self.timeline_ref.now, context
        assert len(inc.flows) == len(ref.flows), context
        for flow_id in self.active:
            assert inc.flow_path(flow_id) == ref.flow_path(flow_id), (
                f"{context} flow={flow_id} path"
            )
            assert inc.flow_rate(flow_id) == ref.flow_rate(flow_id), (
                f"{context} flow={flow_id} rate"
            )
            assert inc.flow_transmitted_bytes(flow_id) == ref.flow_transmitted_bytes(
                flow_id
            ), f"{context} flow={flow_id} bytes"
        for link in self.topology.links:
            key = (link.source, link.target)
            assert inc.link_rate(*key) == ref.link_rate(*key), f"{context} link={key} rate"
        assert inc.all_link_counters() == ref.all_link_counters(), f"{context} counters"
        assert len(inc.samples) == len(ref.samples), context
        for mine, want in zip(inc.samples, ref.samples):
            assert mine.time == want.time, context
            assert mine.interval == want.interval, context
            assert mine.rates == want.rates, f"{context} sample@{mine.time}"


ACTIONS = (
    "arrive",
    "arrive",  # arrivals weighted up: flash crowds are arrival-heavy
    "arrive_batch",
    "depart",
    "fib_swap",
    "noop_routing",
    "capacity",
    "advance",
)


class TestDifferentialRandomized:
    """Seeded randomized event sequences; jointly >= 250 steps."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_event_sequence(self, seed):
        driver = DualEngineDriver(seed)
        driver.check_equivalent(context=f"seed={seed} initial")
        steps = 0
        while steps < 25:
            action = driver.rng.choice(ACTIONS)
            if not driver.apply(action):
                continue
            steps += 1
            driver.check_equivalent(context=f"seed={seed} step={steps} action={action}")
        assert driver.steps_applied >= 25

    def test_demo_scenario_with_lie_swap(self):
        """The exact Fig. 2 state change: the paper's lies land mid-stream."""
        driver = DualEngineDriver(seed=0, topology=build_demo_topology())
        for index in range(20):
            demand = mbps(1) * (1 + 0.013 * index)
            for engine in driver.engines:
                flow = engine.add_flow("B", BLUE_PREFIX, demand)
            driver.active.append(flow.flow_id)
            driver.steps_applied += 1
        driver.apply("advance")
        driver.check_equivalent("before lies")
        driver.fibs = compute_static_fibs(
            driver.topology, demo_lies(), rib_cache=driver.rib_cache
        )
        for engine in driver.engines:
            engine.notify_routing_change()
        driver.check_equivalent("after lies")
        driver.apply("advance")
        driver.check_equivalent("after lies + time")
        assert driver.incremental.link_rate("B", "R3") > 0.0

    def test_counters_reconcile_with_events(self):
        driver = DualEngineDriver(seed=42)
        steps = 0
        while steps < 20:
            if driver.apply(driver.rng.choice(ACTIONS)):
                steps += 1
                driver.check_equivalent()
        counters = driver.incremental.counters
        # Every event split the active flows into rerouted + reused.
        assert counters.flows_rerouted > 0
        assert counters.flows_reused > 0
        assert counters.alloc_events == (
            counters.alloc_warm_starts + counters.alloc_full + counters.fallbacks
        )
        # The reference engine never reuses anything: every event is a full
        # reroute + full allocation (no-op routing changes and unused-link
        # capacity changes skip the allocator on the incremental side only).
        reference = driver.reference.counters
        assert reference.flows_reused == 0
        assert reference.alloc_warm_starts == 0
        assert reference.fallbacks == 0
        assert reference.alloc_full >= counters.alloc_events
        assert reference.flows_rerouted >= counters.flows_rerouted


class TestDifferentialHypothesis:
    """Hypothesis-driven event sequences on a smaller topology."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        actions=st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=10),
    )
    def test_any_event_sequence_matches_from_scratch(self, seed, actions):
        driver = DualEngineDriver(seed)
        for index, action in enumerate(actions):
            if driver.apply(action):
                driver.check_equivalent(
                    context=f"seed={seed} step={index} action={action}"
                )


class TestBatchArrivals:
    """One batched arrival wave == the same arrivals added one by one."""

    def test_batch_equals_sequential(self):
        topology = build_demo_topology()
        fibs = compute_static_fibs(topology)
        specs = [
            FlowSpec(ingress="B", prefix=BLUE_PREFIX, demand=mbps(1) * (1 + 0.01 * i))
            for i in range(12)
        ]
        batched = DataPlaneEngine(topology, lambda: fibs, Timeline())
        sequential = DataPlaneEngine(topology, lambda: fibs, Timeline())
        flows = batched.add_flows(specs)
        for spec in specs:
            sequential.add_flow(spec.ingress, spec.prefix, spec.demand)
        for flow in flows:
            assert batched.flow_rate(flow.flow_id) == sequential.flow_rate(flow.flow_id)
            assert batched.flow_path(flow.flow_id) == sequential.flow_path(flow.flow_id)
        for link in topology.links:
            assert batched.link_rate(link.source, link.target) == sequential.link_rate(
                link.source, link.target
            )
        # The batch paid for one allocation pass, the loop for twelve.
        assert batched.counters.alloc_events == 1
        assert sequential.counters.alloc_events == len(specs)

    def test_empty_batch_is_a_noop(self):
        topology = build_demo_topology()
        fibs = compute_static_fibs(topology)
        engine = DataPlaneEngine(topology, lambda: fibs, Timeline())
        assert engine.add_flows([]) == []
        assert engine.counters.alloc_events == 0

    def test_invalid_batch_is_rejected_atomically(self):
        """A bad spec mid-batch must not leave earlier flows half-created
        (they would never be routed: arrivals are only treated once)."""
        topology = build_demo_topology()
        fibs = compute_static_fibs(topology)
        engine = DataPlaneEngine(topology, lambda: fibs, Timeline())
        good = FlowSpec(ingress="B", prefix=BLUE_PREFIX, demand=mbps(1))
        for bad in (
            FlowSpec(ingress="ghost", prefix=BLUE_PREFIX, demand=mbps(1)),
            FlowSpec(ingress="B", prefix=BLUE_PREFIX, demand=0.0),
        ):
            with pytest.raises(Exception):
                engine.add_flows([good, bad])
        assert len(engine.flows) == 0
        assert len(engine.events) == 0


class TestCacheBehaviour:
    """Staleness, threshold fallbacks, no-op events and component tracking."""

    def build(self, pods=4):
        topology = build_pod_topology(pods=pods)
        fibs = compute_static_fibs(topology)
        engine = DataPlaneEngine(topology, lambda: fibs, Timeline())
        return topology, engine

    def test_noop_routing_change_reuses_every_path(self):
        topology, engine = self.build()
        for pod in range(4):
            engine.add_flow(f"S{pod}", pod_prefix(topology, pod), mbps(2))
        rerouted_before = engine.counters.flows_rerouted
        alloc_before = engine.counters.alloc_events
        engine.notify_routing_change()  # FIBs identical: nothing is dirty
        assert engine.counters.flows_rerouted == rerouted_before
        assert engine.counters.flows_reused >= 4
        assert engine.counters.alloc_events == alloc_before
        for flow in engine.flows:
            assert engine.cached_path_valid(flow.flow_id)

    def test_arrival_warm_starts_only_its_component(self):
        topology, engine = self.build()
        rates = {}
        for pod in range(4):
            flow = engine.add_flow(
                f"S{pod}", pod_prefix(topology, pod), mbps(20)
            )
            rates[pod] = (flow.flow_id, engine.flow_rate(flow.flow_id))
        assert engine.allocation_components() == 4
        warm_before = engine.counters.alloc_warm_starts
        # A second flow in pod 0 halves pod 0's share, touches nobody else.
        engine.add_flow("S0", pod_prefix(topology, 0), mbps(20))
        assert engine.counters.alloc_warm_starts == warm_before + 1
        flow_id, old_rate = rates[0]
        assert engine.flow_rate(flow_id) == pytest.approx(mbps(8))
        assert engine.flow_rate(flow_id) != old_rate
        for pod in range(1, 4):
            flow_id, old_rate = rates[pod]
            assert engine.flow_rate(flow_id) == old_rate

    def test_zero_threshold_forces_counted_fallbacks(self):
        topology = build_pod_topology(pods=2)
        fibs = compute_static_fibs(topology)
        engine = DataPlaneEngine(
            topology, lambda: fibs, Timeline(), alloc_dirty_threshold=0.0
        )
        first = engine.add_flow("S0", pod_prefix(topology, 0), mbps(20))
        assert engine.counters.alloc_full == 1  # cold start is a full, not a fallback
        engine.add_flow("S0", pod_prefix(topology, 0), mbps(20))
        assert engine.counters.fallbacks == 1
        assert engine.counters.alloc_warm_starts == 0
        # The fallback's from-scratch result is still correct.
        assert engine.flow_rate(first.flow_id) == pytest.approx(mbps(8))

    def test_capacity_change_on_unused_link_skips_allocation(self):
        topology, engine = self.build()
        engine.add_flow("S0", pod_prefix(topology, 0), mbps(2))
        events_before = engine.counters.alloc_events
        engine.set_link_capacity("S3", "M3", mbps(64))  # no flow crosses pod 3
        assert engine.counters.alloc_events == events_before
        engine.set_link_capacity("M0", "C0", mbps(1))  # pod 0's bottleneck
        assert engine.counters.alloc_events == events_before + 1
        assert engine.flow_rate(0) == pytest.approx(mbps(1))

    def test_capacity_change_validation(self):
        topology, engine = self.build()
        with pytest.raises(SimulationError):
            engine.set_link_capacity("S0", "C0", mbps(1))  # not a link
        with pytest.raises(Exception):
            engine.set_link_capacity("S0", "M0", 0.0)

    def test_fib_swap_invalidates_only_crossing_flows(self):
        """A FIB entry change re-routes the flows through it, nobody else."""
        driver = DualEngineDriver(seed=7, topology=build_pod_topology(pods=3))
        engine = driver.incremental
        for pod in range(3):
            prefix = pod_prefix(driver.topology, pod)
            for each in driver.engines:
                each.add_flow(f"S{pod}", prefix, mbps(2))
            driver.active.append(pod)
        rerouted_before = engine.counters.flows_rerouted
        # Twiddle pod 1's internal weight: only pod 1's FIB entries change.
        driver.topology.set_weight("S1", "M1", 3)
        driver.fibs = compute_static_fibs(
            driver.topology, rib_cache=driver.rib_cache
        )
        for e in driver.engines:
            e.notify_routing_change()
        assert engine.counters.flows_rerouted == rerouted_before + 1
        driver.check_equivalent("after pod-1 weight change")

    def test_path_cache_version_advances_only_on_real_change(self):
        topology, engine = self.build()
        engine.add_flow("S0", pod_prefix(topology, 0), mbps(2))
        version = engine.path_cache_version
        engine.notify_routing_change()
        assert engine.path_cache_version == version
        engine.remove_flow(0)
        assert engine.path_cache_version == version

    def test_disabled_cache_counts_only_full_allocations(self):
        topology = build_pod_topology(pods=2)
        fibs = compute_static_fibs(topology)
        engine = DataPlaneEngine(topology, lambda: fibs, Timeline(), incremental=False)
        for _ in range(3):
            engine.add_flow("S0", pod_prefix(topology, 0), mbps(2))
        engine.notify_routing_change()
        counters = engine.counters
        assert counters.alloc_full == 4
        assert counters.alloc_warm_starts == 0
        assert counters.fallbacks == 0
        assert counters.flows_reused == 0
        assert counters.flows_rerouted == 1 + 2 + 3 + 3
