"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_every_subcommand_registered(self):
        parser = build_parser()
        subcommands = {"fig1", "fig2", "qoe", "overhead", "optimality", "lie-scaling",
                       "split-approx", "sweep"}
        # argparse stores subparsers in the last action.
        choices = None
        for action in parser._actions:  # noqa: SLF001 - inspecting argparse internals in a test
            if hasattr(action, "choices") and action.choices:
                choices = set(action.choices)
        assert choices is not None
        assert subcommands <= choices

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])


class TestCommands:
    def test_fig1_prints_loads(self, capsys):
        assert main(["fig1"]) == 0
        output = capsys.readouterr().out
        assert "200.0" in output
        assert "66.7" in output
        assert "3 fake nodes" in output

    def test_fig1_pipeline_variant(self, capsys):
        assert main(["fig1", "--pipeline"]) == 0
        assert "66.7" in capsys.readouterr().out

    def test_split_approx_prints_rows(self, capsys):
        assert main(["split-approx", "--table-sizes", "2", "8", "--samples", "20"]) == 0
        output = capsys.readouterr().out
        assert "table size" in output
        assert "2" in output and "8" in output

    def test_lie_scaling_prints_rows(self, capsys):
        assert main(["lie-scaling", "--core-sizes", "4", "--pops", "2", "--destinations", "2"]) == 0
        output = capsys.readouterr().out
        assert "lies (merged)" in output

    def test_overhead_prints_both_schemes(self, capsys):
        assert main(["overhead", "--destinations", "1", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "fibbing" in output
        assert "mpls-rsvp-te" in output

    def test_fig2_short_run(self, capsys):
        assert main(["fig2", "--duration", "25"]) == 0
        output = capsys.readouterr().out
        assert "B-R2" in output
        assert "QoE" in output

    def test_optimality_small_instance(self, capsys):
        assert main(["optimality", "--seeds", "1", "--routers", "8", "--destinations", "2"]) == 0
        output = capsys.readouterr().out
        assert "optimal-mcf" in output
        assert "fibbing" in output

    def test_sweep_quick_writes_bench_json(self, capsys, tmp_path):
        assert main(["sweep", "--sweep", "quick", "--parallel", "serial",
                     "--out", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "sweep digest:" in output
        assert (tmp_path / "BENCH_quick.json").exists()

    def test_sweep_check_passes_on_quick_grid(self, capsys, tmp_path):
        assert main(["sweep", "--sweep", "quick", "--parallel", "process",
                     "--check", "--out", str(tmp_path)]) == 0
        assert "determinism check passed" in capsys.readouterr().out

    def test_sweep_honors_bench_quick_env(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_QUICK", "1")
        assert main(["sweep", "--parallel", "serial", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "BENCH_quick.json").exists()
