"""Differential property tests for the sharded multi-controller facade.

Top of the PR 1–4 stack: after an arbitrary sequence of requirement
additions/updates/removals, link-weight and capacity events, and
alarm-driven ``react()`` calls through the on-demand load balancer, the
sharded facade (``ShardedFibbingController(shards=N)``, any N, any
``parallel`` mode) must be indistinguishable from the single-controller
clear-and-replay oracle (``FibbingController(incremental=False)``): the
installed lie sets (exact :class:`~repro.igp.lsa.FakeNodeLsa` objects,
fake-node names included), the ``current_fibs()`` of every router, and the
data-plane rates/paths of a flow population routed over those FIBs all
bit-identical.

Also covered here: the fake-node namespace partition (no name collision
across shards under add/remove/re-add churn), the ``shard_*`` counter
semantics, and the cross-shard fallback for unpartitionable waves.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import FibbingController
from repro.core.shard import (
    ShardedFibbingController,
    default_shard_assignment,
)
from repro.util.errors import ControllerError
from repro.util.prefixes import Prefix

from test_controller_incremental import ACTIONS, DualControllerDriver


def sharded_factory(shards, parallel="serial"):
    """An ``incremental_factory`` for the dual driver building the facade."""

    def build(topology, plan_dirty_threshold):
        return ShardedFibbingController(
            topology,
            shards=shards,
            plan_dirty_threshold=plan_dirty_threshold,
            parallel=parallel,
        )

    return build


class ShardedDualDriver(DualControllerDriver):
    """The PR 4 dual driver with the sharded facade on the non-oracle side."""

    def __init__(self, seed, shards, parallel="serial", plan_dirty_threshold=0.5, **kwargs):
        super().__init__(
            seed,
            plan_dirty_threshold=plan_dirty_threshold,
            incremental_factory=sharded_factory(shards, parallel),
            **kwargs,
        )

    @property
    def sharded(self) -> ShardedFibbingController:
        return self.incremental

    def close(self):
        self.sharded.close()


class TestShardedDifferentialRandomized:
    """Seeded randomized sequences; jointly >= 250 mutation steps."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mutation_sequence(self, seed):
        shards = (seed % 4) + 1
        driver = ShardedDualDriver(seed, shards=shards)
        driver.check(context=f"seed={seed} shards={shards} initial")
        steps = 0
        while steps < 25:
            action = driver.rng.choice(ACTIONS)
            if not driver.apply(action):
                continue
            steps += 1
            driver.check(context=f"seed={seed} shards={shards} step={steps} action={action}")
        assert driver.steps_applied >= 25
        # Every wave partitioned cleanly: the differential driver never
        # repeats a prefix within one wave.
        assert driver.sharded.shard_counters.cross_shard_fallbacks == 0

    def test_thread_mode_matches_the_oracle(self):
        driver = ShardedDualDriver(13, shards=4, parallel="thread")
        try:
            steps = 0
            while steps < 25:
                action = driver.rng.choice(ACTIONS)
                if not driver.apply(action):
                    continue
                steps += 1
                driver.check(context=f"thread step={steps} action={action}")
            counters = driver.sharded.shard_counters
            # Multi-shard waves went through the executor.
            assert counters.waves_parallel > 0
        finally:
            driver.close()

    def test_process_mode_matches_the_oracle(self):
        """Smoke: shape synthesis through the process pool stays identical."""
        driver = ShardedDualDriver(5, shards=2, parallel="process")
        try:
            facade = driver.sharded
            added = 0
            while added < 4:
                if driver.apply("add"):
                    added += 1
                    driver.check(context=f"process add {added}")
            # Seed 5 spreads the requirements over both shards.
            assert len({facade.shard_of(p) for p in driver.requirements}) == 2
            for step in range(3):
                if driver.apply(driver.rng.choice(("update", "weight", "reenforce"))):
                    driver.check(context=f"process step={step}")
            # Waves spanning both shards went through the process pool.
            assert facade.shard_counters.waves_parallel > 0
        finally:
            driver.close()


class TestShardedDifferentialHypothesis:
    """Hypothesis-driven action sequences on a smaller topology."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        shards=st.integers(min_value=1, max_value=4),
        actions=st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=6),
    )
    def test_any_action_sequence_matches_the_oracle(self, seed, shards, actions):
        driver = ShardedDualDriver(
            seed, shards=shards, num_routers=7, edge_probability=0.35
        )
        for index, action in enumerate(actions):
            if driver.apply(action):
                driver.check(
                    context=f"seed={seed} shards={shards} step={index} action={action}"
                )


class TestNamespacePartitioning:
    """Fake-node names never collide across shards, whatever the churn."""

    @pytest.mark.parametrize("seed", (0, 3, 8))
    def test_no_name_collision_under_churn(self, seed):
        driver = ShardedDualDriver(seed, shards=3)
        removed = []
        for step in range(20):
            action = driver.rng.choice(("add", "add", "update", "remove", "reenforce"))
            if action == "remove" and driver.requirements:
                removed.append(sorted(driver.requirements)[0])
            if not driver.apply(action):
                continue
            # Every name ever committed, across every shard's full history
            # (withdrawn lies included), is globally unique...
            names = [lie.lsa.fake_node for lie in driver.sharded.registry.history()]
            assert len(names) == len(set(names)), f"seed={seed} step={step}"
            # ...and no placeholder ever reached a registry.
            assert not any(name.startswith("pending-") for name in names)
        # Re-add previously removed prefixes: names keep advancing, never reuse.
        for prefix in removed:
            requirement = driver._random_requirement(prefix)
            if requirement is None:
                continue
            driver.requirements[prefix] = requirement
            driver._enforce_wave()
            driver.check(context=f"seed={seed} re-add {prefix}")
            names = [lie.lsa.fake_node for lie in driver.sharded.registry.history()]
            assert len(names) == len(set(names))

    def test_each_prefix_lives_in_exactly_its_shard(self):
        driver = ShardedDualDriver(2, shards=4)
        added = 0
        while added < 4:
            if driver.apply("add"):
                added += 1
        facade = driver.sharded
        for index, shard in enumerate(facade.shards):
            for prefix in shard.registry.prefixes():
                assert facade.shard_of(prefix) == index

    def test_default_assignment_is_hash_seed_independent(self):
        # Pinned values: sha256-based, so any PYTHONHASHSEED (the CI matrix
        # runs two) and any interpreter produce the same partition.
        assert default_shard_assignment(Prefix.parse("10.0.0.0/24"), 4) == 1
        assert default_shard_assignment(Prefix.parse("10.0.1.0/24"), 4) == 3
        assert default_shard_assignment(Prefix.parse("192.168.0.0/16"), 4) == 2

    def test_assignment_out_of_range_is_rejected(self):
        driver = ShardedDualDriver(0, shards=2)
        facade = ShardedFibbingController(
            driver.topology, shards=2, assignment=lambda prefix, shards: 5
        )
        with pytest.raises(ControllerError):
            facade.shard_of(driver.topology.prefixes[0])


class TestShardCountersAndFallbacks:
    """The shard_* accounting and the serial fallback, down to exact counts."""

    def test_clean_wave_counts_every_populated_shard_clean(self):
        driver = ShardedDualDriver(7, shards=4)
        added = 0
        while added < 4:
            if driver.apply("add"):
                added += 1
                driver.check()
        facade = driver.sharded
        populated = len(
            {facade.shard_of(prefix) for prefix in driver.requirements}
        )
        counters = facade.shard_counters
        clean_before = counters.shards_clean
        messages_before = facade.stats.messages_sent
        driver.apply("reenforce")
        driver.check(context="clean wave")
        assert counters.shards_clean == clean_before + populated
        assert facade.stats.messages_sent == messages_before

    def test_duplicate_prefix_wave_falls_back_serially_and_matches(self):
        driver = ShardedDualDriver(9, shards=3)
        while not driver.apply("add"):
            pass
        driver.check()
        (prefix,) = list(driver.requirements)
        requirement = driver.requirements[prefix]
        update = driver._random_requirement(prefix)
        assert update is not None
        counters = driver.sharded.shard_counters
        fallbacks_before = counters.cross_shard_fallbacks
        # The same prefix twice in one wave: the later requirement must see
        # the earlier one's committed lies, so the facade cannot partition.
        for controller in (driver.incremental, driver.oracle):
            controller.enforce([requirement, update])
        driver.requirements[prefix] = update
        driver.check(context="duplicate-prefix wave")
        assert counters.cross_shard_fallbacks == fallbacks_before + 1

    def test_serial_fallback_accounting_mirrors_the_single_controller(self):
        """The unpartitionable path evaluates the dirty threshold over the
        whole wave, like FibbingController.enforce — a dirty duplicate-
        prefix wave past the threshold counts one facade-level fallback."""
        driver = ShardedDualDriver(9, shards=3, plan_dirty_threshold=0.0)
        while not driver.apply("add"):
            pass
        driver.check()
        (prefix,) = list(driver.requirements)
        update = driver._random_requirement(prefix)
        assert update is not None
        facade = driver.sharded
        fallbacks_before = facade.plan_cache.counters.fallbacks
        for controller in (driver.incremental, driver.oracle):
            controller.enforce([update, update])
        driver.requirements[prefix] = update
        driver.check(context="dirty duplicate-prefix wave")
        assert facade.plan_cache.counters.fallbacks == fallbacks_before + 1
        # A clean duplicate wave afterwards is all plan-cache hits (they are
        # exempt from the threshold-0 fallback only when nothing is dirty).
        hits_before = facade.reconciler.counters.plan_cache_hits
        for controller in (driver.incremental, driver.oracle):
            controller.enforce([update, update])
        driver.check(context="clean duplicate-prefix wave")
        assert facade.reconciler.counters.plan_cache_hits == hits_before + 2

    def test_baseline_supplied_requirement_counts_a_cross_shard_fallback(self):
        """enforce_requirement(req, baseline_fibs=...) plans inline: it
        counts as an unpartitionable wave and moves no ctl_* counter — the
        single controller's equivalent path does not count either."""
        driver = ShardedDualDriver(3, shards=2)
        while not driver.apply("add"):
            pass
        driver.check()
        (prefix,) = list(driver.requirements)
        requirement = driver.requirements[prefix]
        facade = driver.sharded
        baseline = driver.oracle.baseline_fibs()
        ctl_before = facade.reconciler.counters.snapshot()
        fallbacks_before = facade.shard_counters.cross_shard_fallbacks
        for controller in (driver.incremental, driver.oracle):
            controller.enforce_requirement(requirement, baseline_fibs=dict(baseline))
        driver.check(context="baseline-supplied requirement")
        assert facade.shard_counters.cross_shard_fallbacks == fallbacks_before + 1
        ctl_after = facade.reconciler.counters.snapshot()
        assert ctl_after["ctl_plans_recomputed"] == ctl_before["ctl_plans_recomputed"]
        assert ctl_after["ctl_plan_cache_hits"] == ctl_before["ctl_plan_cache_hits"]

    def test_oracle_mode_facade_keeps_ctl_counters_untouched(self):
        """ShardedFibbingController(incremental=False) mirrors the single
        clear-and-replay oracle's counter silence on every path, duplicate-
        prefix serial waves included."""
        driver = ShardedDualDriver(9, shards=3)
        while not driver.apply("add"):
            pass
        (prefix,) = list(driver.requirements)
        requirement = driver.requirements[prefix]
        facade = ShardedFibbingController(
            driver.topology, shards=3, incremental=False
        )
        facade.enforce([requirement])
        facade.enforce([requirement, requirement])  # serial duplicate wave
        counters = facade.reconciler.counters.snapshot()
        assert counters["ctl_plans_recomputed"] == 0
        assert counters["ctl_plan_cache_hits"] == 0
        assert counters["ctl_fallbacks"] == 0
        # The churn accounting still moves, like the single oracle's.
        assert counters["ctl_lies_kept"] > 0 or counters["ctl_lies_injected"] > 0
        assert facade.active_lies() == driver.oracle.active_lies()

    def test_single_shard_facade_matches_and_dispatches_serially(self):
        driver = ShardedDualDriver(4, shards=1, parallel="thread")
        try:
            applied = 0
            while applied < 5:
                if driver.apply(driver.rng.choice(("add", "update", "reenforce"))):
                    applied += 1
                    driver.check()
            counters = driver.sharded.shard_counters
            # One populated shard: nothing to overlap, no executor dispatch.
            assert counters.waves_parallel == 0
            assert counters.waves_serial > 0
        finally:
            driver.close()

    def test_per_shard_fallback_localises_the_blast_radius(self):
        """A wave churning one shard trips only that shard's fallback."""
        driver = ShardedDualDriver(12, shards=2, plan_dirty_threshold=0.0)
        added = 0
        while added < 4:
            if driver.apply("add"):
                added += 1
                driver.check()
        facade = driver.sharded
        by_shard = {}
        for prefix in sorted(driver.requirements):
            by_shard.setdefault(facade.shard_of(prefix), []).append(prefix)
        # Seed 12 spreads the requirements over both shards.
        assert len(by_shard) == 2
        target_shard = sorted(by_shard)[0]
        victim = by_shard[target_shard][0]
        update = driver._random_requirement(victim)
        assert update is not None
        driver.requirements[victim] = update
        clean_shard = sorted(by_shard)[1]
        fallbacks_before = facade.shards[clean_shard].reconciler.counters.fallbacks
        hits_before = facade.shards[clean_shard].reconciler.counters.plan_cache_hits
        driver._enforce_wave()
        driver.check(context="one-shard churn")
        # threshold 0: the churned shard falls back, the clean shard does
        # not — its requirements all stay plan-cache hits.
        assert facade.shards[target_shard].reconciler.counters.fallbacks > 0
        assert facade.shards[clean_shard].reconciler.counters.fallbacks == fallbacks_before
        assert facade.shards[clean_shard].reconciler.counters.plan_cache_hits > hits_before

    def test_invalid_knobs_are_rejected(self):
        driver = ShardedDualDriver(0, shards=2)
        with pytest.raises(ControllerError):
            ShardedFibbingController(driver.topology, shards=0)
        with pytest.raises(ControllerError):
            ShardedFibbingController(driver.topology, shards=2, parallel="fleet")

    def test_stats_surface_the_shard_counters(self):
        driver = ShardedDualDriver(6, shards=2)
        while not driver.apply("add"):
            pass
        snapshot = driver.sharded.stats.snapshot()
        counters = driver.sharded.shard_counters.snapshot()
        for key, value in counters.items():
            assert snapshot[key] == value
        assert snapshot["ctl_plans_recomputed"] > 0
