"""Tests for the Fig. 1 experiment harness (the static load numbers)."""

import pytest

from repro.experiments.fig1 import run_fig1


class TestBaseline:
    def test_baseline_max_load_is_200(self):
        result = run_fig1(with_fibbing=False)
        assert result.max_load == pytest.approx(200.0)

    def test_baseline_overlap_on_b_r2_c(self):
        result = run_fig1(with_fibbing=False)
        assert result.load_of("B", "R2") == pytest.approx(200.0)
        assert result.load_of("R2", "C") == pytest.approx(200.0)
        assert result.load_of("A", "B") == pytest.approx(100.0)

    def test_baseline_alternate_paths_unused(self):
        result = run_fig1(with_fibbing=False)
        assert result.load_of("A", "R1") == 0.0
        assert result.load_of("B", "R3") == 0.0
        assert result.load_of("R4", "C") == 0.0

    def test_baseline_has_no_lies_and_single_paths(self):
        result = run_fig1(with_fibbing=False)
        assert result.lie_count == 0
        assert result.split_at_a == {"B": 1.0}
        assert result.split_at_b == {"R2": 1.0}


class TestFibbed:
    def test_fibbed_max_load_drops_to_67(self):
        result = run_fig1(with_fibbing=True)
        assert result.max_load == pytest.approx(200.0 / 3, rel=1e-6)

    def test_fibbed_per_link_loads_match_fig1d(self):
        result = run_fig1(with_fibbing=True)
        for link in [("A", "R1"), ("B", "R2"), ("B", "R3"), ("R1", "R4"), ("R4", "C"), ("R2", "C"), ("R3", "C")]:
            assert result.load_of(*link) == pytest.approx(200.0 / 3, rel=1e-6)
        assert result.load_of("A", "B") == pytest.approx(100.0 / 3, rel=1e-6)

    def test_fibbed_splits_match_fig1c(self):
        result = run_fig1(with_fibbing=True)
        assert result.split_at_a["B"] == pytest.approx(1 / 3)
        assert result.split_at_a["R1"] == pytest.approx(2 / 3)
        assert result.split_at_b == {"R2": 0.5, "R3": 0.5}
        assert result.lie_count == 3

    def test_improvement_factor_is_three(self):
        baseline = run_fig1(with_fibbing=False)
        fibbed = run_fig1(with_fibbing=True)
        assert baseline.max_load / fibbed.max_load == pytest.approx(3.0, rel=1e-6)


class TestControllerPipeline:
    def test_controller_pipeline_reproduces_paper_lies(self):
        result = run_fig1(with_fibbing=True, use_controller_pipeline=True)
        assert result.lie_count == 3
        assert result.max_load == pytest.approx(200.0 / 3, rel=1e-3)

    def test_pipeline_and_paper_lies_agree(self):
        paper = run_fig1(with_fibbing=True, use_controller_pipeline=False)
        pipeline = run_fig1(with_fibbing=True, use_controller_pipeline=True)
        assert paper.split_at_a["R1"] == pytest.approx(pipeline.split_at_a["R1"], abs=1e-6)
        assert paper.split_at_b == pipeline.split_at_b
