"""Tests for the overhead, optimality and scaling experiment harnesses."""

import pytest

from repro.experiments.optimality import run_optimality_study
from repro.experiments.overhead import build_flash_crowd_demands, run_overhead_comparison
from repro.experiments.scaling import (
    build_pod_topology,
    run_flashcrowd_scaling,
    run_lie_scaling,
    run_split_approximation,
)
from repro.topologies.random import random_topology
from repro.util.errors import ValidationError


class TestFlashCrowdDemands:
    def test_demand_builder_targets_requested_destinations(self):
        topology = random_topology(10, seed=0)
        demands = build_flash_crowd_demands(topology, destinations=3, seed=0)
        assert len(demands.prefixes) == 3
        assert demands.total() > 0

    def test_sources_never_colocated_with_destination(self):
        topology = random_topology(10, seed=1)
        demands = build_flash_crowd_demands(topology, destinations=2, seed=1)
        for entry in demands.entries():
            attachment = topology.prefix_attachments(entry.prefix)[0].router
            assert entry.ingress != attachment

    def test_too_many_destinations_rejected(self):
        topology = random_topology(5, seed=0)
        with pytest.raises(ValidationError):
            build_flash_crowd_demands(topology, destinations=50)


class TestOverheadComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_overhead_comparison(destination_counts=(1, 2), seed=0)

    def test_rows_cover_both_schemes_and_counts(self, rows):
        assert {(row.scheme, row.destinations) for row in rows} == {
            ("fibbing", 1),
            ("fibbing", 2),
            ("mpls-rsvp-te", 1),
            ("mpls-rsvp-te", 2),
        }

    def test_fibbing_has_no_per_packet_overhead(self, rows):
        for row in rows:
            if row.scheme == "fibbing":
                assert row.per_packet_overhead_bytes == 0
            else:
                assert row.per_packet_overhead_bytes > 0

    def test_fibbing_needs_fewer_control_messages(self, rows):
        for count in (1, 2):
            fibbing = next(r for r in rows if r.scheme == "fibbing" and r.destinations == count)
            mpls = next(r for r in rows if r.scheme == "mpls-rsvp-te" and r.destinations == count)
            assert fibbing.control_messages <= mpls.control_messages

    def test_both_schemes_achieve_similar_utilization(self, rows):
        for count in (1, 2):
            fibbing = next(r for r in rows if r.scheme == "fibbing" and r.destinations == count)
            mpls = next(r for r in rows if r.scheme == "mpls-rsvp-te" and r.destinations == count)
            assert fibbing.max_utilization <= mpls.max_utilization * 1.25 + 1e-9


class TestOptimalityStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_optimality_study(seeds=(0, 1), num_routers=8, destinations=2)

    def test_every_scheme_appears_for_every_seed(self, rows):
        schemes = {row.scheme for row in rows}
        assert {"single-shortest-path", "igp-ecmp", "fibbing", "mpls-rsvp-te", "optimal-mcf"} <= schemes
        assert {row.seed for row in rows} == {0, 1}

    def test_optimum_is_a_lower_bound(self, rows):
        for row in rows:
            assert row.max_utilization >= row.optimal_utilization - 1e-6
            assert row.gap >= -1e-6

    def test_fibbing_gap_is_small(self, rows):
        gaps = [row.gap for row in rows if row.scheme == "fibbing"]
        assert max(gaps) < 0.15

    def test_fibbing_never_worse_than_plain_igp(self, rows):
        by_seed = {}
        for row in rows:
            by_seed.setdefault(row.seed, {})[row.scheme] = row.max_utilization
        for seed, values in by_seed.items():
            assert values["fibbing"] <= values["igp-ecmp"] + 1e-9


class TestScalingAblations:
    def test_lie_scaling_merger_always_helps(self):
        rows = run_lie_scaling(core_sizes=(4, 6), pops=2, destinations=2, seed=0)
        assert len(rows) == 2
        for row in rows:
            assert row.lies_with_merger <= row.lies_without_merger
            assert 0.0 <= row.reduction <= 1.0
            assert row.routers == row.core_size + 2 * 2

    def test_split_approximation_error_decreases_with_table_size(self):
        rows = run_split_approximation(table_sizes=(2, 4, 8, 16), samples=50, seed=1)
        errors = [row.mean_error for row in rows]
        assert errors == sorted(errors, reverse=True)
        assert rows[-1].mean_error < 0.1
        assert all(row.worst_error >= row.mean_error for row in rows)

    def test_split_approximation_validation(self):
        with pytest.raises(ValidationError):
            run_split_approximation(samples=0)

    def test_flashcrowd_scaling_counters_show_cache_effectiveness(self):
        rows = run_flashcrowd_scaling(flow_counts=(24, 48), pods=4)
        assert [row.flows for row in rows] == [24, 48]
        for row in rows:
            churn = row.flows // 4
            # Every arrival re-routes exactly the new flow; every other
            # active flow is served from the path cache.
            assert row.flows_rerouted == row.flows
            assert row.flows_reused > 0
            assert row.fallbacks == 0
            assert row.alloc_full == 1  # the cold start only
            assert row.alloc_warm_starts == row.flows + churn - 1
            assert row.speedup > 0

    def test_flashcrowd_scaling_validation(self):
        with pytest.raises(ValidationError):
            run_flashcrowd_scaling(flow_counts=(0,))
        with pytest.raises(ValidationError):
            build_pod_topology(0)
