"""Tests for the traffic-engineering baselines."""

import pytest

from repro.core.policies import LoadBalancerPolicy
from repro.dataplane.demand import TrafficMatrix
from repro.te import (
    EcmpRouting,
    FibbingTe,
    MplsRsvpTe,
    OptimalMultiCommodityFlow,
    SingleShortestPath,
    WeightOptimizer,
    compare_outcomes,
)
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.topologies.random import random_topology
from repro.util.units import mbps


class TestSingleShortestPathAndEcmp:
    def test_single_path_piles_up_traffic(self, fig2_demands):
        outcome = SingleShortestPath().route(build_demo_topology(), fig2_demands)
        assert outcome.max_utilization == pytest.approx(62 / 32, rel=1e-3)
        assert outcome.control_state == 0
        assert outcome.delivery_fraction == 1.0

    def test_ecmp_equals_single_path_on_demo(self, fig2_demands):
        """The demo weights give unique shortest paths, so ECMP cannot help."""
        ecmp = EcmpRouting().route(build_demo_topology(), fig2_demands)
        single = SingleShortestPath().route(build_demo_topology(), fig2_demands)
        assert ecmp.max_utilization == pytest.approx(single.max_utilization)

    def test_ecmp_uses_equal_cost_paths_when_available(self):
        from repro.topologies.zoo import grid

        topology = grid(2, 2, with_loopbacks=True)
        prefix = topology.attachments_of("G1_1")[0].prefix
        demands = TrafficMatrix.from_dict({("G0_0", prefix): mbps(10)})
        ecmp = EcmpRouting().route(topology, demands)
        single = SingleShortestPath().route(topology, demands)
        assert ecmp.max_utilization < single.max_utilization

    def test_no_data_plane_overhead(self, fig2_demands):
        for scheme in [SingleShortestPath(), EcmpRouting()]:
            outcome = scheme.route(build_demo_topology(), fig2_demands)
            assert outcome.per_packet_overhead_bytes == 0


class TestWeightOptimizer:
    def test_optimizer_improves_or_matches_default(self, fig2_demands):
        topology = build_demo_topology()
        default = EcmpRouting().route(topology, fig2_demands).max_utilization
        optimized = WeightOptimizer(iterations=60, seed=1).route(topology, fig2_demands)
        assert optimized.max_utilization <= default + 1e-9

    def test_original_topology_is_not_mutated(self, fig2_demands):
        topology = build_demo_topology()
        weights_before = {link.key: link.weight for link in topology.links}
        WeightOptimizer(iterations=30, seed=0).route(topology, fig2_demands)
        assert {link.key: link.weight for link in topology.links} == weights_before

    def test_control_state_counts_weight_changes(self, fig2_demands):
        scheme = WeightOptimizer(iterations=60, seed=1)
        outcome = scheme.route(build_demo_topology(), fig2_demands)
        assert outcome.control_state == len(scheme.changes)
        assert outcome.control_messages == 2 * len(scheme.changes)

    def test_zero_iterations_equals_default(self, fig2_demands):
        topology = build_demo_topology()
        outcome = WeightOptimizer(iterations=0).route(topology, fig2_demands)
        default = EcmpRouting().route(topology, fig2_demands).max_utilization
        assert outcome.max_utilization == pytest.approx(default)


class TestMpls:
    def test_mpls_matches_lp_optimum(self, fig2_demands):
        topology = build_demo_topology()
        mpls = MplsRsvpTe().route(topology, fig2_demands)
        optimum = OptimalMultiCommodityFlow().route(topology, fig2_demands)
        assert mpls.max_utilization == pytest.approx(optimum.max_utilization, rel=1e-3)

    def test_mpls_needs_tunnels_and_signaling(self, fig2_demands):
        scheme = MplsRsvpTe()
        outcome = scheme.route(build_demo_topology(), fig2_demands)
        assert outcome.control_state >= 3  # at least one tunnel per used path
        assert outcome.control_messages > outcome.control_state
        assert outcome.per_packet_overhead_bytes == 4

    def test_tunnel_rates_cover_demands(self, fig2_demands):
        scheme = MplsRsvpTe()
        scheme.route(build_demo_topology(), fig2_demands)
        total = sum(tunnel.rate for tunnel in scheme.tunnels)
        assert total == pytest.approx(fig2_demands.total(), rel=1e-6)

    def test_tunnels_follow_existing_links(self, fig2_demands):
        topology = build_demo_topology()
        scheme = MplsRsvpTe()
        scheme.route(topology, fig2_demands)
        for tunnel in scheme.tunnels:
            for source, target in tunnel.links:
                assert topology.has_link(source, target)


class TestFibbingScheme:
    def test_fibbing_close_to_optimum_on_demo(self, fig2_demands):
        topology = build_demo_topology()
        fibbing = FibbingTe().route(topology, fig2_demands)
        optimum = OptimalMultiCommodityFlow().route(topology, fig2_demands)
        assert fibbing.max_utilization == pytest.approx(optimum.max_utilization, rel=0.02)

    def test_fibbing_state_is_fake_lsas_not_tunnels(self, fig2_demands):
        scheme = FibbingTe()
        outcome = scheme.route(build_demo_topology(), fig2_demands)
        assert outcome.control_state == 3
        assert outcome.per_packet_overhead_bytes == 0

    def test_fibbing_uses_fewer_messages_than_mpls_on_demo(self, fig2_demands):
        topology = build_demo_topology()
        fibbing = FibbingTe().route(topology, fig2_demands)
        mpls = MplsRsvpTe().route(topology, fig2_demands)
        assert fibbing.control_messages < mpls.control_messages

    def test_fibbing_beats_plain_igp_on_random_instances(self):
        for seed in range(2):
            topology = random_topology(8, seed=seed)
            prefix = topology.prefixes[0]
            destination = topology.prefix_attachments(prefix)[0].router
            sources = [router for router in topology.routers if router != destination][:3]
            demands = TrafficMatrix.from_dict(
                {(source, prefix): mbps(20) for source in sources}
            )
            fibbing = FibbingTe().route(topology, demands)
            plain = EcmpRouting().route(topology, demands)
            assert fibbing.max_utilization <= plain.max_utilization + 1e-9

    def test_fibbing_respects_small_ecmp_table(self, fig2_demands):
        policy = LoadBalancerPolicy(max_ecmp_entries=2)
        outcome = FibbingTe(policy=policy).route(build_demo_topology(), fig2_demands)
        # A 1/2-1/2 approximation at A is worse than the optimum but must
        # still beat the single-path baseline.
        single = SingleShortestPath().route(build_demo_topology(), fig2_demands)
        assert outcome.max_utilization < single.max_utilization


class TestComparison:
    def test_compare_outcomes_sorted_by_utilization(self, fig2_demands):
        topology = build_demo_topology()
        outcomes = [
            SingleShortestPath().route(topology, fig2_demands),
            FibbingTe().route(topology, fig2_demands),
            OptimalMultiCommodityFlow().route(topology, fig2_demands),
        ]
        rows = compare_outcomes(outcomes)
        assert rows[0]["max_utilization"] <= rows[-1]["max_utilization"]
        assert {row["scheme"] for row in rows} == {
            "single-shortest-path",
            "fibbing",
            "optimal-mcf",
        }
