"""Differential property tests for the incremental controller reconciler.

Mirror of the PR 1–3 suites at the top of the stack: after an arbitrary
sequence of requirement additions/updates/removals, link-weight and capacity
events, and alarm-driven ``react()`` calls through the on-demand load
balancer, the plan-cache reconciler (``FibbingController(incremental=True)``)
must be indistinguishable from the clear-and-replay oracle
(``incremental=False``): the installed lie sets (exact
:class:`~repro.igp.lsa.FakeNodeLsa` objects, fake-node names included), the
``current_fibs()`` of every router, and the data-plane rates/paths of a flow
population routed over those FIBs all bit-identical.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.augmentation import synthesize_lie_shapes
from repro.core.controller import FibbingController
from repro.core.loadbalancer import OnDemandLoadBalancer
from repro.core.policies import LoadBalancerPolicy
from repro.core.requirements import DestinationRequirement, RequirementSet
from repro.dataplane.demand import TrafficMatrix
from repro.dataplane.engine import DataPlaneEngine
from repro.monitoring.alarms import AlarmEvent
from repro.topologies.random import random_topology
from repro.util.errors import ControllerError
from repro.util.timeline import Timeline


class StubClients:
    """Stands in for the client registry: a directly mutable demand matrix."""

    def __init__(self):
        self.matrix = TrafficMatrix()

    def demand_matrix(self):
        return self.matrix


class DualControllerDriver:
    """Drives a reconciler and a clear-and-replay oracle in lockstep.

    Both controllers manage the same (shared) topology and see the same
    requirement waves, topology events and react() calls; a data-plane
    engine per side routes an identical flow population over each
    controller's FIB view.  Any divergence — a lie, a FIB entry, a flow
    rate — is a plan-cache bug.
    """

    def __init__(
        self,
        seed,
        num_routers=10,
        edge_probability=0.3,
        plan_dirty_threshold=0.5,
        incremental_factory=None,
    ):
        """``incremental_factory(topology, plan_dirty_threshold)`` builds the
        non-oracle side; the shard differential suite injects the sharded
        facade through it (default: a plain plan-cache reconciler)."""
        self.rng = random.Random(seed)
        self.topology = random_topology(
            num_routers, edge_probability=edge_probability, seed=seed
        )
        if incremental_factory is None:
            self.incremental = FibbingController(
                self.topology, incremental=True, plan_dirty_threshold=plan_dirty_threshold
            )
        else:
            self.incremental = incremental_factory(self.topology, plan_dirty_threshold)
        self.oracle = FibbingController(self.topology, incremental=False)
        self.clients = StubClients()
        policy = LoadBalancerPolicy()
        self.balancers = {
            "incremental": OnDemandLoadBalancer(self.incremental, self.clients, policy=policy),
            "oracle": OnDemandLoadBalancer(self.oracle, self.clients, policy=policy),
        }
        self.requirements = {}  # prefix -> DestinationRequirement
        self.steps_applied = 0
        self.reactions = 0

        # One engine per controller view, fed the same flow population.
        self.engines = {}
        for key, controller in (("incremental", self.incremental), ("oracle", self.oracle)):
            self.engines[key] = DataPlaneEngine(
                self.topology,
                controller.static_fibs,
                Timeline(),
            )
        self.flow_ids = []
        prefixes = self.topology.prefixes
        for index in range(3 * len(prefixes)):
            ingress = self.rng.choice(self.topology.routers)
            prefix = prefixes[index % len(prefixes)]
            demand = self.rng.uniform(0.3, 4.0) * 1e6
            for engine in self.engines.values():
                flow = engine.add_flow(ingress, prefix, demand, label="diff")
            self.flow_ids.append(flow.flow_id)

    # -------------------------------------------------------------- #
    # Requirement generation
    # -------------------------------------------------------------- #
    def _random_requirement(self, prefix):
        """A random realisable requirement for ``prefix`` (or ``None``)."""
        rng = self.rng
        announcers = {
            attachment.router
            for attachment in self.topology.prefix_attachments(prefix)
        }
        candidates = [
            router
            for router in self.topology.routers
            if router not in announcers and self.topology.neighbors(router)
        ]
        if not candidates:
            return None
        next_hops = {}
        for router in rng.sample(candidates, min(len(candidates), rng.randint(1, 2))):
            neighbors = self.topology.neighbors(router)
            chosen = rng.sample(neighbors, rng.randint(1, min(3, len(neighbors))))
            next_hops[router] = {hop: rng.randint(1, 3) for hop in chosen}
        requirement = DestinationRequirement(prefix=prefix, next_hops=next_hops)
        try:
            # Realisability pre-check with the pure planning core; both
            # controllers would reject (or accept) identically, but a raise
            # inside a batched enforce would leave half the wave committed.
            requirement.validate(self.topology)
            synthesize_lie_shapes(
                self.topology, requirement, baseline_fibs=self.oracle.baseline_fibs()
            )
        except ControllerError:
            return None
        return requirement

    # -------------------------------------------------------------- #
    # Mutations
    # -------------------------------------------------------------- #
    def _enforce_wave(self):
        wave = RequirementSet(self.requirements.values())
        for controller in (self.incremental, self.oracle):
            controller.enforce(wave)

    def apply(self, action):
        rng = self.rng
        if action in ("add", "update"):
            if action == "update" and self.requirements:
                prefix = rng.choice(sorted(self.requirements))
            else:
                prefix = rng.choice(self.topology.prefixes)
            requirement = self._random_requirement(prefix)
            if requirement is None:
                return False
            self.requirements[prefix] = requirement
            self._enforce_wave()
        elif action == "remove":
            if not self.requirements:
                return False
            prefix = rng.choice(sorted(self.requirements))
            del self.requirements[prefix]
            for controller in (self.incremental, self.oracle):
                controller.clear_prefix(prefix)
            self._enforce_wave()
        elif action == "reenforce":
            # The steady-state wave: nothing changed, everything should be
            # a plan-cache hit on the incremental side.
            self._enforce_wave()
        elif action == "weight":
            links = self.topology.undirected_links
            source, target = links[rng.randrange(len(links))]
            self.topology.set_weight(source, target, rng.choice([1, 2, 3, 5]))
            self._enforce_wave()
        elif action == "capacity":
            links = self.topology.undirected_links
            source, target = links[rng.randrange(len(links))]
            capacity = round(rng.uniform(0.5, 4.0) * 1e7, 3)
            self.topology.set_capacity(source, target, capacity)
            for engine in self.engines.values():
                engine.set_link_capacity(source, target, capacity)
                engine.set_link_capacity(target, source, capacity)
        elif action == "react":
            if rng.random() < 0.5 or not len(self.clients.matrix):
                matrix = TrafficMatrix()
                for _ in range(rng.randint(1, 3)):
                    matrix.add(
                        rng.choice(self.topology.routers),
                        rng.choice(self.topology.prefixes),
                        round(rng.uniform(1.0, 8.0) * 1e6, 3),
                    )
                self.clients.matrix = matrix
            # else: unchanged demands — the whole reaction should be served
            # from the plan cache on the incremental side.
            self.reactions += 1
            event = AlarmEvent(time=float(self.reactions), hot_links=())
            for balancer in self.balancers.values():
                balancer.react(event)
            # react() withdraws lies for prefixes its optimisation did not
            # touch; drop the manual bookkeeping so later waves re-plan.
            installed = set(self.incremental.registry.prefixes())
            self.requirements = {
                prefix: requirement
                for prefix, requirement in self.requirements.items()
                if prefix in installed
            }
        else:  # pragma: no cover - defensive
            raise ValueError(action)
        self.steps_applied += 1
        return True

    # -------------------------------------------------------------- #
    # The differential oracle
    # -------------------------------------------------------------- #
    def check(self, context=""):
        incremental, oracle = self.incremental, self.oracle
        assert incremental.registry.active_lsas() == oracle.registry.active_lsas(), context

        inc_fibs = incremental.current_fibs()
        ref_fibs = oracle.current_fibs()
        assert set(inc_fibs) == set(ref_fibs), context
        for router in sorted(ref_fibs):
            assert inc_fibs[router].prefixes == ref_fibs[router].prefixes, (
                f"{context} router={router}"
            )
            for prefix in ref_fibs[router].prefixes:
                assert inc_fibs[router].lookup(prefix) == ref_fibs[router].lookup(prefix), (
                    f"{context} router={router} prefix={prefix}"
                )

        for engine in self.engines.values():
            engine.notify_routing_change()
        inc_engine = self.engines["incremental"]
        ref_engine = self.engines["oracle"]
        for flow_id in self.flow_ids:
            assert inc_engine.flow_rate(flow_id) == ref_engine.flow_rate(flow_id), (
                f"{context} flow={flow_id}"
            )
            assert inc_engine.flow_path(flow_id) == ref_engine.flow_path(flow_id), (
                f"{context} flow={flow_id}"
            )
        for link in self.topology.links:
            assert inc_engine.link_rate(*link.key) == ref_engine.link_rate(*link.key), (
                f"{context} link={link.key}"
            )


ACTIONS = (
    "add",
    "update",
    "update",
    "remove",
    "reenforce",
    "weight",
    "capacity",
    "react",
)


class TestDifferentialRandomized:
    """Seeded randomized sequences; jointly >= 250 mutation steps."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mutation_sequence(self, seed):
        driver = DualControllerDriver(seed)
        driver.check(context=f"seed={seed} initial")
        steps = 0
        while steps < 25:
            action = driver.rng.choice(ACTIONS)
            if not driver.apply(action):
                continue
            steps += 1
            driver.check(context=f"seed={seed} step={steps} action={action}")
        assert driver.steps_applied >= 25

    def test_plan_cache_actually_skips_work(self):
        """Across a steady churn most plans must be cache hits, not replans."""
        driver = DualControllerDriver(seed=42)
        added = 0
        while added < 4:
            if driver.apply("add"):
                added += 1
                driver.check()
        for step in range(8):
            driver.apply("reenforce" if step % 4 else "update")
            driver.check()
        counters = driver.incremental.reconciler.counters
        assert counters.plans_served == (
            counters.plan_cache_hits + counters.plans_recomputed
        )
        assert counters.plan_cache_hits > counters.plans_recomputed
        # The oracle never touches the plan-cache counters.
        ref = driver.oracle.reconciler.counters
        assert ref.plan_cache_hits == 0
        assert ref.fallbacks == 0
        # Churn accounting is mode-independent: both engines moved the same
        # lies over the same history.
        assert ref.lies_injected == counters.lies_injected
        assert ref.lies_retracted == counters.lies_retracted


class TestDifferentialHypothesis:
    """Hypothesis-driven action sequences on a smaller topology."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        actions=st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=6),
    )
    def test_any_action_sequence_matches_the_oracle(self, seed, actions):
        driver = DualControllerDriver(seed, num_routers=7, edge_probability=0.35)
        for index, action in enumerate(actions):
            if driver.apply(action):
                driver.check(context=f"seed={seed} step={index} action={action}")


class TestThresholdAndCounters:
    """The fallback knob and the no-op fast path, down to exact counts."""

    def build_requirement(self, driver):
        prefix = driver.topology.prefixes[0]
        requirement = driver._random_requirement(prefix)
        assert requirement is not None
        return requirement

    def test_noop_wave_is_all_plan_cache_hits(self):
        driver = DualControllerDriver(seed=7)
        while not driver.apply("add"):
            pass
        while not driver.apply("add"):
            pass
        driver.check()
        controller = driver.incremental
        counters = controller.reconciler.counters
        hits_before = counters.plan_cache_hits
        recomputed_before = counters.plans_recomputed
        messages_before = controller.stats.messages_sent
        count = len(driver.requirements)
        driver.apply("reenforce")
        driver.check(context="no-op wave")
        assert counters.plan_cache_hits == hits_before + count
        assert counters.plans_recomputed == recomputed_before
        assert controller.stats.messages_sent == messages_before
        # Every skipped plan keeps its installed lies.
        assert counters.lies_kept >= controller.active_lie_count()

    def test_zero_threshold_falls_back_and_stays_identical(self):
        driver = DualControllerDriver(seed=11, plan_dirty_threshold=0.0)
        applied = 0
        while applied < 6:
            if driver.apply(driver.rng.choice(("add", "update", "reenforce", "weight"))):
                applied += 1
                driver.check(context=f"threshold-0 step={applied}")
        counters = driver.incremental.reconciler.counters
        # Any dirty wave against prior state trips the threshold…
        assert counters.fallbacks > 0
        # …and a fallback wave re-plans everything, clean entries included.
        assert counters.plans_recomputed > 0

    def test_full_threshold_never_falls_back(self):
        driver = DualControllerDriver(seed=11, plan_dirty_threshold=1.0)
        applied = 0
        while applied < 6:
            if driver.apply(driver.rng.choice(("add", "update", "reenforce", "weight"))):
                applied += 1
                driver.check()
        assert driver.incremental.reconciler.counters.fallbacks == 0

    def test_topology_change_invalidates_clean_requirements(self):
        """A weight change moves the graph version: nothing may be skipped."""
        driver = DualControllerDriver(seed=3)
        while not driver.apply("add"):
            pass
        driver.check()
        counters = driver.incremental.reconciler.counters
        hits_before = counters.plan_cache_hits
        recomputed_before = counters.plans_recomputed
        assert driver.apply("weight")
        driver.check(context="after weight change")
        assert counters.plans_recomputed > recomputed_before
        assert counters.plan_cache_hits == hits_before

    def test_clear_prefix_drops_the_skip_bookkeeping(self):
        driver = DualControllerDriver(seed=5)
        while not driver.apply("add"):
            pass
        (prefix,) = list(driver.requirements)
        requirement = driver.requirements[prefix]
        driver.check()
        for controller in (driver.incremental, driver.oracle):
            controller.clear_prefix(prefix)
        driver.check(context="after clear")
        counters = driver.incremental.reconciler.counters
        recomputed_before = counters.plans_recomputed
        # Same requirement, same version — but the lies are gone, so the
        # reconciler must re-plan (a skip here would leave the prefix bare).
        for controller in (driver.incremental, driver.oracle):
            controller.enforce([requirement])
        driver.check(context="re-enforce after clear")
        assert counters.plans_recomputed > recomputed_before
        assert driver.incremental.active_lie_count(prefix) == driver.oracle.active_lie_count(prefix)


class TestReactCaching:
    """Whole-reaction reuse: LP solutions and merged weight maps."""

    def build(self, seed=19):
        driver = DualControllerDriver(seed=seed)
        # Demands near the link capacities (from non-announcing ingresses),
        # so the LP must spread traffic off the shortest paths and the
        # reaction actually installs lies (tiny demands would be pruned
        # down to an empty requirement set).
        matrix = TrafficMatrix()
        prefixes = driver.topology.prefixes
        for index in range(3):
            prefix = prefixes[index % len(prefixes)]
            announcers = {
                attachment.router
                for attachment in driver.topology.prefix_attachments(prefix)
            }
            ingress = next(
                router
                for router in driver.topology.routers[index:]
                if router not in announcers
            )
            matrix.add(ingress, prefix, (20.0 + 5.0 * index) * 1e6)
        driver.clients.matrix = matrix
        return driver

    def test_repeated_alarm_with_steady_demands_reuses_the_lp(self):
        driver = self.build()
        for balancer in driver.balancers.values():
            balancer.react(AlarmEvent(time=1.0, hot_links=()))
        driver.check(context="first reaction")
        counters = driver.incremental.reconciler.counters
        assert counters.opt_cache_hits == 0
        # The workload premise: the reaction did plan requirements.
        assert counters.plans_recomputed > 0
        for balancer in driver.balancers.values():
            balancer.react(AlarmEvent(time=2.0, hot_links=()))
        driver.check(context="second reaction")
        assert counters.opt_cache_hits == 1
        assert counters.merge_cache_hits > 0
        # An unchanged reaction is pure reuse: no plan was recomputed and
        # no lie moved on the wire.
        assert counters.plan_cache_hits > 0
        # The oracle-side balancer never got a plan cache.
        assert driver.oracle.reconciler.counters.opt_cache_hits == 0

    def test_capacity_event_invalidates_the_lp_reuse(self):
        """Capacities are invisible to the graph version; the cache must
        still notice them (via the capacity digest) or it would re-install
        a plan optimised for the old link sizes."""
        driver = self.build()
        for balancer in driver.balancers.values():
            balancer.react(AlarmEvent(time=1.0, hot_links=()))
        driver.check()
        assert driver.apply("capacity")
        counters = driver.incremental.reconciler.counters
        hits_before = counters.opt_cache_hits
        for balancer in driver.balancers.values():
            balancer.react(AlarmEvent(time=2.0, hot_links=()))
        driver.check(context="react after capacity event")
        assert counters.opt_cache_hits == hits_before

    def test_demand_change_invalidates_the_lp_reuse(self):
        driver = self.build()
        for balancer in driver.balancers.values():
            balancer.react(AlarmEvent(time=1.0, hot_links=()))
        driver.check()
        driver.clients.matrix = driver.clients.matrix.scaled(1.5)
        counters = driver.incremental.reconciler.counters
        hits_before = counters.opt_cache_hits
        for balancer in driver.balancers.values():
            balancer.react(AlarmEvent(time=2.0, hot_links=()))
        driver.check(context="react after demand change")
        assert counters.opt_cache_hits == hits_before
