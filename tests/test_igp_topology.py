"""Tests for repro.igp.topology."""

import pytest

from repro.igp.topology import Link, Topology
from repro.util.errors import TopologyError, ValidationError
from repro.util.prefixes import Prefix


def simple_topology() -> Topology:
    topo = Topology("simple")
    topo.add_routers(["X", "Y", "Z"])
    topo.add_link("X", "Y", weight=1)
    topo.add_link("Y", "Z", weight=2)
    return topo


class TestRouters:
    def test_add_and_lookup_router(self):
        topo = Topology()
        info = topo.add_router("A")
        assert topo.has_router("A")
        assert topo.router("A") is info
        assert info.router_id == 1

    def test_router_ids_are_unique_and_increasing(self):
        topo = Topology()
        first = topo.add_router("A")
        second = topo.add_router("B")
        assert second.router_id > first.router_id

    def test_explicit_router_id_respected(self):
        topo = Topology()
        info = topo.add_router("A", router_id=42)
        assert info.router_id == 42
        assert topo.add_router("B").router_id == 43

    def test_duplicate_router_rejected(self):
        topo = Topology()
        topo.add_router("A")
        with pytest.raises(TopologyError):
            topo.add_router("A")

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_router("")

    def test_unknown_router_lookup_raises(self):
        with pytest.raises(TopologyError):
            Topology().router("missing")

    def test_remove_router_drops_links_and_prefixes(self):
        topo = simple_topology()
        topo.attach_prefix("Y", "10.0.0.0/24")
        topo.remove_router("Y")
        assert not topo.has_router("Y")
        assert topo.num_links == 0
        assert topo.prefixes == []
        assert topo.neighbors("X") == []

    def test_contains_and_iteration(self):
        topo = simple_topology()
        assert "X" in topo
        assert list(topo) == ["X", "Y", "Z"]


class TestLinks:
    def test_add_link_creates_both_directions(self):
        topo = simple_topology()
        assert topo.has_link("X", "Y")
        assert topo.has_link("Y", "X")
        assert topo.num_links == 4

    def test_directed_link_is_one_way(self):
        topo = Topology()
        topo.add_routers(["A", "B"])
        topo.add_directed_link("A", "B", weight=3)
        assert topo.has_link("A", "B")
        assert not topo.has_link("B", "A")

    def test_asymmetric_weights(self):
        topo = Topology()
        topo.add_routers(["A", "B"])
        topo.add_link("A", "B", weight=1, reverse_weight=5)
        assert topo.link("A", "B").weight == 1
        assert topo.link("B", "A").weight == 5

    def test_link_to_unknown_router_rejected(self):
        topo = Topology()
        topo.add_router("A")
        with pytest.raises(TopologyError):
            topo.add_link("A", "ghost")

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_router("A")
        with pytest.raises(TopologyError):
            topo.add_directed_link("A", "A")

    def test_duplicate_link_rejected(self):
        topo = simple_topology()
        with pytest.raises(TopologyError):
            topo.add_link("X", "Y")

    def test_invalid_weight_rejected(self):
        topo = Topology()
        topo.add_routers(["A", "B"])
        with pytest.raises(ValidationError):
            topo.add_link("A", "B", weight=0)

    def test_neighbors_sorted(self):
        topo = simple_topology()
        assert topo.neighbors("Y") == ["X", "Z"]

    def test_remove_link_both_directions(self):
        topo = simple_topology()
        topo.remove_link("X", "Y")
        assert not topo.has_link("X", "Y")
        assert not topo.has_link("Y", "X")
        assert "Y" not in topo.neighbors("X")

    def test_remove_unknown_link_raises(self):
        topo = simple_topology()
        with pytest.raises(TopologyError):
            topo.remove_link("X", "Z")

    def test_set_weight_changes_both_directions(self):
        topo = simple_topology()
        topo.set_weight("X", "Y", 7)
        assert topo.link("X", "Y").weight == 7
        assert topo.link("Y", "X").weight == 7

    def test_set_weight_one_direction(self):
        topo = simple_topology()
        topo.set_weight("X", "Y", 7, both_directions=False)
        assert topo.link("X", "Y").weight == 7
        assert topo.link("Y", "X").weight == 1

    def test_undirected_links_deduplicated(self):
        topo = simple_topology()
        assert topo.undirected_links == [("X", "Y"), ("Y", "Z")]

    def test_link_reversed_helper(self):
        link = Link(source="A", target="B", weight=2, capacity=10, delay=0.1)
        back = link.reversed()
        assert back.source == "B" and back.target == "A"
        assert back.capacity == 10

    def test_total_capacity_sums_directed_links(self):
        topo = Topology()
        topo.add_routers(["A", "B"])
        topo.add_link("A", "B", capacity=100)
        assert topo.total_capacity() == 200


class TestPrefixes:
    def test_attach_and_list_prefix(self):
        topo = simple_topology()
        topo.attach_prefix("Z", "10.0.0.0/24", cost=5)
        assert topo.prefixes == [Prefix.parse("10.0.0.0/24")]
        attachment = topo.prefix_attachments("10.0.0.0/24")[0]
        assert attachment.router == "Z"
        assert attachment.cost == 5

    def test_attach_prefix_accepts_prefix_object(self):
        topo = simple_topology()
        prefix = Prefix.parse("10.0.0.0/24")
        topo.attach_prefix("X", prefix)
        assert topo.attachments_of("X")[0].prefix is prefix

    def test_prefix_on_unknown_router_rejected(self):
        topo = simple_topology()
        with pytest.raises(TopologyError):
            topo.attach_prefix("ghost", "10.0.0.0/24")

    def test_duplicate_attachment_rejected(self):
        topo = simple_topology()
        topo.attach_prefix("Z", "10.0.0.0/24")
        with pytest.raises(TopologyError):
            topo.attach_prefix("Z", "10.0.0.0/24")

    def test_multihomed_prefix_allowed(self):
        topo = simple_topology()
        topo.attach_prefix("X", "10.0.0.0/24")
        topo.attach_prefix("Z", "10.0.0.0/24")
        assert len(topo.prefix_attachments("10.0.0.0/24")) == 2

    def test_detach_prefix(self):
        topo = simple_topology()
        topo.attach_prefix("Z", "10.0.0.0/24")
        topo.detach_prefix("Z", "10.0.0.0/24")
        assert topo.prefixes == []

    def test_detach_missing_prefix_raises(self):
        topo = simple_topology()
        with pytest.raises(TopologyError):
            topo.detach_prefix("Z", "10.0.0.0/24")

    def test_unknown_prefix_lookup_raises(self):
        with pytest.raises(TopologyError):
            simple_topology().prefix_attachments("10.9.9.0/24")


class TestWholeTopology:
    def test_copy_is_deep(self):
        topo = simple_topology()
        topo.attach_prefix("Z", "10.0.0.0/24")
        clone = topo.copy()
        clone.set_weight("X", "Y", 9)
        clone.detach_prefix("Z", "10.0.0.0/24")
        assert topo.link("X", "Y").weight == 1
        assert topo.prefixes == [Prefix.parse("10.0.0.0/24")]

    def test_connectivity_detection(self):
        topo = simple_topology()
        assert topo.is_connected()
        topo.add_router("lonely")
        assert not topo.is_connected()

    def test_validate_passes_on_consistent_topology(self, demo_topology):
        demo_topology.validate()

    def test_demo_topology_shape(self, demo_topology):
        assert demo_topology.num_routers == 7
        assert ("A", "B") in [link.key for link in demo_topology.links]
        assert demo_topology.link("A", "R1").weight == 2
        assert demo_topology.link("B", "R2").weight == 1
