"""Tests for the streaming service, QoE aggregation and flash-crowd schedules."""

import pytest

from repro.dataplane.engine import DataPlaneEngine
from repro.igp.network import compute_static_fibs
from repro.monitoring.notifications import ClientRegistry, NotificationBus
from repro.topologies.demo import BLUE_PREFIX, build_demo_scenario, build_demo_topology, demo_lies
from repro.util.errors import SimulationError, ValidationError
from repro.util.prefixes import Prefix
from repro.util.timeline import Timeline
from repro.util.units import mbps
from repro.video.catalog import Video, VideoCatalog
from repro.video.flashcrowd import ArrivalEvent, apply_schedule, demo_schedule, poisson_arrivals
from repro.video.qoe import aggregate_qoe, session_qoe
from repro.video.server import StreamingService, VideoServer


def make_service(fibs=None, capacity=None):
    topology = build_demo_topology() if capacity is None else build_demo_topology(capacity)
    if fibs is None:
        fibs = compute_static_fibs(topology)
    timeline = Timeline()
    engine = DataPlaneEngine(topology, lambda: fibs, timeline, sample_interval=1.0)
    engine.start()
    bus = NotificationBus()
    service = StreamingService(engine, bus=bus)
    catalog = VideoCatalog([Video(title="clip", bitrate=mbps(1), duration=20.0)])
    service.add_server(VideoServer(name="S1", ingress="B", catalog=catalog))
    service.add_server(VideoServer(name="S2", ingress="A", catalog=catalog))
    return topology, timeline, engine, bus, service


class TestStreamingService:
    def test_start_session_creates_flow_and_notification(self):
        _, _, engine, bus, service = make_service()
        session = service.start_session("S1", "clip", BLUE_PREFIX)
        assert session.flow_id in engine.flows
        assert len(bus.published) == 1
        assert bus.published[0].delta == 1
        assert bus.published[0].ingress == "B"

    def test_unknown_server_rejected(self):
        _, _, _, _, service = make_service()
        with pytest.raises(SimulationError):
            service.start_session("S9", "clip", BLUE_PREFIX)

    def test_duplicate_server_rejected(self):
        _, _, _, _, service = make_service()
        with pytest.raises(SimulationError):
            service.add_server(VideoServer(name="S1", ingress="B", catalog=VideoCatalog.default()))

    def test_server_on_unknown_router_rejected(self):
        _, _, _, _, service = make_service()
        with pytest.raises(SimulationError):
            service.add_server(VideoServer(name="S3", ingress="ghost", catalog=VideoCatalog.default()))

    def test_session_finishes_when_video_ends(self):
        _, timeline, engine, bus, service = make_service()
        session = service.start_session("S1", "clip", BLUE_PREFIX)
        timeline.run_until(40.0)
        assert session.client.finished
        assert session.closed
        assert session.flow_id not in engine.flows
        # A departure notification was published at completion.
        assert bus.published[-1].delta == -1

    def test_end_session_manually(self):
        _, _, engine, _, service = make_service()
        session = service.start_session("S1", "clip", BLUE_PREFIX)
        service.end_session(session.session_id)
        assert session.flow_id not in engine.flows
        with pytest.raises(SimulationError):
            service.end_session(session.session_id)

    def test_sessions_listing(self):
        _, timeline, _, _, service = make_service()
        service.start_session("S1", "clip", BLUE_PREFIX)
        service.start_session("S2", "clip", BLUE_PREFIX)
        assert len(service.active_sessions) == 2
        timeline.run_until(40.0)
        assert len(service.active_sessions) == 0
        assert len(service.finished_sessions) == 2
        assert len(service.all_sessions) == 2
        assert len(service.clients()) == 2

    def test_uncongested_playback_is_smooth(self):
        _, timeline, _, _, service = make_service()
        for _ in range(5):
            service.start_session("S1", "clip", BLUE_PREFIX)
        timeline.run_until(45.0)
        report = aggregate_qoe(service.clients())
        assert report.all_smooth
        assert report.completed_sessions == 5

    def test_congested_playback_stalls_without_fibbing(self):
        _, timeline, _, _, service = make_service()
        for _ in range(40):  # 40 Mbit/s demand through a 32 Mbit/s link
            service.start_session("S1", "clip", BLUE_PREFIX)
        timeline.run_until(60.0)
        report = aggregate_qoe(service.clients())
        assert report.stalled_sessions > 0
        assert report.mean_rebuffer_ratio > 0.05

    def test_fibbing_fibs_keep_same_load_smooth(self):
        topology = build_demo_topology()
        fibs = compute_static_fibs(topology, demo_lies())
        _, timeline, _, _, service = make_service(fibs=fibs)
        for _ in range(40):
            service.start_session("S1", "clip", BLUE_PREFIX)
        timeline.run_until(60.0)
        report = aggregate_qoe(service.clients())
        # Spread over B-R2 and B-R3, 40 Mbit/s fits comfortably.
        assert report.stalled_sessions <= 2

    def test_client_registry_follows_session_lifecycle(self):
        _, timeline, _, bus, service = make_service()
        registry = ClientRegistry()
        registry.attach(bus)
        service.start_session("S1", "clip", BLUE_PREFIX)
        assert registry.total_clients() == 1
        timeline.run_until(40.0)
        assert registry.total_clients() == 0


class TestQoeAggregation:
    def test_aggregate_requires_sessions(self):
        with pytest.raises(ValidationError):
            aggregate_qoe([])

    def test_session_qoe_fields(self):
        _, timeline, _, _, service = make_service()
        session = service.start_session("S1", "clip", BLUE_PREFIX)
        timeline.run_until(40.0)
        qoe = session_qoe(session.client)
        assert qoe.completed
        assert qoe.smooth
        assert qoe.rebuffer_ratio == 0.0

    def test_report_summary_mentions_sessions(self):
        _, timeline, _, _, service = make_service()
        service.start_session("S1", "clip", BLUE_PREFIX)
        timeline.run_until(40.0)
        report = aggregate_qoe(service.clients())
        assert "1 sessions" in report.summary()
        assert report.smooth_fraction == 1.0


class TestSchedules:
    def test_demo_schedule_matches_paper(self):
        schedule = demo_schedule(build_demo_scenario())
        assert [(event.time, event.server, event.count) for event in schedule] == [
            (0.0, "S1", 1),
            (15.0, "S1", 30),
            (35.0, "S2", 31),
        ]

    def test_apply_schedule_starts_sessions_at_the_right_times(self):
        _, timeline, _, _, service = make_service()
        schedule = [
            ArrivalEvent(time=1.0, server="S1", count=2, video_title="clip"),
            ArrivalEvent(time=5.0, server="S2", count=3, video_title="clip"),
        ]
        total = apply_schedule(service, timeline, schedule, BLUE_PREFIX)
        assert total == 5
        timeline.run_until(2.0)
        assert len(service.active_sessions) == 2
        timeline.run_until(6.0)
        assert len(service.active_sessions) == 5

    def test_poisson_arrivals_deterministic_and_bounded(self):
        first = poisson_arrivals("S1", rate_per_second=2.0, start=10.0, duration=20.0, seed=3)
        second = poisson_arrivals("S1", rate_per_second=2.0, start=10.0, duration=20.0, seed=3)
        assert [event.time for event in first] == [event.time for event in second]
        assert all(10.0 <= event.time < 30.0 for event in first)
        assert len(first) > 10  # expectation is 40 arrivals

    def test_arrival_event_validation(self):
        with pytest.raises(ValidationError):
            ArrivalEvent(time=-1.0, server="S1", count=1)
        with pytest.raises(ValidationError):
            ArrivalEvent(time=0.0, server="S1", count=0)
