"""Tests for the fault-injection harness and the degraded monitoring path."""

import random

import pytest

from repro.core.chaos import (
    FaultCounters,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    build_link_churn,
)
from repro.dataplane.engine import DataPlaneEngine
from repro.igp.network import IgpNetwork, compute_static_fibs
from repro.monitoring.alarms import UtilizationAlarm
from repro.monitoring.collector import LoadCollector
from repro.monitoring.counters import build_agents, collect_counters
from repro.monitoring.poller import PollSample, SnmpPoller
from repro.topologies.demo import build_demo_topology
from repro.util.errors import MonitoringError, ValidationError
from repro.util.timeline import Timeline


@pytest.fixture
def live_network():
    network = IgpNetwork(build_demo_topology())
    network.start()
    network.converge()
    return network


@pytest.fixture
def monitored_engine():
    topology = build_demo_topology()
    fibs = compute_static_fibs(topology)
    timeline = Timeline()
    engine = DataPlaneEngine(topology, lambda: fibs, timeline, sample_interval=1.0)
    engine.start()
    return topology, timeline, engine


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            FaultEvent(time=1.0, kind="meteor_strike")

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            FaultEvent(time=-1.0, kind="controller_crash")

    def test_link_events_need_both_endpoints(self):
        with pytest.raises(ValidationError):
            FaultEvent(time=1.0, kind="link_down", first="A")
        with pytest.raises(ValidationError):
            FaultEvent(time=1.0, kind="link_up", second="B")

    def test_controller_events_take_no_endpoints(self):
        with pytest.raises(ValidationError):
            FaultEvent(time=1.0, kind="controller_crash", first="A", second="B")


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValidationError):
            FaultPlan(lsa_loss_rate=1.5)
        with pytest.raises(ValidationError):
            FaultPlan(poll_timeout_rate=-0.1)
        with pytest.raises(ValidationError):
            FaultPlan(poll_max_retries=-1)

    def test_empty_plan_is_the_degenerate_point(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(events=(FaultEvent(time=1.0, kind="controller_crash"),)).is_empty
        assert not FaultPlan(lsa_loss_rate=0.1).is_empty
        assert not FaultPlan(poll_timeout_rate=0.1).is_empty

    def test_seeded_streams_are_independent_and_deterministic(self):
        plan = FaultPlan(seed=7)
        # Same seed, same stream — and the two knobs draw from *different*
        # streams, so toggling one never shifts the other's outcomes.
        assert plan.loss_rng().random() == FaultPlan(seed=7).loss_rng().random()
        assert plan.timeout_rng().random() == FaultPlan(seed=7).timeout_rng().random()
        assert plan.loss_rng().random() != plan.timeout_rng().random()
        assert plan.loss_rng().random() != FaultPlan(seed=8).loss_rng().random()


class TestBuildLinkChurn:
    def test_generates_down_up_pairs_with_hold(self):
        topology = build_demo_topology()
        events = build_link_churn(
            topology, random.Random(0), count=3, start=5.0, spacing=10.0, hold=4.0
        )
        assert len(events) == 6
        for index in range(3):
            down, up = events[2 * index], events[2 * index + 1]
            assert down.kind == "link_down" and up.kind == "link_up"
            assert (down.first, down.second) == (up.first, up.second)
            assert down.time == 5.0 + index * 10.0
            assert up.time == down.time + 4.0

    def test_same_seed_same_schedule(self):
        topology = build_demo_topology()
        build = lambda seed: build_link_churn(
            topology, random.Random(seed), count=5, start=1.0, spacing=3.0, hold=1.0
        )
        assert build(3) == build(3)
        assert build(3) != build(4)

    def test_excluded_routers_are_never_churned(self):
        topology = build_demo_topology()
        events = build_link_churn(
            topology,
            random.Random(0),
            count=20,
            start=0.0,
            spacing=1.0,
            hold=0.5,
            exclude_routers=("A", "B"),
        )
        touched = {event.first for event in events} | {event.second for event in events}
        assert "A" not in touched and "B" not in touched

    def test_churn_never_partitions_the_domain(self, live_network):
        events = build_link_churn(
            live_network.topology,
            random.Random(1),
            count=6,
            start=1.0,
            spacing=2.0,
            hold=1.0,
        )
        injector = FaultInjector(live_network, FaultPlan(events=tuple(events)))
        injector.start()
        live_network.converge()
        # Every episode executed (no partition, no TopologyError) and the
        # final topology is back to full strength.
        assert injector.counters.link_downs == 6
        assert injector.counters.link_ups == 6
        assert len(live_network.topology.links) == len(build_demo_topology().links)

    def test_hold_must_stay_below_spacing(self):
        topology = build_demo_topology()
        with pytest.raises(ValidationError):
            build_link_churn(
                topology, random.Random(0), count=1, start=0.0, spacing=2.0, hold=2.0
            )

    def test_zero_count_is_empty(self):
        topology = build_demo_topology()
        assert (
            build_link_churn(
                topology, random.Random(0), count=0, start=0.0, spacing=1.0, hold=0.5
            )
            == []
        )


class TestFaultInjector:
    def test_link_events_execute_and_count(self, live_network):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind="link_down", first="R1", second="R4"),
                FaultEvent(time=2.0, kind="link_up", first="R1", second="R4"),
            )
        )
        injector = FaultInjector(live_network, plan)
        injector.start()
        live_network.run_until(1.5)
        assert not live_network.topology.has_link("R1", "R4")
        assert injector.counters.link_downs == 1
        live_network.converge()
        assert live_network.topology.has_link("R1", "R4")
        assert injector.counters.link_ups == 1

    def test_controller_events_require_a_controller(self, live_network):
        plan = FaultPlan(events=(FaultEvent(time=1.0, kind="controller_crash"),))
        with pytest.raises(ValidationError):
            FaultInjector(live_network, plan)

    def test_poll_timeouts_require_a_poller(self, live_network):
        with pytest.raises(ValidationError):
            FaultInjector(live_network, FaultPlan(poll_timeout_rate=0.5))

    def test_past_events_rejected_at_start(self, live_network):
        live_network.run_until(live_network.timeline.now + 5.0)
        plan = FaultPlan(
            events=(FaultEvent(time=1.0, kind="link_down", first="R1", second="R4"),)
        )
        with pytest.raises(ValidationError):
            FaultInjector(live_network, plan).start()

    def test_counters_surface_through_the_network(self, live_network):
        plan = FaultPlan(
            events=(FaultEvent(time=1.0, kind="link_down", first="R1", second="R4"),)
        )
        injector = FaultInjector(live_network, plan)
        injector.start()
        live_network.converge()
        assert live_network.fault_stats["fault_link_downs"] == 1
        assert live_network.spf_stats["fault_link_downs"] == 1
        per_router = collect_counters(live_network)
        assert per_router["faults"]["fault_link_downs"] == 1
        assert per_router["total"]["fault_link_downs"] == 1

    def test_clean_network_reports_zero_fault_counters(self, live_network):
        snapshot = live_network.fault_stats
        assert set(snapshot) == set(FaultCounters().snapshot())
        assert all(value == 0 for value in snapshot.values())

    def test_lsa_loss_is_seed_deterministic(self):
        def dropped(seed):
            network = IgpNetwork(build_demo_topology())
            injector = FaultInjector(
                network, FaultPlan(lsa_loss_rate=0.3, seed=seed)
            )
            injector.start()
            network.start()
            network.converge()
            assert network.flooding_stats["messages_dropped"] == (
                injector.counters.lsas_dropped
            )
            return injector.counters.lsas_dropped

        assert dropped(0) > 0
        assert dropped(0) == dropped(0)
        assert dropped(0) != dropped(5)

    def test_zero_loss_rate_draws_nothing(self, live_network):
        injector = FaultInjector(live_network, FaultPlan(lsa_loss_rate=0.0))
        injector.start()
        assert live_network.fabric.loss_rate == 0.0
        assert live_network.fabric.loss_rng is None

    def test_start_is_idempotent(self, live_network):
        plan = FaultPlan(
            events=(FaultEvent(time=1.0, kind="link_down", first="R1", second="R4"),)
        )
        injector = FaultInjector(live_network, plan)
        injector.start()
        injector.start()
        live_network.converge()
        assert injector.counters.link_downs == 1


class _ScriptedRng:
    """Deterministic stand-in for random.Random: returns scripted draws."""

    def __init__(self, draws):
        self._draws = list(draws)

    def random(self):
        return self._draws.pop(0) if self._draws else 1.0


class TestPollerTimeouts:
    def _poller(self, monitored_engine, **kwargs):
        topology, timeline, engine = monitored_engine
        poller = SnmpPoller(build_agents(topology, engine), timeline, poll_interval=1.0)
        if kwargs:
            poller.set_timeouts(**kwargs)
        return timeline, poller

    def test_set_timeouts_validation(self, monitored_engine):
        _, poller = self._poller(monitored_engine)
        with pytest.raises(MonitoringError):
            poller.set_timeouts(1.5, random.Random(0))
        with pytest.raises(MonitoringError):
            poller.set_timeouts(0.5)  # no RNG
        with pytest.raises(MonitoringError):
            poller.set_timeouts(0.5, random.Random(0), max_retries=-1)

    def test_timeout_then_retry_recovers_with_backoff(self, monitored_engine):
        timeline, poller = self._poller(
            monitored_engine, rate=0.5, rng=_ScriptedRng([0.0, 1.0]), retry_backoff=0.1
        )
        poller.start()
        timeline.run_until(2.0)
        # First attempt at t=1.0 timed out; the retry fired 0.1 s later and
        # succeeded, so the round's sample lands at t=1.1.
        assert poller.poll_timeouts == 1
        assert poller.poll_omissions == 0
        assert poller.samples[0].time == pytest.approx(1.1)

    def test_backoff_doubles_per_retry(self, monitored_engine):
        timeline, poller = self._poller(
            monitored_engine,
            rate=0.5,
            rng=_ScriptedRng([0.0, 0.0, 1.0]),
            max_retries=2,
            retry_backoff=0.1,
        )
        poller.start()
        timeline.run_until(2.0)
        # Retries at +0.1 and then +0.2: the sample lands at t=1.3.
        assert poller.poll_timeouts == 2
        assert poller.samples[0].time == pytest.approx(1.3)

    def test_omission_extends_the_next_sample_interval(self, monitored_engine):
        timeline, poller = self._poller(
            monitored_engine,
            rate=0.5,
            rng=_ScriptedRng([0.0, 0.0, 0.0, 1.0]),
            max_retries=2,
            retry_backoff=0.1,
        )
        poller.start()
        timeline.run_until(3.0)
        # Round one (all three attempts timed out) produced no sample; the
        # baseline survived, so round two's sample covers the whole gap.
        assert poller.poll_omissions == 1
        assert poller.poll_timeouts == 3
        assert len(poller.samples) == 1
        assert poller.samples[0].interval == pytest.approx(poller.samples[0].time)

    def test_all_rounds_omitted_produces_no_samples(self, monitored_engine):
        timeline, poller = self._poller(
            monitored_engine, rate=1.0, rng=random.Random(0), max_retries=1
        )
        poller.start()
        timeline.run_until(4.0)
        assert poller.samples == []
        assert poller.poll_omissions >= 2
        assert poller.poll_timeouts == 2 * poller.poll_omissions


class TestAlarmStaleness:
    def _alarm(self, monitored_engine, horizon):
        topology, _, _ = monitored_engine
        collector = LoadCollector(topology, alpha=1.0)
        return collector, UtilizationAlarm(
            collector, raise_threshold=0.5, staleness_horizon=horizon
        )

    def _hot_sample(self, topology, time, interval):
        link = topology.links[0]
        return PollSample(
            time=time, interval=interval, rates={link.key: link.capacity}
        )

    def test_stale_sample_is_suppressed(self, monitored_engine):
        topology, _, _ = monitored_engine
        collector, alarm = self._alarm(monitored_engine, horizon=2.0)
        sample = self._hot_sample(topology, time=10.0, interval=5.0)
        collector.ingest(sample)
        assert alarm.check(sample) is None
        assert alarm.suppressed_stale == 1
        assert alarm.events == []

    def test_fresh_sample_still_fires(self, monitored_engine):
        topology, _, _ = monitored_engine
        collector, alarm = self._alarm(monitored_engine, horizon=2.0)
        sample = self._hot_sample(topology, time=10.0, interval=1.0)
        collector.ingest(sample)
        assert alarm.check(sample) is not None
        assert alarm.suppressed_stale == 0

    def test_no_horizon_never_suppresses(self, monitored_engine):
        topology, _, _ = monitored_engine
        collector, alarm = self._alarm(monitored_engine, horizon=None)
        sample = self._hot_sample(topology, time=10.0, interval=100.0)
        collector.ingest(sample)
        assert alarm.check(sample) is not None

    def test_negative_horizon_rejected(self, monitored_engine):
        with pytest.raises(ValidationError):
            self._alarm(monitored_engine, horizon=-1.0)
