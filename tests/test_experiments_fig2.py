"""Integration tests for the Fig. 2 experiment harness (full closed loop).

These are the heaviest tests of the suite (each runs the complete simulated
demo); they assert the qualitative shape the paper reports rather than exact
byte counts.
"""

import pytest

from repro.experiments.fig2 import reaction_times, run_demo_timeseries


@pytest.fixture(scope="module")
def with_controller():
    return run_demo_timeseries(with_controller=True)


@pytest.fixture(scope="module")
def without_controller():
    return run_demo_timeseries(with_controller=False)


class TestControllerBehaviour:
    def test_exactly_the_paper_lie_set_is_installed(self, with_controller):
        assert with_controller.lies_active == 3
        assert with_controller.controller_messages == 3

    def test_two_reactions_in_order(self, with_controller):
        actions = with_controller.actions
        assert len(actions) == 2
        assert actions[0].lies_injected == 1  # ECMP at B after the first surge
        assert actions[1].lies_injected == 2  # uneven split at A after the second
        assert actions[0].time < actions[1].time

    def test_first_reaction_happens_between_the_surges(self, with_controller):
        first_action = with_controller.actions[0].time - with_controller.epoch
        assert 15.0 < first_action < 35.0

    def test_second_reaction_happens_after_t35(self, with_controller):
        second_action = with_controller.actions[1].time - with_controller.epoch
        assert 35.0 < second_action < 45.0

    def test_alarms_precede_actions(self, with_controller):
        assert len(with_controller.alarms) >= 2
        assert with_controller.alarms[0].time <= with_controller.actions[0].time

    def test_reaction_times_are_short(self, with_controller):
        times = reaction_times(with_controller, threshold=0.95)
        assert times
        assert all(t <= 5.0 for t in times)

    def test_sessions_match_schedule(self, with_controller):
        assert with_controller.sessions_started == 62


class TestThroughputSeries:
    def test_paths_activate_in_the_paper_order(self, with_controller):
        """B-R2 first, then B-R3 (after ~t=18), then A-R1 (after ~t=35)."""

        def first_active(source, target, threshold=1e5):
            for time, value in with_controller.series_of(source, target):
                if value > threshold:
                    return time
            return float("inf")

        t_b_r2 = first_active("B", "R2")
        t_b_r3 = first_active("B", "R3")
        t_a_r1 = first_active("A", "R1")
        assert t_b_r2 < t_b_r3 < t_a_r1
        assert t_b_r3 > 15.0
        assert t_a_r1 > 35.0

    def test_final_throughputs_are_balanced(self, with_controller):
        final_a_r1 = with_controller.final_throughput("A", "R1")
        final_b_r2 = with_controller.final_throughput("B", "R2")
        final_b_r3 = with_controller.final_throughput("B", "R3")
        # All three links carry a significant share and none is saturated
        # (capacity is 4e6 byte/s).
        for value in [final_a_r1, final_b_r2, final_b_r3]:
            assert 1e6 < value < 4e6
        # Together they carry most of the 62 Mbit/s ~ 7.75 MB/s of video.
        assert final_a_r1 + final_b_r2 + final_b_r3 > 5.5e6

    def test_no_link_stays_saturated_with_the_controller(self, with_controller):
        # After the last reaction settles, sampled utilisation stays below 0.95.
        settle = with_controller.actions[-1].time - with_controller.epoch + 3.0
        late = [value for time, value in with_controller.max_utilization_series if time >= settle]
        assert late
        assert max(late) < 0.95

    def test_monitored_series_cover_the_whole_run(self, with_controller):
        series = with_controller.series_of("B", "R2")
        assert series[0][0] <= 2.0
        assert series[-1][0] >= with_controller.duration - 2.0


class TestSmoothVersusStutter:
    def test_with_controller_playback_is_smooth(self, with_controller):
        assert with_controller.qoe.all_smooth
        assert with_controller.qoe.total_stall_time == 0.0

    def test_without_controller_playback_stutters(self, without_controller):
        assert without_controller.qoe.stalled_sessions > 30
        assert without_controller.qoe.mean_rebuffer_ratio > 0.15

    def test_without_controller_no_lies_and_no_actions(self, without_controller):
        assert without_controller.lies_active == 0
        assert without_controller.actions == []

    def test_without_controller_alternate_paths_stay_idle(self, without_controller):
        assert without_controller.final_throughput("A", "R1") == 0.0
        assert without_controller.final_throughput("B", "R3") == 0.0

    def test_controller_strictly_improves_qoe(self, with_controller, without_controller):
        assert (
            with_controller.qoe.smooth_fraction
            > without_controller.qoe.smooth_fraction
        )
        assert (
            with_controller.qoe.mean_rebuffer_ratio
            < without_controller.qoe.mean_rebuffer_ratio
        )
