"""Golden regression tests: the experiments must reproduce the seed numbers.

The JSON snapshots under ``tests/golden/`` were captured from the original
(pre-incremental-SPF) engine.  These tests rerun the Fig. 1 experiment and
the optimality-gap study and require bit-for-bit identical numbers, so any
engine refactor that silently changes routing behaviour is caught here
rather than in a benchmark eyeball.  Regenerate with
``PYTHONPATH=src python tests/golden/generate.py`` only when a change is
*meant* to move these numbers.
"""

import json
import pathlib

import pytest

from repro.experiments.fig1 import fig1_rib_digests, run_fig1
from repro.experiments.optimality import run_optimality_study
from repro.igp.graph import ComputationGraph
from repro.igp.rib import rib_digest
from repro.igp.rib_cache import RibCache
from repro.topologies.demo import build_demo_scenario, demo_lies

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def load_golden(name):
    return json.loads((GOLDEN_DIR / name).read_text())


class TestFig1Golden:
    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("fig1_loads.json")

    @pytest.mark.parametrize(
        "key,kwargs",
        [
            ("baseline", dict(with_fibbing=False)),
            ("paper_lies", dict(with_fibbing=True)),
            (
                "controller_pipeline",
                dict(with_fibbing=True, use_controller_pipeline=True),
            ),
        ],
    )
    def test_link_load_vectors_are_bit_identical(self, golden, key, kwargs):
        expected = golden[key]
        result = run_fig1(**kwargs)
        assert result.label == expected["label"]
        assert result.lie_count == expected["lie_count"]
        assert result.max_load == expected["max_load"]
        assert result.split_at_a == expected["split_at_a"]
        assert result.split_at_b == expected["split_at_b"]
        actual_loads = {
            f"{source}->{target}": load
            for (source, target), load in result.link_loads.items()
        }
        assert actual_loads == expected["link_loads"]


class TestFig1RibGolden:
    """Route-level snapshots: two different RIBs can induce the same link
    loads, so the fig1 scenario's per-router RIB digests are pinned too."""

    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("fig1_ribs.json")

    @pytest.mark.parametrize("key,with_fibbing", [("baseline", False), ("paper_lies", True)])
    def test_rib_digests_are_bit_identical(self, golden, key, with_fibbing):
        assert fig1_rib_digests(with_fibbing=with_fibbing) == golden[key]

    def test_incremental_repair_reproduces_the_digests(self, golden):
        """The lie injection repaired through the RibCache must land on the
        exact same routes as the from-scratch golden state."""
        scenario = build_demo_scenario()
        cache = RibCache()
        graph = cache.observe(ComputationGraph.from_topology(scenario.topology))
        routers = scenario.topology.routers
        assert {r: rib_digest(cache.rib(graph, r)) for r in routers} == golden["baseline"]
        lied = cache.observe(
            ComputationGraph.from_topology(scenario.topology, demo_lies())
        )
        assert {r: rib_digest(cache.rib(lied, r)) for r in routers} == golden["paper_lies"]
        assert cache.counters.incremental_updates + cache.counters.hits > 0
        assert cache.counters.full_recomputes == len(routers)


class TestOptimalityGolden:
    def test_gap_numbers_are_bit_identical(self):
        expected = load_golden("optimality_gaps.json")["rows"]
        rows = run_optimality_study(seeds=(0, 1, 2), num_routers=10, destinations=3)
        assert len(rows) == len(expected)
        for row, want in zip(rows, expected):
            assert row.seed == want["seed"]
            assert row.scheme == want["scheme"]
            assert row.max_utilization == want["max_utilization"]
            assert row.optimal_utilization == want["optimal_utilization"]
            assert row.gap == want["gap"]
            assert row.delivery_fraction == want["delivery_fraction"]
            assert row.control_state == want["control_state"]
