"""Golden regression tests: the experiments must reproduce the seed numbers.

The JSON snapshots under ``tests/golden/`` were captured from the original
(pre-incremental-SPF) engine.  These tests rerun the Fig. 1 experiment and
the optimality-gap study and require bit-for-bit identical numbers, so any
engine refactor that silently changes routing behaviour is caught here
rather than in a benchmark eyeball.  Regenerate with
``PYTHONPATH=src python tests/golden/generate.py`` only when a change is
*meant* to move these numbers.
"""

import json
import pathlib

import pytest

from repro.experiments.fig1 import fig1_lie_digests, fig1_rib_digests, run_fig1
from repro.experiments.optimality import run_optimality_study
from repro.igp.graph import ComputationGraph
from repro.igp.rib import rib_digest
from repro.igp.rib_cache import RibCache
from repro.topologies.demo import build_demo_scenario, demo_lies

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def load_golden(name):
    return json.loads((GOLDEN_DIR / name).read_text())


class TestFig1Golden:
    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("fig1_loads.json")

    @pytest.mark.parametrize(
        "key,kwargs",
        [
            ("baseline", dict(with_fibbing=False)),
            ("paper_lies", dict(with_fibbing=True)),
            (
                "controller_pipeline",
                dict(with_fibbing=True, use_controller_pipeline=True),
            ),
        ],
    )
    def test_link_load_vectors_are_bit_identical(self, golden, key, kwargs):
        expected = golden[key]
        result = run_fig1(**kwargs)
        assert result.label == expected["label"]
        assert result.lie_count == expected["lie_count"]
        assert result.max_load == expected["max_load"]
        assert result.split_at_a == expected["split_at_a"]
        assert result.split_at_b == expected["split_at_b"]
        actual_loads = {
            f"{source}->{target}": load
            for (source, target), load in result.link_loads.items()
        }
        assert actual_loads == expected["link_loads"]


class TestFig1RibGolden:
    """Route-level snapshots: two different RIBs can induce the same link
    loads, so the fig1 scenario's per-router RIB digests are pinned too."""

    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("fig1_ribs.json")

    @pytest.mark.parametrize("key,with_fibbing", [("baseline", False), ("paper_lies", True)])
    def test_rib_digests_are_bit_identical(self, golden, key, with_fibbing):
        assert fig1_rib_digests(with_fibbing=with_fibbing) == golden[key]

    def test_incremental_repair_reproduces_the_digests(self, golden):
        """The lie injection repaired through the RibCache must land on the
        exact same routes as the from-scratch golden state."""
        scenario = build_demo_scenario()
        cache = RibCache()
        graph = cache.observe(ComputationGraph.from_topology(scenario.topology))
        routers = scenario.topology.routers
        assert {r: rib_digest(cache.rib(graph, r)) for r in routers} == golden["baseline"]
        lied = cache.observe(
            ComputationGraph.from_topology(scenario.topology, demo_lies())
        )
        assert {r: rib_digest(cache.rib(lied, r)) for r in routers} == golden["paper_lies"]
        assert cache.counters.incremental_updates + cache.counters.hits > 0
        assert cache.counters.full_recomputes == len(routers)


class TestFig2Golden:
    """Dynamic-experiment snapshots: the monitored-link throughput series
    (what Fig. 2 plots) and the final per-link SNMP byte counters, pinned
    bit-for-bit.  This is the guard rail of the incremental data plane: the
    path cache and the warm-start allocator must reproduce the from-scratch
    engine's traffic exactly, event by event, over the whole demo run."""

    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("fig2_samples.json")

    @pytest.mark.parametrize(
        "key,with_controller",
        [("with_controller", True), ("no_controller", False)],
    )
    def test_link_samples_and_counters_are_bit_identical(
        self, golden, key, with_controller
    ):
        from repro.experiments.fig2 import run_demo_timeseries

        expected = golden[key]
        result = run_demo_timeseries(with_controller=with_controller, duration=60.0)
        assert result.sessions_started == expected["sessions_started"]
        actual_series = {
            f"{source}->{target}": [list(point) for point in series]
            for (source, target), series in result.throughput_series.items()
        }
        expected_series = {
            link: [list(point) for point in series]
            for link, series in expected["throughput_series"].items()
        }
        assert actual_series == expected_series
        actual_counters = {
            f"{source}->{target}": value
            for (source, target), value in result.link_counters.items()
        }
        assert actual_counters == expected["link_counters"]
        assert [list(point) for point in result.max_utilization_series] == [
            list(point) for point in expected["max_utilization_series"]
        ]
        # The incremental engine must actually have been exercised: the demo
        # run reuses cached paths across its FIB/arrival churn.
        assert result.dataplane_stats["dp_flows_reused"] > 0

    def test_cache_disabled_run_matches_the_same_golden(self, golden):
        """``dataplane_incremental=False`` is the from-scratch oracle: the
        same run without any caching must land on the same numbers."""
        from repro.experiments.fig2 import run_demo_timeseries

        expected = golden["with_controller"]
        result = run_demo_timeseries(
            with_controller=True, duration=60.0, dataplane_incremental=False
        )
        actual_counters = {
            f"{source}->{target}": value
            for (source, target), value in result.link_counters.items()
        }
        assert actual_counters == expected["link_counters"]
        assert result.dataplane_stats["dp_flows_reused"] == 0
        assert result.dataplane_stats["dp_alloc_warm_starts"] == 0


class TestFlashCrowdClassesGolden:
    """Aggregate-data-plane snapshots: the class-level QoE report and the
    final link byte counters of the 62,000-session scaled flash crowd,
    pinned bit-for-bit.  This is the guard rail of the aggregate-demand
    engine: demand classes, population DAG walks, byte cohorts and the
    count-weighted water-filling kernel must together reproduce the exact
    numbers session-level simulation would."""

    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("flashcrowd_classes_qoe.json")

    @pytest.mark.parametrize(
        "key,with_controller",
        [("with_controller", True), ("no_controller", False)],
    )
    def test_qoe_and_counters_are_bit_identical(self, golden, key, with_controller):
        from repro.experiments.flashcrowd_classes import run_flashcrowd_classes

        expected = golden[key]
        result = run_flashcrowd_classes(
            sessions=62_000, with_controller=with_controller, duration=60.0
        )
        assert result.sessions == expected["sessions"]
        assert result.scale == expected["scale"]
        qoe = result.qoe
        for field_name, value in expected["qoe"].items():
            assert getattr(qoe, field_name) == value, field_name
        assert result.peak_utilization == expected["peak_utilization"]
        assert result.alarms == expected["alarms"]
        assert result.actions == expected["actions"]
        assert result.lies_active == expected["lies_active"]
        actual_counters = {
            f"{source}->{target}": value
            for (source, target), value in result.demo.link_counters.items()
        }
        assert actual_counters == expected["link_counters"]
        # The aggregate machinery was actually exercised: classes walked as
        # populations, and the per-event cost stayed class-level.
        assert result.dataplane_stats["dp_classes_rewalked"] > 0
        assert result.sessions >= 62_000

    def test_numpy_kernel_reproduces_the_same_golden(self, golden):
        """The vectorized water-filling kernel is not allowed to move a
        single bit of the QoE report or the byte counters."""
        pytest.importorskip("numpy")
        from repro.experiments.flashcrowd_classes import run_flashcrowd_classes

        expected = golden["with_controller"]
        result = run_flashcrowd_classes(
            sessions=62_000, with_controller=True, duration=60.0,
            dataplane_kernel="numpy",
        )
        for field_name, value in expected["qoe"].items():
            assert getattr(result.qoe, field_name) == value, field_name
        actual_counters = {
            f"{source}->{target}": value
            for (source, target), value in result.demo.link_counters.items()
        }
        assert actual_counters == expected["link_counters"]


class TestLieSetGolden:
    """Installed-lie snapshots: per-prefix digests of the FakeNodeLsa sets
    the controller pipeline programs (fake-node names included), for both
    the static Fig. 1 enforcement and the dynamic Fig. 2 run.  Three
    engines must land on each digest: the plan-cache reconciler, the
    ``incremental=False`` clear-and-replay oracle, and the sharded facade
    (any shard count) — the controller-layer mirror of the RIB/data-plane
    dual-engine guard rails."""

    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("fig1_lies.json")

    @pytest.mark.parametrize("incremental", [True, False])
    def test_fig1_pipeline_digests_are_bit_identical(self, golden, incremental):
        assert (
            fig1_lie_digests(incremental=incremental)
            == golden["fig1_controller_pipeline"]
        )

    @pytest.mark.parametrize("incremental", [True, False])
    def test_fig2_final_lie_digests_are_bit_identical(self, golden, incremental):
        from repro.experiments.fig2 import run_demo_timeseries

        result = run_demo_timeseries(
            with_controller=True, duration=60.0, controller_incremental=incremental
        )
        assert result.lie_digests == golden["fig2_final"]
        # The run must actually have exercised the reconciler's accounting:
        # every installed lie was injected (and counted) by it.
        assert result.controller_stats["ctl_lies_injected"] >= result.lies_active
        if incremental:
            # The demo manages a single prefix, so a reaction that changes
            # its requirement dirties 100% of the wave — at most one
            # fallback per reaction, never more.
            assert result.controller_stats["ctl_fallbacks"] <= len(result.actions)
        else:
            # The oracle never consults the plan cache.
            assert result.controller_stats["ctl_plan_cache_hits"] == 0
            assert result.controller_stats["ctl_fallbacks"] == 0

    @pytest.mark.parametrize("shards", [2, 3])
    def test_fig1_sharded_digests_are_bit_identical(self, golden, shards):
        digests = fig1_lie_digests(shards=shards)
        assert digests == golden["fig1_sharded_pipeline"]
        # The shard-equivalence guarantee, pinned at the golden layer too:
        # sharding must not move a single digest byte.
        assert golden["fig1_sharded_pipeline"] == golden["fig1_controller_pipeline"]

    def test_fig2_sharded_final_lie_digests_are_bit_identical(self, golden):
        from repro.experiments.fig2 import run_demo_timeseries

        result = run_demo_timeseries(
            with_controller=True, duration=60.0, controller_shards=3
        )
        assert result.lie_digests == golden["fig2_sharded_final"]
        assert golden["fig2_sharded_final"] == golden["fig2_final"]
        # The facade's wave accounting rode along the run.
        assert result.controller_stats["shard_dirty"] > 0


class TestReactionCurvesGolden:
    """Asynchronous control-loop snapshots: the seeded A7 reaction sweep
    (poll interval x reaction latency x SPF hold-down), pinned bit-for-bit —
    alarm-to-cool curves, per-action control-plane latencies and the
    ``ctl_*`` convergence bookkeeping.  This is the guard rail of the
    discrete-event timing layer: a refactor that shifts when reactions
    execute, how shard waves are staggered, or how convergence time is
    charged must fail here loudly."""

    def test_reaction_rows_are_bit_identical(self):
        from dataclasses import asdict

        from repro.experiments.reaction import run_reaction_curves

        expected = load_golden("reaction_curves.json")["rows"]
        rows = run_reaction_curves(
            seed=0,
            poll_intervals=(0.5, 1.0, 2.0),
            reaction_latencies=(0.0, 0.5),
            spf_delays=(0.05, 0.2),
            duration=40.0,
        )
        assert len(rows) == len(expected)
        for row, want in zip(rows, expected):
            assert asdict(row) == want
        # The curves must actually carry the timing signal: a non-zero
        # reaction latency shows up in the per-action delays, and a longer
        # SPF hold-down accumulates more convergence time.
        by_knobs = {
            (row.poll_interval, row.reaction_latency, row.spf_delay): row
            for row in rows
        }
        assert by_knobs[(0.5, 0.5, 0.05)].mean_action_latency == 0.5
        assert by_knobs[(0.5, 0.0, 0.05)].mean_action_latency == 0.0
        assert (
            by_knobs[(0.5, 0.0, 0.2)].converge_seconds
            > by_knobs[(0.5, 0.0, 0.05)].converge_seconds
        )


class TestChaosRecoveryGolden:
    """Chaos resilience snapshots: the seeded A8 fault grid, pinned
    bit-for-bit — the clean baseline, the unrecovered crash and the
    crash-plus-resync variants, including the ``fault_*`` chaos accounting,
    the ``ctl_resync*`` recovery bookkeeping and the final lie digests
    (fake-node names included).  A drift of the fault injector's seeded
    streams, the LSDB resync, or the degraded monitoring path fails here."""

    def test_chaos_rows_are_bit_identical(self):
        from dataclasses import asdict

        from repro.experiments.chaos import run_chaos_resilience

        expected = load_golden("chaos_recovery.json")["rows"]
        rows = run_chaos_resilience(
            seed=0,
            duration=60.0,
            link_churn=2,
            lsa_loss_rate=0.02,
            poll_timeout_rate=0.1,
            staleness_horizon=5.0,
        )
        assert len(rows) == len(expected)
        for row, want in zip(rows, expected):
            assert asdict(row) == want
        # The rows must actually carry the robustness signal: the crash
        # variant loses QoE the recovery variant restores, and the recovery
        # run resynced from the LSDB instead of replanning from scratch.
        by_variant = {row.variant: row for row in rows}
        assert by_variant["clean"].total_stall_time == 0.0
        assert by_variant["crash"].total_stall_time > 0.0
        assert by_variant["crash"].reactions_abandoned > 0
        assert by_variant["recovery"].resyncs == 1
        assert by_variant["recovery"].resync_lies_recovered > 0
        assert (
            by_variant["recovery"].total_stall_time
            < by_variant["crash"].total_stall_time
        )
        # The clean variant ends with the same lies as the plain Fig. 2 run.
        assert by_variant["clean"].lie_digest == by_variant["recovery"].lie_digest


class TestOptimalityGolden:
    def test_gap_numbers_are_bit_identical(self):
        expected = load_golden("optimality_gaps.json")["rows"]
        rows = run_optimality_study(seeds=(0, 1, 2), num_routers=10, destinations=3)
        assert len(rows) == len(expected)
        for row, want in zip(rows, expected):
            assert row.seed == want["seed"]
            assert row.scheme == want["scheme"]
            assert row.max_utilization == want["max_utilization"]
            assert row.optimal_utilization == want["optimal_utilization"]
            assert row.gap == want["gap"]
            assert row.delivery_fraction == want["delivery_fraction"]
            assert row.control_state == want["control_state"]
