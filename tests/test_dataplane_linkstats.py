"""Tests for repro.dataplane.linkstats."""

import pytest

from repro.dataplane.linkstats import LinkLoads, LinkUtilization
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.util.errors import ValidationError


class TestLinkLoads:
    def test_add_and_read(self):
        loads = LinkLoads()
        loads.add("A", "B", 10.0)
        loads.add("A", "B", 5.0)
        assert loads.load("A", "B") == 15.0
        assert loads.load("B", "A") == 0.0

    def test_per_prefix_breakdown(self):
        loads = LinkLoads()
        loads.add("A", "B", 10.0, prefix=BLUE_PREFIX)
        loads.add("A", "B", 4.0)
        assert loads.per_prefix("A", "B") == {BLUE_PREFIX: 10.0}

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            LinkLoads().add("A", "B", -1.0)

    def test_links_listing_excludes_zero(self):
        loads = LinkLoads()
        loads.add("A", "B", 0.0)
        loads.add("B", "C", 3.0)
        assert loads.links() == [("B", "C")]

    def test_total_and_len(self):
        loads = LinkLoads()
        loads.add("A", "B", 1.0)
        loads.add("B", "C", 2.0)
        assert loads.total() == 3.0
        assert len(loads) == 2

    def test_merge_combines_loads(self):
        first = LinkLoads()
        first.add("A", "B", 1.0, prefix=BLUE_PREFIX)
        second = LinkLoads()
        second.add("A", "B", 2.0)
        second.add("B", "C", 5.0)
        merged = first.merge(second)
        assert merged.load("A", "B") == 3.0
        assert merged.load("B", "C") == 5.0
        # Originals are untouched.
        assert first.load("A", "B") == 1.0

    def test_iteration_sorted(self):
        loads = LinkLoads()
        loads.add("B", "C", 1.0)
        loads.add("A", "B", 1.0)
        assert [key for key, _ in loads] == [("A", "B"), ("B", "C")]


class TestUtilization:
    def test_utilization_against_demo_capacities(self):
        topology = build_demo_topology(capacity=100.0)
        loads = LinkLoads()
        loads.add("B", "R2", 50.0)
        view = loads.utilization_of(topology, "B", "R2")
        assert view.utilization == pytest.approx(0.5)
        assert not view.overloaded

    def test_overloaded_link_detected(self):
        topology = build_demo_topology(capacity=100.0)
        loads = LinkLoads()
        loads.add("B", "R2", 150.0)
        assert loads.utilization_of(topology, "B", "R2").overloaded
        hot = loads.overloaded_links(topology)
        assert [view.link for view in hot] == [("B", "R2")]

    def test_max_utilization(self):
        topology = build_demo_topology(capacity=100.0)
        loads = LinkLoads()
        loads.add("B", "R2", 80.0)
        loads.add("A", "B", 20.0)
        assert loads.max_utilization(topology) == pytest.approx(0.8)

    def test_max_utilization_empty_is_zero(self):
        assert LinkLoads().max_utilization(build_demo_topology()) == 0.0

    def test_utilizations_cover_every_directed_link(self):
        topology = build_demo_topology()
        views = LinkLoads().utilizations(topology)
        assert len(views) == topology.num_links

    def test_unknown_link_raises(self):
        from repro.util.errors import TopologyError

        with pytest.raises(TopologyError):
            LinkLoads().utilization_of(build_demo_topology(), "A", "C")

    def test_zero_capacity_guard(self):
        view = LinkUtilization(link=("A", "B"), load=10.0, capacity=0.0)
        assert view.utilization == 0.0
