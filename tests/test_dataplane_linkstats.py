"""Tests for repro.dataplane.linkstats."""

import pytest

from repro.dataplane.linkstats import LinkLoads, LinkUtilization
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology
from repro.util.errors import ValidationError


class TestLinkLoads:
    def test_add_and_read(self):
        loads = LinkLoads()
        loads.add("A", "B", 10.0)
        loads.add("A", "B", 5.0)
        assert loads.load("A", "B") == 15.0
        assert loads.load("B", "A") == 0.0

    def test_per_prefix_breakdown(self):
        loads = LinkLoads()
        loads.add("A", "B", 10.0, prefix=BLUE_PREFIX)
        loads.add("A", "B", 4.0)
        assert loads.per_prefix("A", "B") == {BLUE_PREFIX: 10.0}

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            LinkLoads().add("A", "B", -1.0)

    def test_links_listing_excludes_zero(self):
        loads = LinkLoads()
        loads.add("A", "B", 0.0)
        loads.add("B", "C", 3.0)
        assert loads.links() == [("B", "C")]

    def test_total_and_len(self):
        loads = LinkLoads()
        loads.add("A", "B", 1.0)
        loads.add("B", "C", 2.0)
        assert loads.total() == 3.0
        assert len(loads) == 2

    def test_merge_combines_loads(self):
        first = LinkLoads()
        first.add("A", "B", 1.0, prefix=BLUE_PREFIX)
        second = LinkLoads()
        second.add("A", "B", 2.0)
        second.add("B", "C", 5.0)
        merged = first.merge(second)
        assert merged.load("A", "B") == 3.0
        assert merged.load("B", "C") == 5.0
        # Originals are untouched.
        assert first.load("A", "B") == 1.0

    def test_iteration_sorted(self):
        loads = LinkLoads()
        loads.add("B", "C", 1.0)
        loads.add("A", "B", 1.0)
        assert [key for key, _ in loads] == [("A", "B"), ("B", "C")]


class TestUtilization:
    def test_utilization_against_demo_capacities(self):
        topology = build_demo_topology(capacity=100.0)
        loads = LinkLoads()
        loads.add("B", "R2", 50.0)
        view = loads.utilization_of(topology, "B", "R2")
        assert view.utilization == pytest.approx(0.5)
        assert not view.overloaded

    def test_overloaded_link_detected(self):
        topology = build_demo_topology(capacity=100.0)
        loads = LinkLoads()
        loads.add("B", "R2", 150.0)
        assert loads.utilization_of(topology, "B", "R2").overloaded
        hot = loads.overloaded_links(topology)
        assert [view.link for view in hot] == [("B", "R2")]

    def test_max_utilization(self):
        topology = build_demo_topology(capacity=100.0)
        loads = LinkLoads()
        loads.add("B", "R2", 80.0)
        loads.add("A", "B", 20.0)
        assert loads.max_utilization(topology) == pytest.approx(0.8)

    def test_max_utilization_empty_is_zero(self):
        assert LinkLoads().max_utilization(build_demo_topology()) == 0.0

    def test_utilizations_cover_every_directed_link(self):
        topology = build_demo_topology()
        views = LinkLoads().utilizations(topology)
        assert len(views) == topology.num_links

    def test_unknown_link_raises(self):
        from repro.util.errors import TopologyError

        with pytest.raises(TopologyError):
            LinkLoads().utilization_of(build_demo_topology(), "A", "C")

    def test_zero_capacity_guard(self):
        view = LinkUtilization(link=("A", "B"), load=10.0, capacity=0.0)
        assert view.utilization == 0.0


class TestMergeBookkeeping:
    """Merge regression: the old merge added link totals through ``add``
    but spliced ``_per_prefix`` behind its back, so the two views could
    drift apart.  Everything now routes through ``add`` — after any chain
    of merges, the per-prefix breakdown plus the unattributed residual must
    reconstruct each link's total exactly."""

    def _random_loads(self, rng, prefixes):
        loads = LinkLoads()
        routers = ["A", "B", "R1", "R2", "R3"]
        for _ in range(rng.randint(1, 8)):
            source, target = rng.sample(routers, 2)
            prefix = rng.choice(prefixes + [None])
            loads.add(source, target, rng.uniform(0.0, 5.0) * 1e6, prefix=prefix)
        return loads

    def test_breakdown_reconstructs_totals_after_merges(self):
        import random

        from repro.util.prefixes import Prefix

        prefixes = [BLUE_PREFIX, Prefix.parse("10.9.0.0/16")]
        rng = random.Random(99)
        for round_index in range(20):
            merged = self._random_loads(rng, prefixes)
            for _ in range(rng.randint(1, 3)):
                merged = merged.merge(self._random_loads(rng, prefixes))
            for source, target in merged.links():
                breakdown = merged.per_prefix(source, target)
                attributed = sum(breakdown.values())
                load = merged.load(source, target)
                assert attributed <= load + 1e-6, (round_index, source, target)
                assert attributed == pytest.approx(
                    load, rel=1e-12
                ) or attributed < load, (round_index, source, target)

    def test_fully_attributed_merge_sums_to_load(self):
        first = LinkLoads()
        first.add("A", "B", 1.25, prefix=BLUE_PREFIX)
        second = LinkLoads()
        second.add("A", "B", 2.5, prefix=BLUE_PREFIX)
        merged = first.merge(second)
        assert sum(merged.per_prefix("A", "B").values()) == merged.load("A", "B")

    def test_merge_preserves_unattributed_residual(self):
        first = LinkLoads()
        first.add("A", "B", 3.0, prefix=BLUE_PREFIX)
        first.add("A", "B", 2.0)  # background load, no prefix
        merged = first.merge(LinkLoads())
        assert merged.load("A", "B") == 5.0
        assert merged.per_prefix("A", "B") == {BLUE_PREFIX: 3.0}

    def test_merge_chain_is_associative_on_totals(self):
        parts = []
        for rate in (1.5, 2.25, 4.125):
            loads = LinkLoads()
            loads.add("A", "B", rate, prefix=BLUE_PREFIX)
            parts.append(loads)
        left = parts[0].merge(parts[1]).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        assert left.load("A", "B") == right.load("A", "B")
        assert left.per_prefix("A", "B") == right.per_prefix("A", "B")
