"""Tests for repro.igp.lsdb."""

import pytest

from repro.igp.lsa import PrefixLsa, RouterLsa
from repro.igp.lsdb import LinkStateDatabase
from repro.util.prefixes import Prefix

PREFIX = Prefix.parse("10.0.0.0/24")


class TestInstall:
    def test_fresh_lsa_changes_database(self):
        lsdb = LinkStateDatabase("A")
        assert lsdb.install(RouterLsa(origin="A", links=(("B", 1.0),)))
        assert len(lsdb) == 1

    def test_duplicate_sequence_is_ignored(self):
        lsdb = LinkStateDatabase("A")
        lsa = RouterLsa(origin="A", links=(("B", 1.0),))
        assert lsdb.install(lsa)
        assert not lsdb.install(lsa)

    def test_older_sequence_is_ignored(self):
        lsdb = LinkStateDatabase("A")
        newer = RouterLsa(origin="A", links=(("B", 1.0),), sequence=5)
        older = RouterLsa(origin="A", links=(("C", 1.0),), sequence=3)
        lsdb.install(newer)
        assert not lsdb.install(older)
        assert lsdb.get(newer.key).sequence == 5

    def test_newer_sequence_replaces(self):
        lsdb = LinkStateDatabase("A")
        lsdb.install(RouterLsa(origin="A", links=(("B", 1.0),), sequence=1))
        assert lsdb.install(RouterLsa(origin="A", links=(("C", 1.0),), sequence=2))
        assert lsdb.get(RouterLsa(origin="A").key).links == (("C", 1.0),)

    def test_version_increments_on_change_only(self):
        lsdb = LinkStateDatabase("A")
        lsa = RouterLsa(origin="A", links=(("B", 1.0),))
        lsdb.install(lsa)
        version = lsdb.version
        lsdb.install(lsa)
        assert lsdb.version == version

    def test_distinct_origins_coexist(self):
        lsdb = LinkStateDatabase("A")
        lsdb.install(RouterLsa(origin="A", links=()))
        lsdb.install(RouterLsa(origin="B", links=()))
        assert len(lsdb) == 2


class TestWithdrawal:
    def test_withdrawn_lsa_removed_from_live_view(self):
        lsdb = LinkStateDatabase("A")
        lsa = PrefixLsa(origin="C", prefix=PREFIX)
        lsdb.install(lsa)
        lsdb.install(lsa.withdraw())
        assert lsdb.live_lsas() == []
        assert len(lsdb.all_lsas()) == 1

    def test_withdrawal_blocks_stale_reinstall(self):
        lsdb = LinkStateDatabase("A")
        lsa = PrefixLsa(origin="C", prefix=PREFIX, sequence=1)
        lsdb.install(lsa.withdraw())  # sequence 2, withdrawn
        assert not lsdb.install(lsa)  # stale sequence 1 arrives late
        assert lsdb.live_lsas() == []

    def test_reorigination_after_withdrawal(self):
        lsdb = LinkStateDatabase("A")
        lsa = PrefixLsa(origin="C", prefix=PREFIX, sequence=1)
        lsdb.install(lsa)
        withdrawn = lsa.withdraw()
        lsdb.install(withdrawn)
        refreshed = withdrawn.refresh()
        assert lsdb.install(refreshed)
        assert len(lsdb.live_lsas()) == 1


class TestGraphView:
    def test_graph_reflects_live_lsas(self):
        lsdb = LinkStateDatabase("A")
        lsdb.install(RouterLsa(origin="A", links=(("B", 1.0),)))
        lsdb.install(RouterLsa(origin="B", links=(("A", 1.0),)))
        lsdb.install(PrefixLsa(origin="B", prefix=PREFIX))
        graph = lsdb.graph()
        assert graph.edge_cost("A", "B") == 1.0
        assert graph.announcers(PREFIX) == {"B": 0.0}

    def test_contains_and_iter(self):
        lsdb = LinkStateDatabase("A")
        lsa = RouterLsa(origin="A", links=())
        lsdb.install(lsa)
        assert lsa.key in lsdb
        assert list(lsdb) == [lsa]
