"""Tests for the event-driven IGP network (flooding, router processes, convergence)."""

import pytest

from repro.igp.convergence import ConvergenceTracker
from repro.igp.network import IgpNetwork, compute_static_fibs
from repro.igp.router import RouterTimers
from repro.igp.spf_cache import SpfCache
from repro.igp.topology import Topology
from repro.monitoring.counters import collect_spf_counters
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.util.errors import TopologyError
from repro.util.timeline import Timeline


@pytest.fixture
def converged_network():
    network = IgpNetwork(build_demo_topology())
    network.start()
    network.converge()
    return network


class TestStartupConvergence:
    def test_every_router_installs_a_fib(self, converged_network):
        for router in converged_network.topology.routers:
            assert converged_network.fib_of(router) is not None
        assert converged_network.converged()

    def test_fib_before_convergence_raises(self):
        network = IgpNetwork(build_demo_topology())
        with pytest.raises(TopologyError):
            network.fib_of("A")

    def test_converged_fibs_match_static_computation(self, converged_network):
        static = compute_static_fibs(converged_network.topology)
        for router in converged_network.topology.routers:
            live = converged_network.fib_of(router)
            expected = static[router]
            for prefix in expected.prefixes:
                assert live.split_ratios(prefix) == expected.split_ratios(prefix)

    def test_convergence_takes_positive_simulated_time(self):
        network = IgpNetwork(build_demo_topology())
        network.start()
        duration = network.converge()
        assert duration > 0

    def test_start_is_idempotent(self, converged_network):
        stats_before = converged_network.flooding_stats
        converged_network.start()
        converged_network.converge()
        assert converged_network.flooding_stats == stats_before

    def test_flooding_stats_counters(self, converged_network):
        stats = converged_network.flooding_stats
        assert stats["messages_sent"] > 0
        assert stats["bytes_sent"] > 0
        assert stats["deliveries"] > 0
        assert stats["duplicates_suppressed"] > 0

    def test_spf_batching_limits_runs(self, converged_network):
        # Each router must have run SPF far fewer times than the number of
        # LSAs it received (the spf_delay hold-down batches them).
        for process in converged_network.routers.values():
            assert process.spf_runs < len(process.lsdb)


class TestLieInjection:
    def test_injected_lies_reach_every_router(self, converged_network):
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        fib_a = converged_network.fib_of("A")
        fib_b = converged_network.fib_of("B")
        assert fib_a.split_ratios(BLUE_PREFIX) == {
            "B": pytest.approx(1 / 3),
            "R1": pytest.approx(2 / 3),
        }
        assert fib_b.split_ratios(BLUE_PREFIX) == {"R2": 0.5, "R3": 0.5}

    def test_withdrawing_lies_restores_baseline(self, converged_network):
        lies = demo_lies()
        converged_network.inject(lies, at_router="R3")
        converged_network.converge()
        converged_network.inject([lie.withdraw() for lie in lies], at_router="R3")
        converged_network.converge()
        assert converged_network.fib_of("A").split_ratios(BLUE_PREFIX) == {"B": 1.0}
        assert converged_network.fib_of("B").split_ratios(BLUE_PREFIX) == {"R2": 1.0}

    def test_injection_at_unknown_router_rejected(self, converged_network):
        with pytest.raises(TopologyError):
            converged_network.inject(demo_lies(), at_router="ghost")

    def test_fib_change_listener_fires(self, converged_network):
        changed = []
        converged_network.on_fib_change(lambda router, fib: changed.append(router))
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        assert "A" in changed and "B" in changed


class TestConvergenceTracker:
    def test_episode_measures_duration_and_routers(self, converged_network):
        tracker = ConvergenceTracker(converged_network)
        tracker.start_episode("inject-lies")
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        episode = tracker.close_episode()
        assert episode.duration > 0
        assert set(episode.routers_updated) == set(converged_network.topology.routers)
        assert tracker.durations()["inject-lies"] == episode.duration

    def test_closing_without_episode_raises(self, converged_network):
        tracker = ConvergenceTracker(converged_network)
        from repro.util.errors import SimulationError

        with pytest.raises(SimulationError):
            tracker.close_episode()


class TestSpfCacheInvalidation:
    """The versioned SPF caches must bump on every event and never go stale."""

    def graph_versions(self, network):
        return {name: process.graph_version for name, process in network.routers.items()}

    def test_graph_version_bumps_on_inject(self, converged_network):
        before = self.graph_versions(converged_network)
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        after = self.graph_versions(converged_network)
        for router, version in after.items():
            assert version > before[router], router

    def test_graph_version_bumps_on_fail_link(self, converged_network):
        before = self.graph_versions(converged_network)
        converged_network.fail_link("R1", "R4")
        converged_network.converge()
        after = self.graph_versions(converged_network)
        for router, version in after.items():
            assert version > before[router], router

    def test_graph_version_bumps_on_change_weight(self, converged_network):
        before = self.graph_versions(converged_network)
        converged_network.change_weight("A", "B", 7)
        converged_network.converge()
        after = self.graph_versions(converged_network)
        for router, version in after.items():
            assert version > before[router], router

    def test_no_stale_fibs_after_event_sequence(self, converged_network):
        """Cached SPF state must never leak into the FIBs after any event."""
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        converged_network.change_weight("A", "R1", 5)
        converged_network.converge()
        converged_network.fail_link("B", "R2")
        converged_network.converge()
        oracle = compute_static_fibs(converged_network.topology, demo_lies())
        for router in converged_network.topology.routers:
            live = converged_network.fib_of(router)
            expected = oracle[router]
            assert set(live.prefixes) == set(expected.prefixes), router
            for prefix in expected.prefixes:
                assert live.split_ratios(prefix) == expected.split_ratios(prefix), (
                    router,
                    prefix,
                )

    def test_lie_injection_is_repaired_incrementally(self, converged_network):
        full_before = converged_network.spf_stats["spf_full_recomputes"]
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        stats = converged_network.spf_stats
        # Adding fake nodes only grows the graph: no router needed a full rerun.
        assert stats["spf_full_recomputes"] == full_before
        assert stats["spf_incremental_updates"] >= len(converged_network.routers)

    def test_spf_counters_reconcile_with_runs_and_flooding(self, converged_network):
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        converged_network.change_weight("A", "B", 9)
        converged_network.converge()
        stats = converged_network.spf_stats
        lookups = (
            stats["spf_cache_hits"]
            + stats["spf_incremental_updates"]
            + stats["spf_full_recomputes"]
            + stats["spf_fallbacks"]
        )
        total_runs = sum(p.spf_runs for p in converged_network.routers.values())
        # Every SPF trigger is served by at most one cache lookup, and SPF
        # triggers only come from effective LSDB changes, which in turn only
        # come from delivered (non-duplicate) floods or self-origination.
        assert 0 < lookups <= total_runs
        flooding = converged_network.flooding_stats
        lsdb_changes = sum(len(p.lsdb) for p in converged_network.routers.values())
        assert flooding["deliveries"] >= lookups - lsdb_changes

    def test_monitoring_view_matches_network_aggregate(self, converged_network):
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        per_router = collect_spf_counters(converged_network)
        aggregate = converged_network.spf_stats
        assert per_router["total"] == aggregate
        # The per-layer aggregates are exactly their slice of spf_stats.
        assert per_router["dataplane"] == converged_network.dataplane_stats
        assert per_router["controller"] == {
            **converged_network.controller_stats,
            **converged_network.shard_stats,
        }
        assert converged_network.controller_stats.items() <= aggregate.items()
        assert converged_network.shard_stats.items() <= aggregate.items()
        for key, value in aggregate.items():
            # Router entries carry the spf_*/rib_* keys, the "dataplane"
            # entry the dp_* keys; .get() lets one sum span both layers.
            assert value == sum(
                counters.get(key, 0)
                for name, counters in per_router.items()
                if name != "total"
            )

    def test_refresh_without_graph_change_is_a_pure_hit(self, converged_network):
        router = converged_network.routers["A"]
        hits_before = router.spf_cache.counters.hits
        fib_version_before = router.fib_version
        # Re-originating the same router LSA (sequence bump, same content)
        # must not recompute or reinstall anything.
        router.originate([converged_network._router_lsa("A")])
        converged_network.converge()
        assert router.spf_cache.counters.hits > hits_before
        assert router.fib_version == fib_version_before

    def test_static_cache_serves_fib_set_without_recompute(self):
        topology = build_demo_topology()
        cache = SpfCache()
        first = compute_static_fibs(topology, cache=cache)
        full_after_first = cache.counters.full_recomputes
        second = compute_static_fibs(topology, cache=cache)
        assert cache.counters.fib_cache_hits == 1
        assert cache.counters.full_recomputes == full_after_first
        for router in topology.routers:
            for prefix in first[router].prefixes:
                assert first[router].split_ratios(prefix) == second[router].split_ratios(prefix)

    def test_static_cache_never_serves_stale_results(self):
        topology = build_demo_topology()
        cache = SpfCache()
        compute_static_fibs(topology, cache=cache)
        topology.set_weight("A", "B", 50)
        cached = compute_static_fibs(topology, cache=cache)
        fresh = compute_static_fibs(topology)
        for router in topology.routers:
            for prefix in fresh[router].prefixes:
                assert cached[router].split_ratios(prefix) == fresh[router].split_ratios(prefix)


class TestStaticComputation:
    def test_static_fibs_cover_all_routers(self):
        topology = build_demo_topology()
        fibs = compute_static_fibs(topology)
        assert set(fibs) == set(topology.routers)

    def test_static_fibs_with_lies_match_paper(self):
        fibs = compute_static_fibs(build_demo_topology(), demo_lies())
        assert fibs["A"].split_ratios(BLUE_PREFIX)["R1"] == pytest.approx(2 / 3)

    def test_shared_timeline_can_be_supplied(self):
        timeline = Timeline()
        network = IgpNetwork(build_demo_topology(), timeline=timeline)
        network.start()
        network.converge()
        assert timeline.now > 0

    def test_custom_router_timers_slow_convergence(self):
        fast = IgpNetwork(build_demo_topology(), timers=RouterTimers(spf_delay=0.01, fib_delay=0.01))
        slow = IgpNetwork(build_demo_topology(), timers=RouterTimers(spf_delay=0.5, fib_delay=0.5))
        fast.start()
        slow.start()
        assert slow.converge() > fast.converge()

    def test_disconnected_topology_still_converges(self):
        topology = Topology("split")
        topology.add_routers(["A", "B", "C"])
        topology.add_link("A", "B")
        topology.attach_prefix("C", "10.0.0.0/24")
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        # A has no route to the isolated prefix.
        assert not network.fib_of("A").has_entry(BLUE_PREFIX)
