"""Tests for the event-driven IGP network (flooding, router processes, convergence)."""

import pytest

from repro.igp.convergence import ConvergenceTracker
from repro.igp.network import IgpNetwork, compute_static_fibs
from repro.igp.router import RouterTimers
from repro.igp.topology import Topology
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.util.errors import TopologyError
from repro.util.timeline import Timeline


@pytest.fixture
def converged_network():
    network = IgpNetwork(build_demo_topology())
    network.start()
    network.converge()
    return network


class TestStartupConvergence:
    def test_every_router_installs_a_fib(self, converged_network):
        for router in converged_network.topology.routers:
            assert converged_network.fib_of(router) is not None
        assert converged_network.converged()

    def test_fib_before_convergence_raises(self):
        network = IgpNetwork(build_demo_topology())
        with pytest.raises(TopologyError):
            network.fib_of("A")

    def test_converged_fibs_match_static_computation(self, converged_network):
        static = compute_static_fibs(converged_network.topology)
        for router in converged_network.topology.routers:
            live = converged_network.fib_of(router)
            expected = static[router]
            for prefix in expected.prefixes:
                assert live.split_ratios(prefix) == expected.split_ratios(prefix)

    def test_convergence_takes_positive_simulated_time(self):
        network = IgpNetwork(build_demo_topology())
        network.start()
        duration = network.converge()
        assert duration > 0

    def test_start_is_idempotent(self, converged_network):
        stats_before = converged_network.flooding_stats
        converged_network.start()
        converged_network.converge()
        assert converged_network.flooding_stats == stats_before

    def test_flooding_stats_counters(self, converged_network):
        stats = converged_network.flooding_stats
        assert stats["messages_sent"] > 0
        assert stats["bytes_sent"] > 0
        assert stats["deliveries"] > 0
        assert stats["duplicates_suppressed"] > 0

    def test_spf_batching_limits_runs(self, converged_network):
        # Each router must have run SPF far fewer times than the number of
        # LSAs it received (the spf_delay hold-down batches them).
        for process in converged_network.routers.values():
            assert process.spf_runs < len(process.lsdb)


class TestLieInjection:
    def test_injected_lies_reach_every_router(self, converged_network):
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        fib_a = converged_network.fib_of("A")
        fib_b = converged_network.fib_of("B")
        assert fib_a.split_ratios(BLUE_PREFIX) == {
            "B": pytest.approx(1 / 3),
            "R1": pytest.approx(2 / 3),
        }
        assert fib_b.split_ratios(BLUE_PREFIX) == {"R2": 0.5, "R3": 0.5}

    def test_withdrawing_lies_restores_baseline(self, converged_network):
        lies = demo_lies()
        converged_network.inject(lies, at_router="R3")
        converged_network.converge()
        converged_network.inject([lie.withdraw() for lie in lies], at_router="R3")
        converged_network.converge()
        assert converged_network.fib_of("A").split_ratios(BLUE_PREFIX) == {"B": 1.0}
        assert converged_network.fib_of("B").split_ratios(BLUE_PREFIX) == {"R2": 1.0}

    def test_injection_at_unknown_router_rejected(self, converged_network):
        with pytest.raises(TopologyError):
            converged_network.inject(demo_lies(), at_router="ghost")

    def test_fib_change_listener_fires(self, converged_network):
        changed = []
        converged_network.on_fib_change(lambda router, fib: changed.append(router))
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        assert "A" in changed and "B" in changed


class TestConvergenceTracker:
    def test_episode_measures_duration_and_routers(self, converged_network):
        tracker = ConvergenceTracker(converged_network)
        tracker.start_episode("inject-lies")
        converged_network.inject(demo_lies(), at_router="R3")
        converged_network.converge()
        episode = tracker.close_episode()
        assert episode.duration > 0
        assert set(episode.routers_updated) == set(converged_network.topology.routers)
        assert tracker.durations()["inject-lies"] == episode.duration

    def test_closing_without_episode_raises(self, converged_network):
        tracker = ConvergenceTracker(converged_network)
        from repro.util.errors import SimulationError

        with pytest.raises(SimulationError):
            tracker.close_episode()


class TestStaticComputation:
    def test_static_fibs_cover_all_routers(self):
        topology = build_demo_topology()
        fibs = compute_static_fibs(topology)
        assert set(fibs) == set(topology.routers)

    def test_static_fibs_with_lies_match_paper(self):
        fibs = compute_static_fibs(build_demo_topology(), demo_lies())
        assert fibs["A"].split_ratios(BLUE_PREFIX)["R1"] == pytest.approx(2 / 3)

    def test_shared_timeline_can_be_supplied(self):
        timeline = Timeline()
        network = IgpNetwork(build_demo_topology(), timeline=timeline)
        network.start()
        network.converge()
        assert timeline.now > 0

    def test_custom_router_timers_slow_convergence(self):
        fast = IgpNetwork(build_demo_topology(), timers=RouterTimers(spf_delay=0.01, fib_delay=0.01))
        slow = IgpNetwork(build_demo_topology(), timers=RouterTimers(spf_delay=0.5, fib_delay=0.5))
        fast.start()
        slow.start()
        assert slow.converge() > fast.converge()

    def test_disconnected_topology_still_converges(self):
        topology = Topology("split")
        topology.add_routers(["A", "B", "C"])
        topology.add_link("A", "B")
        topology.attach_prefix("C", "10.0.0.0/24")
        network = IgpNetwork(topology)
        network.start()
        network.converge()
        # A has no route to the isolated prefix.
        assert not network.fib_of("A").has_entry(BLUE_PREFIX)
