"""Regenerate the golden regression snapshots in this directory.

The snapshots pin down externally observable numbers of the experiments —
the Fig. 1 link-load vectors and the optimality-gap study — so that engine
refactors (e.g. the incremental SPF cache) cannot silently drift behaviour.

Run from the repository root:

    PYTHONPATH=src python tests/golden/generate.py

Only regenerate when a change is *supposed* to alter these numbers, and say
so in the commit message.
"""

from __future__ import annotations

import json
import pathlib

GOLDEN_DIR = pathlib.Path(__file__).parent


def fig1_snapshot() -> dict:
    from repro.experiments.fig1 import run_fig1

    states = {
        "baseline": run_fig1(with_fibbing=False),
        "paper_lies": run_fig1(with_fibbing=True),
        "controller_pipeline": run_fig1(with_fibbing=True, use_controller_pipeline=True),
    }
    return {
        key: {
            "label": result.label,
            "max_load": result.max_load,
            "lie_count": result.lie_count,
            "split_at_a": result.split_at_a,
            "split_at_b": result.split_at_b,
            "link_loads": {
                f"{source}->{target}": load
                for (source, target), load in sorted(result.link_loads.items())
            },
        }
        for key, result in states.items()
    }


def fig1_rib_snapshot() -> dict:
    from repro.experiments.fig1 import fig1_rib_digests

    return {
        "baseline": fig1_rib_digests(with_fibbing=False),
        "paper_lies": fig1_rib_digests(with_fibbing=True),
    }


def fig2_snapshot() -> dict:
    """Fig. 2 link samples and cumulative per-link byte counters.

    Pins the dynamic experiment's externally observable numbers — the
    monitored-link throughput series the paper plots and the final SNMP
    byte counters — bit for bit, so data-plane engine refactors (e.g. the
    incremental path cache / warm-start allocator) cannot silently drift
    the simulated traffic.
    """
    from repro.experiments.fig2 import run_demo_timeseries

    snapshot = {}
    for key, with_controller in (("with_controller", True), ("no_controller", False)):
        result = run_demo_timeseries(with_controller=with_controller, duration=60.0)
        snapshot[key] = {
            "sessions_started": result.sessions_started,
            "throughput_series": {
                f"{source}->{target}": series
                for (source, target), series in sorted(result.throughput_series.items())
            },
            "link_counters": {
                f"{source}->{target}": value
                for (source, target), value in sorted(result.link_counters.items())
            },
            "max_utilization_series": result.max_utilization_series,
        }
    return snapshot


def lie_set_snapshot() -> dict:
    """Per-prefix digests of the controller-installed lies (names included).

    Four states are pinned: the Fig. 1 controller-pipeline enforcement and
    the final lie set of the dynamic Fig. 2 demo run, each also replayed
    through the sharded facade (``ShardedFibbingController(shards=3)``).
    The digests cover the fake-node names, so both a behavioural drift of
    the synthesised lies *and* a change of the controller's deterministic
    naming fail loudly; the regression test additionally requires the
    ``incremental=False`` clear-and-replay oracle to reproduce them and the
    sharded digests to be byte-equal to the single-controller ones (the
    shard-equivalence guarantee, pinned).
    """
    from repro.experiments.fig1 import fig1_lie_digests
    from repro.experiments.fig2 import run_demo_timeseries

    fig2 = run_demo_timeseries(with_controller=True, duration=60.0)
    fig2_sharded = run_demo_timeseries(
        with_controller=True, duration=60.0, controller_shards=3
    )
    return {
        "fig1_controller_pipeline": fig1_lie_digests(),
        "fig1_sharded_pipeline": fig1_lie_digests(shards=3),
        "fig2_final": fig2.lie_digests,
        "fig2_sharded_final": fig2_sharded.lie_digests,
    }


def flashcrowd_classes_snapshot() -> dict:
    """Class-level QoE of the scaled flash crowd on the aggregate engine.

    Pins the externally observable numbers of a 62,000-session Fig. 2-style
    run over :class:`~repro.dataplane.engine.AggregateDemandEngine`: the
    count-weighted QoE report, the peak utilisation and the final per-link
    byte counters (the latter bit-for-bit against the per-flow engine's
    arithmetic, via the canonical grouped link totals).  Wall-clock time is
    deliberately absent — it is the run's only non-deterministic output.
    """
    from repro.experiments.flashcrowd_classes import run_flashcrowd_classes

    snapshot = {}
    for key, with_controller in (("with_controller", True), ("no_controller", False)):
        result = run_flashcrowd_classes(
            sessions=62_000, with_controller=with_controller, duration=60.0
        )
        qoe = result.qoe
        snapshot[key] = {
            "sessions": result.sessions,
            "scale": result.scale,
            "qoe": {
                "sessions": qoe.sessions,
                "smooth_sessions": qoe.smooth_sessions,
                "stalled_sessions": qoe.stalled_sessions,
                "completed_sessions": qoe.completed_sessions,
                "mean_startup_delay": qoe.mean_startup_delay,
                "mean_stall_count": qoe.mean_stall_count,
                "mean_rebuffer_ratio": qoe.mean_rebuffer_ratio,
                "p95_rebuffer_ratio": qoe.p95_rebuffer_ratio,
                "total_stall_time": qoe.total_stall_time,
            },
            "peak_utilization": result.peak_utilization,
            "alarms": result.alarms,
            "actions": result.actions,
            "lies_active": result.lies_active,
            "link_counters": {
                f"{source}->{target}": value
                for (source, target), value in sorted(
                    result.demo.link_counters.items()
                )
            },
        }
    return snapshot


def reaction_snapshot() -> dict:
    """A7 reaction-time curves of the asynchronous control loop.

    Pins the seeded reaction sweep (poll interval x reaction latency x SPF
    hold-down) bit for bit: the alarm-to-cool curves, the per-action
    control-plane latencies, and the ``ctl_*`` convergence/supersession
    bookkeeping.  A timing-model refactor that shifts when reactions
    execute — or how convergence time is charged — fails here loudly.
    """
    from dataclasses import asdict

    from repro.experiments.reaction import run_reaction_curves

    rows = run_reaction_curves(
        seed=0,
        poll_intervals=(0.5, 1.0, 2.0),
        reaction_latencies=(0.0, 0.5),
        spf_delays=(0.05, 0.2),
        duration=40.0,
    )
    return {"rows": [asdict(row) for row in rows]}


def chaos_recovery_snapshot() -> dict:
    """A8 chaos resilience rows: QoE with and without controller recovery.

    Pins the seeded fault grid bit for bit — the clean baseline, the
    unrecovered crash and the crash-plus-resync variants, including the
    ``fault_*`` chaos accounting, the ``ctl_resync*`` recovery bookkeeping
    and the final lie digest (fake-node names included).  A drift of the
    fault injector's seeded streams, the LSDB resync, or the degraded
    monitoring path fails here loudly.
    """
    from dataclasses import asdict

    from repro.experiments.chaos import run_chaos_resilience

    rows = run_chaos_resilience(
        seed=0,
        duration=60.0,
        link_churn=2,
        lsa_loss_rate=0.02,
        poll_timeout_rate=0.1,
        staleness_horizon=5.0,
    )
    return {"rows": [asdict(row) for row in rows]}


def optimality_snapshot() -> dict:
    from repro.experiments.optimality import run_optimality_study

    rows = run_optimality_study(seeds=(0, 1, 2), num_routers=10, destinations=3)
    return {
        "rows": [
            {
                "seed": row.seed,
                "scheme": row.scheme,
                "max_utilization": row.max_utilization,
                "optimal_utilization": row.optimal_utilization,
                "gap": row.gap,
                "delivery_fraction": row.delivery_fraction,
                "control_state": row.control_state,
            }
            for row in rows
        ]
    }


def main() -> None:
    snapshots = {
        "fig1_loads.json": fig1_snapshot(),
        "fig1_ribs.json": fig1_rib_snapshot(),
        "fig1_lies.json": lie_set_snapshot(),
        "fig2_samples.json": fig2_snapshot(),
        "flashcrowd_classes_qoe.json": flashcrowd_classes_snapshot(),
        "optimality_gaps.json": optimality_snapshot(),
        "reaction_curves.json": reaction_snapshot(),
        "chaos_recovery.json": chaos_recovery_snapshot(),
    }
    for name, payload in snapshots.items():
        path = GOLDEN_DIR / name
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
