"""Robustness of the Fig. 2 result across ECMP hashing realisations.

Per-flow ECMP hashing makes the exact per-link byte counts depend on which
flows hash where; the paper's qualitative outcome (three lies, smooth
playback, no saturated link in steady state) must not.
"""

import pytest

from repro.experiments.fig2 import run_demo_timeseries


@pytest.mark.parametrize("salt", [1, 2])
def test_fig2_outcome_is_stable_across_hash_seeds(salt):
    result = run_demo_timeseries(with_controller=True, hash_salt=salt)
    # The controller always converges to the paper's three lies.
    assert result.lies_active == 3
    assert [action.lies_injected for action in result.actions][:1] == [1]
    # Playback stays smooth (or very nearly so: at most one unlucky session
    # may observe a transient stall while a surge is being absorbed).
    assert result.qoe.stalled_sessions <= 1
    # Both alternate paths end up carrying traffic.
    assert result.final_throughput("B", "R3") > 1e6
    assert result.final_throughput("A", "R1") > 1e6


def test_fig2_is_deterministic_for_a_fixed_salt():
    first = run_demo_timeseries(with_controller=True, hash_salt=5)
    second = run_demo_timeseries(with_controller=True, hash_salt=5)
    assert first.final_throughput("B", "R2") == second.final_throughput("B", "R2")
    assert first.qoe.total_stall_time == second.qoe.total_stall_time
    assert [a.time for a in first.actions] == [a.time for a in second.actions]
