"""Tests for repro.util.stats."""

import pytest

from repro.util.errors import ValidationError
from repro.util.stats import Ewma, RunningStats, TimeWeightedAverage, maximum, mean, percentile


class TestMeanMaxPercentile:
    def test_mean_of_values(self):
        assert mean([1, 2, 3, 4]) == 2.5

    def test_mean_rejects_empty(self):
        with pytest.raises(ValidationError):
            mean([])

    def test_maximum_with_default(self):
        assert maximum([], default=7.0) == 7.0
        assert maximum([1, 9, 3]) == 9

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4], 0.5) == 2.5

    def test_percentile_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 9

    def test_percentile_single_value(self):
        assert percentile([42], 0.3) == 42

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValidationError):
            percentile([], 0.5)

    def test_percentile_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            percentile([1, 2], 1.5)


class TestEwma:
    def test_first_sample_sets_value(self):
        ewma = Ewma(alpha=0.5)
        assert not ewma.initialized
        assert ewma.update(10.0) == 10.0
        assert ewma.initialized

    def test_smoothing_behaviour(self):
        ewma = Ewma(alpha=0.5, initial=0.0)
        assert ewma.update(10.0) == 5.0
        assert ewma.update(10.0) == 7.5

    def test_alpha_one_tracks_exactly(self):
        ewma = Ewma(alpha=1.0)
        ewma.update(3.0)
        assert ewma.update(8.0) == 8.0

    def test_zero_alpha_rejected(self):
        with pytest.raises(ValidationError):
            Ewma(alpha=0.0)

    def test_reset_forgets_history(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(10.0)
        ewma.reset()
        assert not ewma.initialized
        assert ewma.value == 0.0


class TestRunningStats:
    def test_count_mean_minmax(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 6.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(4.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 6.0

    def test_variance_and_stddev(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.variance == pytest.approx(4.0)
        assert stats.stddev == pytest.approx(2.0)

    def test_empty_stats_are_safe(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        summary = stats.as_dict()
        assert summary["count"] == 0
        assert summary["min"] == 0.0

    def test_as_dict_round_trip(self):
        stats = RunningStats()
        stats.add(3.0)
        summary = stats.as_dict()
        assert summary["count"] == 1
        assert summary["mean"] == 3.0


class TestTimeWeightedAverage:
    def test_piecewise_constant_average(self):
        twa = TimeWeightedAverage()
        twa.observe(0.0, 10.0)
        twa.observe(5.0, 0.0)  # 10.0 held for 5 seconds
        average = twa.finish(10.0)  # 0.0 held for 5 seconds
        assert average == pytest.approx(5.0)

    def test_rejects_time_going_backwards(self):
        twa = TimeWeightedAverage()
        twa.observe(5.0, 1.0)
        with pytest.raises(ValidationError):
            twa.observe(4.0, 1.0)

    def test_zero_duration_average_is_zero(self):
        twa = TimeWeightedAverage()
        twa.observe(1.0, 3.0)
        assert twa.average == 0.0

    def test_samples_are_recorded(self):
        twa = TimeWeightedAverage()
        twa.observe(0.0, 1.0)
        twa.observe(1.0, 2.0)
        assert twa.samples == [(0.0, 1.0), (1.0, 2.0)]

    def test_finish_is_idempotent(self):
        # Regression: finish used to route through observe, so a second
        # finish at the same instant silently inflated the duration.
        twa = TimeWeightedAverage()
        twa.observe(0.0, 10.0)
        twa.observe(5.0, 0.0)
        first = twa.finish(10.0)
        second = twa.finish(10.0)
        assert first == second == pytest.approx(5.0)

    def test_finish_does_not_mutate_state(self):
        twa = TimeWeightedAverage()
        twa.observe(0.0, 4.0)
        twa.finish(2.0)
        # The closing sample must not be recorded or folded into the state:
        # a later observe continues from the last real observation.
        assert twa.samples == [(0.0, 4.0)]
        assert twa.average == 0.0
        twa.observe(1.0, 8.0)  # before the finish time; legal after the fix
        assert twa.finish(2.0) == pytest.approx((4.0 * 1.0 + 8.0 * 1.0) / 2.0)

    def test_finish_before_last_observation_raises(self):
        twa = TimeWeightedAverage()
        twa.observe(5.0, 1.0)
        with pytest.raises(ValidationError):
            twa.finish(4.0)

    def test_finish_without_observations_is_zero(self):
        assert TimeWeightedAverage().finish(10.0) == 0.0

    def test_finish_at_last_observation_time(self):
        twa = TimeWeightedAverage()
        twa.observe(0.0, 2.0)
        twa.observe(4.0, 6.0)
        assert twa.finish(4.0) == pytest.approx(2.0)
