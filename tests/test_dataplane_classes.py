"""Differential property tests for the aggregate-demand data plane.

Mirror of ``tests/test_dataplane_incremental.py`` one aggregation level up:
after an arbitrary sequence of class arrivals (single and batched cohorts),
class departures, mid-stream FIB swaps (weight changes, lie injections and
withdrawals) and link capacity changes, the
:class:`~repro.dataplane.engine.AggregateDemandEngine` must be
indistinguishable — bit for bit — from the per-flow
:class:`~repro.dataplane.engine.DataPlaneEngine` oracle fed one count-1
flow per session: per-session rates, per-session byte counters, link rates,
cumulative link byte counters and periodic link samples all identical.

Three engines run in lockstep: the incremental aggregate engine, the
from-scratch aggregate engine (``incremental=False``) and the per-flow
oracle.  Session ids align by construction — :class:`ClassSet` hands out
contiguous id blocks from the same monotonic counter the per-flow
:class:`FlowSet` uses — so the deterministic ECMP hash walks identical
paths on every side.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.demand import ClassSpec
from repro.dataplane.engine import AggregateDemandEngine, DataPlaneEngine
from repro.dataplane.flows import FlowSpec
from repro.igp.lsa import FakeNodeLsa
from repro.igp.network import compute_static_fibs
from repro.igp.rib_cache import RibCache
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.topologies.random import random_topology
from repro.util.errors import SimulationError, ValidationError
from repro.util.timeline import Timeline
from repro.util.units import mbps


class TriEngineDriver:
    """Drives both aggregate engines and the per-flow oracle in lockstep.

    All three engines see the same topology, the same FIB store and the
    same event sequence; their timelines advance to the same instants.  A
    class of ``count`` sessions on the aggregate side becomes ``count``
    identical count-1 flows on the oracle side, added in session-id order,
    so any divergence is an aggregation bug.
    """

    def __init__(self, seed, topology=None, max_count=12):
        self.rng = random.Random(seed)
        self.topology = (
            topology
            if topology is not None
            else random_topology(8, edge_probability=0.3, seed=seed)
        )
        self.max_count = max_count
        self.lies = {}
        self.lie_counter = 0
        self.rib_cache = RibCache()
        self.fibs = compute_static_fibs(self.topology, rib_cache=self.rib_cache)
        self.timelines = (Timeline(), Timeline(), Timeline())
        self.aggregate = AggregateDemandEngine(
            self.topology, lambda: self.fibs, self.timelines[0]
        )
        self.full = AggregateDemandEngine(
            self.topology, lambda: self.fibs, self.timelines[1], incremental=False
        )
        self.oracle = DataPlaneEngine(
            self.topology, lambda: self.fibs, self.timelines[2]
        )
        for engine in self.engines:
            engine.start()
        self.active = []  # class ids, arrival order
        self.sessions = {}  # class id -> range of session ids
        self.steps_applied = 0

    @property
    def engines(self):
        return (self.aggregate, self.full, self.oracle)

    @property
    def aggregates(self):
        return (self.aggregate, self.full)

    # -------------------------------------------------------------- #
    # Mutations
    # -------------------------------------------------------------- #
    def _random_rate(self):
        # Deliberately non-round per-session rates so bit-identity means
        # something: any re-association of the arithmetic would show.
        return self.rng.uniform(0.3, 4.0) * 1e6

    def _random_count(self):
        return self.rng.randint(1, self.max_count)

    def _add_specs(self, specs):
        classes = []
        for engine in self.aggregates:
            classes = engine.add_classes(specs)
        self.oracle.add_flows(
            [
                FlowSpec(ingress=spec.ingress, prefix=spec.prefix, demand=spec.rate)
                for spec in specs
                for _ in range(spec.count)
            ]
        )
        for demand_class in classes:
            self.active.append(demand_class.class_id)
            self.sessions[demand_class.class_id] = demand_class.session_ids

    def apply(self, action):
        rng = self.rng
        if action == "arrive":
            prefixes = self.topology.prefixes
            if not prefixes:
                return False
            self._add_specs(
                [
                    ClassSpec(
                        ingress=rng.choice(self.topology.routers),
                        prefix=rng.choice(prefixes),
                        rate=self._random_rate(),
                        count=self._random_count(),
                        label="diff",
                    )
                ]
            )
        elif action == "arrive_batch":
            prefixes = self.topology.prefixes
            if not prefixes:
                return False
            self._add_specs(
                [
                    ClassSpec(
                        ingress=rng.choice(self.topology.routers),
                        prefix=rng.choice(prefixes),
                        rate=self._random_rate(),
                        count=self._random_count(),
                    )
                    for _ in range(rng.randint(2, 4))
                ]
            )
        elif action == "depart":
            if not self.active:
                return False
            class_id = self.active.pop(rng.randrange(len(self.active)))
            for engine in self.aggregates:
                engine.remove_class(class_id)
            for session_id in self.sessions.pop(class_id):
                self.oracle.remove_flow(session_id)
        elif action == "fib_swap":
            kind = rng.choice(("weight", "inject", "withdraw"))
            if kind == "weight":
                links = self.topology.undirected_links
                source, target = links[rng.randrange(len(links))]
                self.topology.set_weight(
                    source,
                    target,
                    rng.choice([1, 2, 3, 5, round(rng.random() * 4 + 0.5, 3)]),
                )
            elif kind == "inject":
                anchor = rng.choice(self.topology.routers)
                neighbors = self.topology.neighbors(anchor)
                prefixes = self.topology.prefixes
                if not neighbors or not prefixes:
                    return False
                self.lie_counter += 1
                name = f"fake-{self.lie_counter}"
                self.lies[name] = FakeNodeLsa(
                    origin="controller",
                    fake_node=name,
                    anchor=anchor,
                    link_cost=round(rng.random() * 2 + 0.1, 4),
                    prefix=rng.choice(prefixes),
                    prefix_cost=round(rng.random(), 4),
                    forwarding_address=rng.choice(neighbors),
                )
            else:
                if not self.lies:
                    return False
                self.lies.pop(rng.choice(sorted(self.lies)))
            self.fibs = compute_static_fibs(
                self.topology, self.lies.values(), rib_cache=self.rib_cache
            )
            for engine in self.engines:
                engine.notify_routing_change()
        elif action == "noop_routing":
            for engine in self.engines:
                engine.notify_routing_change()
        elif action == "capacity":
            links = self.topology.links
            link = links[rng.randrange(len(links))]
            capacity = self.aggregate.link_capacity(link.source, link.target)
            factor = rng.choice([0.5, 0.75, 1.5, 2.0])
            for engine in self.engines:
                engine.set_link_capacity(link.source, link.target, capacity * factor)
        elif action == "advance":
            delta = rng.choice([0.5, 1.0, 2.5])
            target = self.timelines[0].now + delta
            for timeline in self.timelines:
                timeline.run_until(target)
        else:  # pragma: no cover - defensive
            raise ValueError(action)
        self.steps_applied += 1
        return True

    # -------------------------------------------------------------- #
    # The differential oracle
    # -------------------------------------------------------------- #
    def check_equivalent(self, context=""):
        agg, full, oracle = self.engines
        assert (
            self.timelines[0].now == self.timelines[1].now == self.timelines[2].now
        ), context
        assert len(oracle.flows) == agg.classes.total_sessions(), context
        for class_id in self.active:
            # The two aggregate engines must agree on the path-group level...
            assert agg.class_session_rates(class_id) == full.class_session_rates(
                class_id
            ), f"{context} class={class_id} session rates"
            assert agg.class_transmitted_bytes(class_id) == full.class_transmitted_bytes(
                class_id
            ), f"{context} class={class_id} bytes"
            # ...and the cohort total must reconcile with its per-session view.
            assert agg.class_transmitted_bytes(class_id) == pytest.approx(
                math.fsum(
                    agg.session_transmitted_bytes(session_id)
                    for session_id in self.sessions[class_id]
                )
            ), f"{context} class={class_id} bytes vs sessions"
            # Every session must be bitwise equal to its per-flow twin.
            for session_id in self.sessions[class_id]:
                assert agg.session_rate(session_id) == oracle.flow_rate(session_id), (
                    f"{context} session={session_id} rate"
                )
                assert agg.session_transmitted_bytes(
                    session_id
                ) == oracle.flow_transmitted_bytes(session_id), (
                    f"{context} session={session_id} bytes"
                )
        for link in self.topology.links:
            key = (link.source, link.target)
            rate = agg.link_rate(*key)
            assert rate == full.link_rate(*key), f"{context} link={key} agg-vs-full"
            assert rate == oracle.link_rate(*key), f"{context} link={key} agg-vs-oracle"
        counters = agg.all_link_counters()
        assert counters == full.all_link_counters(), f"{context} counters agg-vs-full"
        assert counters == oracle.all_link_counters(), f"{context} counters agg-vs-oracle"
        assert len(agg.samples) == len(full.samples) == len(oracle.samples), context
        for mine, twin, want in zip(agg.samples, full.samples, oracle.samples):
            assert mine.time == twin.time == want.time, context
            assert mine.interval == twin.interval == want.interval, context
            assert mine.rates == twin.rates, f"{context} sample@{mine.time} agg-vs-full"
            assert mine.rates == want.rates, f"{context} sample@{mine.time} agg-vs-oracle"


ACTIONS = (
    "arrive",
    "arrive",  # arrivals weighted up: flash crowds are arrival-heavy
    "arrive_batch",
    "depart",
    "fib_swap",
    "noop_routing",
    "capacity",
    "advance",
)


class TestDifferentialRandomized:
    """Seeded randomized event sequences; jointly >= 250 steps."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_event_sequence(self, seed):
        driver = TriEngineDriver(seed)
        driver.check_equivalent(context=f"seed={seed} initial")
        steps = 0
        while steps < 25:
            action = driver.rng.choice(ACTIONS)
            if not driver.apply(action):
                continue
            steps += 1
            driver.check_equivalent(context=f"seed={seed} step={steps} action={action}")
        assert driver.steps_applied >= 25

    def test_demo_scenario_with_lie_swap(self):
        """The exact Fig. 2 state change, cohort-sized: the paper's lies
        land mid-stream and repartition the populations at ECMP branches."""
        driver = TriEngineDriver(seed=0, topology=build_demo_topology())
        driver._add_specs(
            [
                ClassSpec(
                    ingress="B",
                    prefix=BLUE_PREFIX,
                    rate=mbps(1) * (1 + 0.013 * index),
                    count=count,
                )
                for index, count in enumerate((1, 30, 31))
            ]
        )
        driver.apply("advance")
        driver.check_equivalent("before lies")
        driver.fibs = compute_static_fibs(
            driver.topology, demo_lies(), rib_cache=driver.rib_cache
        )
        for engine in driver.engines:
            engine.notify_routing_change()
        driver.check_equivalent("after lies")
        driver.apply("advance")
        driver.check_equivalent("after lies + time")
        assert driver.aggregate.link_rate("B", "R3") > 0.0
        # The lies split the blue prefix at A: the populations were
        # partitioned by per-session hashing at the branch.
        assert driver.aggregate.counters.class_splits > 0

    def test_counters_reconcile_with_events(self):
        driver = TriEngineDriver(seed=42)
        steps = 0
        while steps < 20:
            if driver.apply(driver.rng.choice(ACTIONS)):
                steps += 1
                driver.check_equivalent()
        counters = driver.aggregate.counters
        # Every event split the active classes into rewalked + reused.
        assert counters.classes_rewalked > 0
        assert counters.classes_reused > 0
        assert counters.alloc_events == (
            counters.alloc_warm_starts + counters.alloc_full + counters.fallbacks
        )
        # The from-scratch aggregate engine never reuses a cached walk.
        reference = driver.full.counters
        assert reference.classes_reused == 0
        assert reference.alloc_warm_starts == 0
        assert reference.fallbacks == 0
        assert reference.alloc_full >= counters.alloc_events


class TestDifferentialHypothesis:
    """Hypothesis-driven event sequences against the per-flow oracle."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        actions=st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=8),
    )
    def test_any_event_sequence_matches_the_per_flow_oracle(self, seed, actions):
        driver = TriEngineDriver(seed, max_count=6)
        for index, action in enumerate(actions):
            if driver.apply(action):
                driver.check_equivalent(
                    context=f"seed={seed} step={index} action={action}"
                )


class TestCountMultiplicity:
    """One count-N class == N count-1 classes == N per-flow sessions."""

    def build(self, topology):
        fibs = compute_static_fibs(topology)
        return fibs

    def test_count_n_class_equals_n_count_1_classes(self):
        topology = build_demo_topology()
        fibs = compute_static_fibs(topology)
        bundled = AggregateDemandEngine(topology, lambda: fibs, Timeline())
        unbundled = AggregateDemandEngine(topology, lambda: fibs, Timeline())
        rate = mbps(1) * 1.0137
        count = 40
        bundled.add_class("B", BLUE_PREFIX, rate=rate, count=count)
        unbundled.add_classes(
            [
                ClassSpec(ingress="B", prefix=BLUE_PREFIX, rate=rate, count=1)
                for _ in range(count)
            ]
        )
        for timeline in (bundled.timeline, unbundled.timeline):
            timeline.run_until(3.0)
        # Session ids align (0..count-1 on both sides): every per-session
        # quantity and every link-level total must be bitwise equal.
        for session_id in range(count):
            assert bundled.session_rate(session_id) == unbundled.session_rate(session_id)
            assert bundled.session_transmitted_bytes(
                session_id
            ) == unbundled.session_transmitted_bytes(session_id)
        for link in topology.links:
            key = (link.source, link.target)
            assert bundled.link_rate(*key) == unbundled.link_rate(*key)
        assert bundled.all_link_counters() == unbundled.all_link_counters()

    def test_count_1_classes_match_flows_exactly(self):
        """The degenerate count=1 leg: a class per session is just a flow."""
        driver = TriEngineDriver(seed=3, max_count=1)
        steps = 0
        while steps < 15:
            if driver.apply(driver.rng.choice(ACTIONS)):
                steps += 1
                driver.check_equivalent(context=f"count1 step={steps}")


class TestClassLifecycle:
    """Validation, events and cache behaviour of the aggregate engine."""

    def build(self):
        topology = build_demo_topology()
        fibs = compute_static_fibs(topology)
        engine = AggregateDemandEngine(topology, lambda: fibs, Timeline())
        return topology, engine

    def test_invalid_specs_rejected_atomically(self):
        _, engine = self.build()
        good = ClassSpec(ingress="B", prefix=BLUE_PREFIX, rate=mbps(1), count=3)
        for bad_kwargs in (
            dict(ingress="ghost", prefix=BLUE_PREFIX, rate=mbps(1), count=1),
            dict(ingress="B", prefix=BLUE_PREFIX, rate=mbps(1), count=0),
        ):
            with pytest.raises((SimulationError, ValidationError)):
                engine.add_classes([good, ClassSpec(**bad_kwargs)])
        with pytest.raises((SimulationError, ValidationError)):
            engine.add_class("B", BLUE_PREFIX, rate=0.0, count=1)
        assert len(engine.classes) == 0
        assert len(engine.events) == 0

    def test_bool_count_rejected(self):
        _, engine = self.build()
        with pytest.raises(SimulationError):
            engine.add_class("B", BLUE_PREFIX, rate=mbps(1), count=True)

    def test_arrival_and_departure_record_events(self):
        _, engine = self.build()
        demand_class = engine.add_class("B", BLUE_PREFIX, rate=mbps(1), count=5)
        engine.remove_class(demand_class.class_id)
        kinds = [event.kind for event in engine.events]
        assert kinds == ["class-arrival", "class-departure"]

    def test_unknown_class_rejected(self):
        _, engine = self.build()
        with pytest.raises(Exception):
            engine.remove_class(99)

    def test_noop_routing_change_reuses_every_walk(self):
        _, engine = self.build()
        engine.add_class("B", BLUE_PREFIX, rate=mbps(1), count=10)
        rewalked_before = engine.counters.classes_rewalked
        alloc_before = engine.counters.alloc_events
        engine.notify_routing_change()  # FIBs identical: nothing is dirty
        assert engine.counters.classes_rewalked == rewalked_before
        assert engine.counters.classes_reused >= 1
        assert engine.counters.alloc_events == alloc_before
        for demand_class in engine.classes:
            assert engine.cached_class_valid(demand_class.class_id)

    def test_session_rate_of_unknown_session_raises(self):
        _, engine = self.build()
        engine.add_class("B", BLUE_PREFIX, rate=mbps(1), count=2)
        with pytest.raises(Exception):
            engine.session_rate(17)
