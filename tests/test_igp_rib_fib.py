"""Tests for repro.igp.rib and repro.igp.fib (including fake-node resolution)."""

import pytest

from repro.igp.fib import Fib, FibEntry, PrefixFib, resolve_rib_to_fib
from repro.igp.graph import ComputationGraph
from repro.igp.lsa import FakeNodeLsa
from repro.igp.rib import compute_rib
from repro.igp.spf import compute_spf
from repro.topologies.demo import BLUE_PREFIX, build_demo_topology, demo_lies
from repro.util.errors import RoutingError
from repro.util.prefixes import Prefix


def demo_graph(with_lies: bool = False) -> ComputationGraph:
    lies = demo_lies() if with_lies else ()
    return ComputationGraph.from_topology(build_demo_topology(), lies)


class TestRib:
    def test_route_cost_from_a(self):
        rib = compute_rib(demo_graph(), "A")
        assert rib.route(BLUE_PREFIX).cost == 3

    def test_route_cost_from_b(self):
        rib = compute_rib(demo_graph(), "B")
        assert rib.route(BLUE_PREFIX).cost == 2

    def test_local_route_at_announcing_router(self):
        rib = compute_rib(demo_graph(), "C")
        route = rib.route(BLUE_PREFIX)
        assert route.is_local
        assert route.cost == 0

    def test_single_contribution_without_lies(self):
        rib = compute_rib(demo_graph(), "A")
        route = rib.route(BLUE_PREFIX)
        assert route.next_hop_nodes == ("B",)

    def test_fake_contributions_with_lies(self):
        rib = compute_rib(demo_graph(with_lies=True), "A")
        route = rib.route(BLUE_PREFIX)
        # Real path via B (announced by C), the two fake nodes anchored at A,
        # and fB (anchored at B) which A also reaches via B at equal cost.
        assert len(route.contributions) == 4
        fake_next_hops = [c for c in route.contributions if c.next_hop_is_fake]
        assert len(fake_next_hops) == 2
        # Contributions whose next hop is the real neighbor B (via C and via
        # fB) must later collapse into a single FIB entry.
        via_b = [c for c in route.contributions if c.next_hop == "B"]
        assert len(via_b) == 2

    def test_missing_route_raises(self):
        rib = compute_rib(demo_graph(), "A")
        with pytest.raises(RoutingError):
            rib.route(Prefix.parse("203.0.113.0/24"))

    def test_has_route_and_iteration(self):
        rib = compute_rib(demo_graph(), "A")
        assert rib.has_route(BLUE_PREFIX)
        assert BLUE_PREFIX in [route.prefix for route in rib]

    def test_spf_source_mismatch_rejected(self):
        graph = demo_graph()
        spf = compute_spf(graph, "B")
        with pytest.raises(RoutingError):
            compute_rib(graph, "A", spf)

    def test_reusing_spf_gives_same_result(self):
        graph = demo_graph()
        spf = compute_spf(graph, "A")
        direct = compute_rib(graph, "A")
        reused = compute_rib(graph, "A", spf)
        assert direct.route(BLUE_PREFIX).cost == reused.route(BLUE_PREFIX).cost


class TestFibResolution:
    def test_baseline_fib_single_next_hop(self):
        graph = demo_graph()
        fib = resolve_rib_to_fib(graph, compute_rib(graph, "A"))
        assert fib.split_ratios(BLUE_PREFIX) == {"B": 1.0}

    def test_fib_with_lies_at_b_is_even_split(self):
        graph = demo_graph(with_lies=True)
        fib = resolve_rib_to_fib(graph, compute_rib(graph, "B"))
        assert fib.split_ratios(BLUE_PREFIX) == {"R2": 0.5, "R3": 0.5}

    def test_fib_with_lies_at_a_is_one_third_two_thirds(self):
        graph = demo_graph(with_lies=True)
        fib = resolve_rib_to_fib(graph, compute_rib(graph, "A"))
        ratios = fib.split_ratios(BLUE_PREFIX)
        assert ratios["B"] == pytest.approx(1 / 3)
        assert ratios["R1"] == pytest.approx(2 / 3)

    def test_fake_entries_record_their_fake_nodes(self):
        graph = demo_graph(with_lies=True)
        fib = resolve_rib_to_fib(graph, compute_rib(graph, "A"))
        entry = next(e for e in fib.lookup(BLUE_PREFIX).entries if e.next_hop == "R1")
        assert set(entry.via_fake) == {"fA1", "fA2"}
        assert entry.weight == 2

    def test_transit_routers_unaffected_by_lies(self):
        graph = demo_graph(with_lies=True)
        for router in ["R1", "R2", "R3", "R4"]:
            fib = resolve_rib_to_fib(graph, compute_rib(graph, router))
            baseline = resolve_rib_to_fib(demo_graph(), compute_rib(demo_graph(), router))
            assert fib.split_ratios(BLUE_PREFIX) == baseline.split_ratios(BLUE_PREFIX)

    def test_local_delivery_flag(self):
        graph = demo_graph()
        fib = resolve_rib_to_fib(graph, compute_rib(graph, "C"))
        assert fib.delivers_locally(BLUE_PREFIX)

    def test_lookup_missing_prefix_raises(self):
        graph = demo_graph()
        fib = resolve_rib_to_fib(graph, compute_rib(graph, "A"))
        with pytest.raises(RoutingError):
            fib.lookup(Prefix.parse("203.0.113.0/24"))

    def test_entry_count_counts_all_prefixes(self):
        graph = demo_graph()
        fib = resolve_rib_to_fib(graph, compute_rib(graph, "A"))
        assert fib.entry_count >= 2  # blue prefix + S1 prefix at least

    def test_dangling_forwarding_address_rejected(self):
        topology = build_demo_topology()
        bad_lie = FakeNodeLsa(
            origin="ctrl",
            fake_node="bad",
            anchor="A",
            link_cost=1.0,
            prefix=BLUE_PREFIX,
            prefix_cost=2.0,
            forwarding_address="R4",  # not adjacent to A
        )
        graph = ComputationGraph.from_topology(topology, [bad_lie])
        with pytest.raises(RoutingError):
            resolve_rib_to_fib(graph, compute_rib(graph, "A"))

    def test_max_ecmp_truncation(self):
        graph = demo_graph(with_lies=True)
        fib = resolve_rib_to_fib(graph, compute_rib(graph, "A"), max_ecmp=2)
        prefix_fib = fib.lookup(BLUE_PREFIX)
        assert prefix_fib.truncated
        assert prefix_fib.total_weight == 2
        # The heavier next hop (R1) must be preserved.
        assert "R1" in prefix_fib.split_ratios()

    def test_max_ecmp_must_be_positive(self):
        graph = demo_graph()
        with pytest.raises(RoutingError):
            resolve_rib_to_fib(graph, compute_rib(graph, "A"), max_ecmp=0)


class TestFibDataStructures:
    def test_fib_entry_weight_must_be_positive(self):
        with pytest.raises(RoutingError):
            FibEntry(next_hop="B", weight=0)

    def test_prefix_fib_split_ratios_sum_to_one(self):
        prefix_fib = PrefixFib(
            prefix=BLUE_PREFIX,
            cost=3,
            entries=(FibEntry("B", 1), FibEntry("R1", 2)),
        )
        assert sum(prefix_fib.split_ratios().values()) == pytest.approx(1.0)
        assert prefix_fib.total_weight == 3
        assert prefix_fib.next_hops() == ("B", "R1")

    def test_empty_prefix_fib_has_no_ratios(self):
        prefix_fib = PrefixFib(prefix=BLUE_PREFIX, cost=0, entries=(), local=True)
        assert prefix_fib.split_ratios() == {}

    def test_fib_iteration_is_sorted_by_prefix(self):
        graph = demo_graph()
        fib = resolve_rib_to_fib(graph, compute_rib(graph, "A"))
        prefixes = [prefix_fib.prefix for prefix_fib in fib]
        assert prefixes == sorted(prefixes)
