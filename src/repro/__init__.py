"""Reproduction of "Fibbing in action: On-demand load-balancing for better video delivery".

The library reimplements, in pure Python, every system the SIGCOMM'16 demo
relies on:

* a link-state IGP control plane (:mod:`repro.igp`);
* a flow-level data plane with max-min fair sharing (:mod:`repro.dataplane`);
* SNMP-like monitoring and server notifications (:mod:`repro.monitoring`);
* a video streaming workload with a QoE model (:mod:`repro.video`);
* the Fibbing controller itself — augmentation, lie management, min-max
  optimisation and the on-demand load balancer (:mod:`repro.core`);
* the traffic-engineering baselines it is compared against (:mod:`repro.te`);
* topology builders, including the paper's Fig. 1 network
  (:mod:`repro.topologies`);
* ready-made experiment harnesses regenerating every figure and claim of
  the paper (:mod:`repro.experiments`).

Quickstart
----------

>>> from repro import run_fig1
>>> baseline = run_fig1(with_fibbing=False)
>>> fibbed = run_fig1(with_fibbing=True)
>>> round(baseline.max_load), round(fibbed.max_load)
(200, 67)
"""

from repro.core import (
    DestinationRequirement,
    FibbingController,
    LieMerger,
    LoadBalancerPolicy,
    MinMaxLoadOptimizer,
    OnDemandLoadBalancer,
    RequirementSet,
)
from repro.dataplane import DataPlaneEngine, TrafficMatrix, route_fractional
from repro.experiments import run_demo_timeseries, run_fig1
from repro.igp import IgpNetwork, Topology, compute_static_fibs
from repro.topologies import build_demo_scenario, build_demo_topology, demo_lies
from repro.util.prefixes import Prefix

__version__ = "1.0.0"

__all__ = [
    "DestinationRequirement",
    "FibbingController",
    "LieMerger",
    "LoadBalancerPolicy",
    "MinMaxLoadOptimizer",
    "OnDemandLoadBalancer",
    "RequirementSet",
    "DataPlaneEngine",
    "TrafficMatrix",
    "route_fractional",
    "run_demo_timeseries",
    "run_fig1",
    "IgpNetwork",
    "Topology",
    "compute_static_fibs",
    "build_demo_scenario",
    "build_demo_topology",
    "demo_lies",
    "Prefix",
    "__version__",
]
