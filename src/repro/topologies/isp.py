"""Two-level synthetic ISP topologies.

The lie-count scaling ablation (DESIGN.md, experiment A2) needs networks with
the structure the paper targets: a meshed core carrying transit traffic and
aggregation points of presence (PoPs) where customer prefixes attach.  The
generator below builds such a network deterministically from a seed:

* ``core_size`` core routers connected as a ring plus random chords
  (mimicking a national backbone);
* ``pops`` PoPs, each made of two aggregation routers dual-homed to two
  distinct core routers (the classic redundancy pattern);
* each PoP announces ``prefixes_per_pop`` customer /24 prefixes from one of
  its aggregation routers.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.igp.topology import DEFAULT_CAPACITY, Topology
from repro.util.errors import ValidationError
from repro.util.prefixes import Prefix

__all__ = ["synthetic_isp"]


def synthetic_isp(
    core_size: int = 8,
    pops: int = 4,
    prefixes_per_pop: int = 2,
    seed: int = 0,
    core_capacity: float = DEFAULT_CAPACITY * 4,
    pop_capacity: float = DEFAULT_CAPACITY,
) -> Topology:
    """Build a two-level synthetic ISP topology (see module docstring)."""
    if core_size < 3:
        raise ValidationError(f"core_size must be >= 3, got {core_size}")
    if pops < 1:
        raise ValidationError(f"pops must be >= 1, got {pops}")
    if prefixes_per_pop < 0:
        raise ValidationError(f"prefixes_per_pop must be >= 0, got {prefixes_per_pop}")
    if pops * prefixes_per_pop > 65_000:
        raise ValidationError("too many customer prefixes requested")

    rng = random.Random(seed)
    topology = Topology(name=f"isp-c{core_size}-p{pops}-s{seed}")

    core = [f"Core{i}" for i in range(core_size)]
    topology.add_routers(core)
    # Core ring.
    for index in range(core_size):
        topology.add_link(
            core[index], core[(index + 1) % core_size], weight=2, capacity=core_capacity
        )
    # Random chords: roughly one extra link per two core routers.
    chords_added = 0
    attempts = 0
    while chords_added < core_size // 2 and attempts < core_size * core_size:
        attempts += 1
        first, second = rng.sample(core, 2)
        if topology.has_link(first, second):
            continue
        topology.add_link(first, second, weight=rng.randint(2, 4), capacity=core_capacity)
        chords_added += 1

    prefix_counter = 0
    for pop_index in range(pops):
        agg_primary = f"Pop{pop_index}A"
        agg_backup = f"Pop{pop_index}B"
        topology.add_routers([agg_primary, agg_backup])
        topology.add_link(agg_primary, agg_backup, weight=1, capacity=pop_capacity)
        attachments = rng.sample(core, 2)
        topology.add_link(agg_primary, attachments[0], weight=1, capacity=pop_capacity)
        topology.add_link(agg_backup, attachments[1], weight=1, capacity=pop_capacity)
        for _ in range(prefixes_per_pop):
            prefix = Prefix.parse(
                f"100.{prefix_counter // 256}.{prefix_counter % 256}.0/24"
            )
            topology.attach_prefix(agg_primary, prefix, cost=0)
            prefix_counter += 1

    topology.validate()
    return topology
