"""Small, well-known topologies used by tests and ablation benchmarks."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.igp.topology import DEFAULT_CAPACITY, Topology
from repro.util.errors import ValidationError
from repro.util.prefixes import Prefix

__all__ = ["abilene", "ring", "grid", "dumbbell"]


def _attach_loopbacks(topology: Topology, base: str = "10.255") -> None:
    """Attach one /32 loopback prefix per router so every router is a destination."""
    for index, router in enumerate(topology.routers):
        prefix = Prefix.parse(f"{base}.{index // 256}.{index % 256}/32")
        topology.attach_prefix(router, prefix, cost=0)


def abilene(capacity: float = DEFAULT_CAPACITY, with_loopbacks: bool = True) -> Topology:
    """An Abilene-like 11-node US research backbone.

    Link weights approximate relative geographic distances (scaled down to
    small integers); capacities are uniform.
    """
    topology = Topology(name="abilene")
    nodes = [
        "Seattle",
        "Sunnyvale",
        "LosAngeles",
        "Denver",
        "KansasCity",
        "Houston",
        "Chicago",
        "Indianapolis",
        "Atlanta",
        "WashingtonDC",
        "NewYork",
    ]
    topology.add_routers(nodes)
    links: List[Tuple[str, str, float]] = [
        ("Seattle", "Sunnyvale", 2),
        ("Seattle", "Denver", 3),
        ("Sunnyvale", "LosAngeles", 1),
        ("Sunnyvale", "Denver", 2),
        ("LosAngeles", "Houston", 4),
        ("Denver", "KansasCity", 2),
        ("KansasCity", "Houston", 2),
        ("KansasCity", "Indianapolis", 2),
        ("Houston", "Atlanta", 3),
        ("Chicago", "Indianapolis", 1),
        ("Chicago", "NewYork", 3),
        ("Indianapolis", "Atlanta", 2),
        ("Atlanta", "WashingtonDC", 2),
        ("WashingtonDC", "NewYork", 1),
    ]
    for first, second, weight in links:
        topology.add_link(first, second, weight=weight, capacity=capacity)
    if with_loopbacks:
        _attach_loopbacks(topology)
    topology.validate()
    return topology


def ring(size: int, capacity: float = DEFAULT_CAPACITY, with_loopbacks: bool = True) -> Topology:
    """A ring of ``size`` routers with unit weights."""
    if size < 3:
        raise ValidationError(f"a ring needs at least 3 routers, got {size}")
    topology = Topology(name=f"ring-{size}")
    names = [f"N{i}" for i in range(size)]
    topology.add_routers(names)
    for index in range(size):
        topology.add_link(names[index], names[(index + 1) % size], weight=1, capacity=capacity)
    if with_loopbacks:
        _attach_loopbacks(topology)
    topology.validate()
    return topology


def grid(
    rows: int,
    columns: int,
    capacity: float = DEFAULT_CAPACITY,
    with_loopbacks: bool = True,
) -> Topology:
    """A ``rows x columns`` grid with unit weights (rich in equal-cost paths)."""
    if rows < 1 or columns < 1:
        raise ValidationError(f"grid dimensions must be >= 1, got {rows}x{columns}")
    if rows * columns < 2:
        raise ValidationError("a grid needs at least 2 routers")
    topology = Topology(name=f"grid-{rows}x{columns}")

    def name(row: int, column: int) -> str:
        return f"G{row}_{column}"

    topology.add_routers(name(r, c) for r in range(rows) for c in range(columns))
    for row in range(rows):
        for column in range(columns):
            if column + 1 < columns:
                topology.add_link(name(row, column), name(row, column + 1), weight=1, capacity=capacity)
            if row + 1 < rows:
                topology.add_link(name(row, column), name(row + 1, column), weight=1, capacity=capacity)
    if with_loopbacks:
        _attach_loopbacks(topology)
    topology.validate()
    return topology


def dumbbell(
    pairs: int = 3,
    bottleneck_capacity: Optional[float] = None,
    edge_capacity: float = DEFAULT_CAPACITY,
    with_loopbacks: bool = True,
) -> Topology:
    """A dumbbell: ``pairs`` sources and sinks joined by a single bottleneck link.

    Classic congestion-study topology: all traffic competes for the
    ``Left``–``Right`` bottleneck, whose capacity defaults to half the edge
    capacity.
    """
    if pairs < 1:
        raise ValidationError(f"a dumbbell needs at least 1 pair, got {pairs}")
    if bottleneck_capacity is None:
        bottleneck_capacity = edge_capacity / 2
    topology = Topology(name=f"dumbbell-{pairs}")
    topology.add_routers(["Left", "Right"])
    topology.add_link("Left", "Right", weight=1, capacity=bottleneck_capacity)
    for index in range(pairs):
        source = f"Src{index}"
        sink = f"Dst{index}"
        topology.add_routers([source, sink])
        topology.add_link(source, "Left", weight=1, capacity=edge_capacity)
        topology.add_link("Right", sink, weight=1, capacity=edge_capacity)
    if with_loopbacks:
        _attach_loopbacks(topology)
    topology.validate()
    return topology
