"""The paper's demo network (Fig. 1) and its traffic scenario.

Topology (Fig. 1a).  Seven routers: the two ingress routers ``A`` and ``B``
(where the video servers S2 and S1 respectively attach), the transit routers
``R1``–``R4`` and the egress router ``C`` behind which the playback clients
(the "blue prefix") live.  Unspecified link weights are 1; three links carry
weight 2 (drawn next to A–R1, B–R3 and R2–R3 in the figure).  With these
weights:

* ``B``'s unique shortest path to the blue prefix is ``B–R2–C`` (cost 2);
* ``A``'s unique shortest path is ``A–B–R2–C`` (cost 3), so both sources
  overlap on ``B–R2–C`` exactly as Fig. 1a describes;
* the alternate paths ``B–R3–C`` (cost 3) and ``A–R1–R4–C`` (cost 4) are
  unused until the controller makes them equal-cost with lies.

Lies (Fig. 1c).  One fake node ``fB`` anchored at ``B`` resolving to ``R3``
with total cost 2 (tying with ``B``'s real path), and two fake nodes ``fA1``,
``fA2`` anchored at ``A`` resolving to ``R1`` with total cost 3 (tying with
``A``'s real path).  After resolution, ``B`` splits 1/2–1/2 between R2 and R3
and ``A`` splits 1/3–2/3 between B and R1 — the uneven ratios of Fig. 1d.

Traffic (Fig. 1b/1d and Fig. 2).  Each source pushes 100 relative units in
the static figure; the time-series experiment uses 1 Mbit/s video flows over
32 Mbit/s links with the arrival schedule of Fig. 2 (1 flow at t=0, +30 at
t=15 s, +31 from the second source at t=35 s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.igp.lsa import FakeNodeLsa
from repro.igp.topology import Topology
from repro.util.prefixes import Prefix
from repro.util.units import mbps

__all__ = [
    "BLUE_PREFIX",
    "SOURCE_PREFIXES",
    "DemoScenario",
    "build_demo_topology",
    "build_demo_scenario",
    "demo_lies",
]

#: The destination prefix of the playback clients (Fig. 1's "blue prefix").
BLUE_PREFIX = Prefix.parse("10.0.0.0/24")

#: Prefixes of the two video servers, attached at their ingress routers.
SOURCE_PREFIXES: Dict[str, Prefix] = {
    "S1": Prefix.parse("10.1.0.0/24"),
    "S2": Prefix.parse("10.2.0.0/24"),
}

#: Demo link capacity: 32 Mbit/s = 4e6 byte/s, the saturation level of Fig. 2.
DEMO_LINK_CAPACITY = mbps(32)

#: Nominal bitrate of one demo video flow (31 concurrent flows approach the
#: 4e6 byte/s mark of Fig. 2, i.e. roughly 1 Mbit/s each).
DEMO_VIDEO_BITRATE = mbps(1)


@dataclass(frozen=True)
class DemoScenario:
    """Everything needed to reproduce the paper's scenario end to end."""

    topology: Topology
    blue_prefix: Prefix
    #: Ingress router of each video server (S1 behind B, S2 behind A).
    server_routers: Dict[str, str]
    #: Router where the Fibbing controller peers with the IGP (R3 in §3).
    controller_attachment: str
    #: Static per-source demands of Fig. 1b, in relative units.
    static_demands: Dict[str, float]
    #: Links whose load the demo plots in Fig. 2.
    monitored_links: Tuple[Tuple[str, str], ...]
    #: Flow arrival schedule of Fig. 2: (time, server, number of new flows).
    flow_schedule: Tuple[Tuple[float, str, int], ...]
    video_bitrate: float
    link_capacity: float


def build_demo_topology(capacity: float = DEMO_LINK_CAPACITY) -> Topology:
    """Build the physical network of Fig. 1a."""
    topology = Topology(name="fibbing-demo")
    topology.add_routers(["A", "B", "R1", "R2", "R3", "R4", "C"])
    # Weight-1 links.
    topology.add_link("A", "B", weight=1, capacity=capacity)
    topology.add_link("B", "R2", weight=1, capacity=capacity)
    topology.add_link("R2", "C", weight=1, capacity=capacity)
    topology.add_link("R3", "C", weight=1, capacity=capacity)
    topology.add_link("R1", "R4", weight=1, capacity=capacity)
    topology.add_link("R4", "C", weight=1, capacity=capacity)
    # Weight-2 links (the three "2" annotations of Fig. 1a).
    topology.add_link("A", "R1", weight=2, capacity=capacity)
    topology.add_link("B", "R3", weight=2, capacity=capacity)
    topology.add_link("R2", "R3", weight=2, capacity=capacity)
    # Destination prefix of the clients, attached behind C.
    topology.attach_prefix("C", BLUE_PREFIX, cost=0)
    # Server prefixes, attached at their ingress routers so that return
    # traffic (client requests, ACKs) is routable too.
    topology.attach_prefix("B", SOURCE_PREFIXES["S1"], cost=0)
    topology.attach_prefix("A", SOURCE_PREFIXES["S2"], cost=0)
    topology.validate()
    return topology


def demo_lies(controller: str = "fibbing-controller") -> List[FakeNodeLsa]:
    """The exact lie set of Fig. 1c.

    One fake node at B (cost 1+1=2, resolving to R3) and two fake nodes at A
    (cost 1+2=3, resolving to R1).  The costs tie with the routers' existing
    shortest paths toward the blue prefix, which is what creates the extra
    equal-cost FIB entries.
    """
    return [
        FakeNodeLsa(
            origin=controller,
            fake_node="fB",
            anchor="B",
            link_cost=1.0,
            prefix=BLUE_PREFIX,
            prefix_cost=1.0,
            forwarding_address="R3",
        ),
        FakeNodeLsa(
            origin=controller,
            fake_node="fA1",
            anchor="A",
            link_cost=1.0,
            prefix=BLUE_PREFIX,
            prefix_cost=2.0,
            forwarding_address="R1",
        ),
        FakeNodeLsa(
            origin=controller,
            fake_node="fA2",
            anchor="A",
            link_cost=1.0,
            prefix=BLUE_PREFIX,
            prefix_cost=2.0,
            forwarding_address="R1",
        ),
    ]


def build_demo_scenario(capacity: float = DEMO_LINK_CAPACITY) -> DemoScenario:
    """Build the full demo scenario: topology, traffic, schedule and monitors."""
    topology = build_demo_topology(capacity=capacity)
    return DemoScenario(
        topology=topology,
        blue_prefix=BLUE_PREFIX,
        server_routers={"S1": "B", "S2": "A"},
        controller_attachment="R3",
        static_demands={"S1": 100.0, "S2": 100.0},
        monitored_links=(("A", "R1"), ("B", "R2"), ("B", "R3")),
        flow_schedule=(
            (0.0, "S1", 1),
            (15.0, "S1", 30),
            (35.0, "S2", 31),
        ),
        video_bitrate=DEMO_VIDEO_BITRATE,
        link_capacity=capacity,
    )
