"""Seeded random topology generators.

These are used by the optimality-gap and scaling benchmarks, which need a
family of networks larger and more varied than the 7-router demo.  All
generators take an explicit ``seed`` and are fully deterministic for a given
seed, per the reproducibility policy in DESIGN.md.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.igp.topology import DEFAULT_CAPACITY, Topology
from repro.util.errors import ValidationError
from repro.util.prefixes import Prefix

__all__ = ["random_topology", "waxman_topology", "attach_destination_prefixes"]


def attach_destination_prefixes(
    topology: Topology,
    routers: Optional[Sequence[str]] = None,
    base: str = "172.16",
) -> Dict[str, Prefix]:
    """Attach one /24 destination prefix to each router in ``routers``.

    Returns the mapping from router name to the prefix attached behind it.
    When ``routers`` is ``None`` every router receives a prefix.
    """
    if routers is None:
        routers = topology.routers
    octets = base.split(".")
    if len(octets) != 2 or not all(part.isdigit() and int(part) <= 255 for part in octets):
        raise ValidationError(f"base must look like 'a.b' (two octets), got {base!r}")
    first, second = (int(part) for part in octets)
    mapping: Dict[str, Prefix] = {}
    for index, router in enumerate(routers):
        if second + index // 256 > 255:
            raise ValidationError("too many routers to derive /24 prefixes from this base")
        prefix = Prefix.parse(f"{first}.{second + index // 256}.{index % 256}.0/24")
        # Guard against clashes when the base is reused across calls.
        if prefix in topology.prefixes:
            raise ValidationError(f"prefix {prefix} already attached; use a different base")
        topology.attach_prefix(router, prefix, cost=0)
        mapping[router] = prefix
    return mapping


def random_topology(
    num_routers: int,
    edge_probability: float = 0.3,
    seed: int = 0,
    weight_range: Tuple[int, int] = (1, 5),
    capacity: float = DEFAULT_CAPACITY,
    with_prefixes: bool = True,
) -> Topology:
    """Erdős–Rényi-style random topology, augmented to be connected.

    A random spanning tree is laid down first so that the result is always
    connected, then each remaining router pair is linked with probability
    ``edge_probability``.  Weights are integers drawn uniformly from
    ``weight_range``.
    """
    if num_routers < 2:
        raise ValidationError(f"need at least 2 routers, got {num_routers}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValidationError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = random.Random(seed)
    topology = Topology(name=f"random-{num_routers}-p{edge_probability}-s{seed}")
    names = [f"N{i}" for i in range(num_routers)]
    topology.add_routers(names)

    # Random spanning tree (random permutation, attach each node to a random
    # earlier node) guarantees connectivity.
    order = names[:]
    rng.shuffle(order)
    for index in range(1, len(order)):
        parent = order[rng.randrange(index)]
        weight = rng.randint(*weight_range)
        topology.add_link(order[index], parent, weight=weight, capacity=capacity)

    for i in range(num_routers):
        for j in range(i + 1, num_routers):
            if topology.has_link(names[i], names[j]):
                continue
            if rng.random() < edge_probability:
                weight = rng.randint(*weight_range)
                topology.add_link(names[i], names[j], weight=weight, capacity=capacity)

    if with_prefixes:
        attach_destination_prefixes(topology)
    topology.validate()
    return topology


def waxman_topology(
    num_routers: int,
    alpha: float = 0.6,
    beta: float = 0.4,
    seed: int = 0,
    capacity: float = DEFAULT_CAPACITY,
    with_prefixes: bool = True,
) -> Topology:
    """Waxman random graph: link probability decays with Euclidean distance.

    Routers are placed uniformly at random in the unit square; the probability
    of a link between routers at distance ``d`` is
    ``alpha * exp(-d / (beta * L))`` with ``L`` the maximal distance.  Link
    weights are the rounded distances (scaled to 1..10), which makes shortest
    paths follow geography, like real IGP-TE weight assignments tend to.
    A spanning tree over nearest neighbors keeps the graph connected.
    """
    if num_routers < 2:
        raise ValidationError(f"need at least 2 routers, got {num_routers}")
    if alpha <= 0 or beta <= 0:
        raise ValidationError("alpha and beta must be strictly positive")
    rng = random.Random(seed)
    topology = Topology(name=f"waxman-{num_routers}-s{seed}")
    names = [f"W{i}" for i in range(num_routers)]
    topology.add_routers(names)
    positions = {name: (rng.random(), rng.random()) for name in names}

    def distance(a: str, b: str) -> float:
        ax, ay = positions[a]
        bx, by = positions[b]
        return math.hypot(ax - bx, ay - by)

    def weight_for(a: str, b: str) -> int:
        return max(1, round(distance(a, b) * 10))

    max_distance = math.sqrt(2.0)
    # Connectivity first: attach each router to its nearest already-placed one.
    for index in range(1, len(names)):
        candidates = names[:index]
        nearest = min(candidates, key=lambda other: (distance(names[index], other), other))
        topology.add_link(
            names[index], nearest, weight=weight_for(names[index], nearest), capacity=capacity
        )

    for i in range(num_routers):
        for j in range(i + 1, num_routers):
            if topology.has_link(names[i], names[j]):
                continue
            probability = alpha * math.exp(-distance(names[i], names[j]) / (beta * max_distance))
            if rng.random() < probability:
                topology.add_link(
                    names[i], names[j], weight=weight_for(names[i], names[j]), capacity=capacity
                )

    if with_prefixes:
        attach_destination_prefixes(topology)
    topology.validate()
    return topology
