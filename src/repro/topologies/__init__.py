"""Topology builders: the paper's demo network plus synthetic topologies.

``demo``
    The 7-router network of the paper's Fig. 1, together with the traffic
    sources/destinations and the lie set of Fig. 1c, so every benchmark and
    example reconstructs the exact same scenario.
``zoo``
    Small, well-known topologies (Abilene-like backbone, ring, grid,
    dumbbell) used by unit tests and ablation benchmarks.
``random``
    Seeded random graph generators (Erdős–Rényi, Waxman) with weight and
    capacity assignment, used by the optimality-gap and scaling benchmarks.
``isp``
    Two-level synthetic ISP topologies (core + aggregation PoPs) used by the
    lie-count scaling ablation.
"""

from repro.topologies.demo import (
    DemoScenario,
    build_demo_topology,
    build_demo_scenario,
    demo_lies,
)
from repro.topologies.zoo import abilene, dumbbell, grid, ring
from repro.topologies.random import random_topology, waxman_topology
from repro.topologies.isp import synthetic_isp

__all__ = [
    "DemoScenario",
    "build_demo_topology",
    "build_demo_scenario",
    "demo_lies",
    "abilene",
    "dumbbell",
    "grid",
    "ring",
    "random_topology",
    "waxman_topology",
    "synthetic_isp",
]
