"""Monitoring substrate: SNMP-like link-load monitoring and notifications.

In the demo (§3), the Fibbing controller "monitors link loads using SNMP,
and is notified by the servers when they have a new client".  This package
provides those two channels:

``counters``
    Per-router SNMP-like agents exposing interface octet counters, backed by
    the data-plane engine.
``poller``
    A periodic poller that reads every agent's counters and converts the
    deltas into per-link rates.
``collector``
    Smoothed (EWMA) per-link utilisation view built from the poller samples.
``alarms``
    Threshold detection with hysteresis: fires when some link utilisation
    crosses the configured level, which is what triggers the controller's
    re-optimisation.
``notifications``
    The out-of-band server-to-controller channel carrying "new client"
    events, from which the controller derives per-ingress demand estimates.
"""

from repro.monitoring.counters import SnmpAgent, InterfaceStat
from repro.monitoring.poller import SnmpPoller, PollSample
from repro.monitoring.collector import LoadCollector, LinkLoadView
from repro.monitoring.alarms import UtilizationAlarm, AlarmEvent
from repro.monitoring.notifications import (
    NotificationBus,
    ClientNotification,
    ClientRegistry,
)

__all__ = [
    "SnmpAgent",
    "InterfaceStat",
    "SnmpPoller",
    "PollSample",
    "LoadCollector",
    "LinkLoadView",
    "UtilizationAlarm",
    "AlarmEvent",
    "NotificationBus",
    "ClientNotification",
    "ClientRegistry",
]
