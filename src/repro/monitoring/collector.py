"""Smoothed per-link utilisation view.

The collector turns raw poll samples into the per-link utilisation estimates
the controller's alarm logic evaluates.  An EWMA per link filters out
single-sample noise, like a production monitoring pipeline would, while
remaining responsive (the demo's controller reacts within a couple of poll
periods).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.igp.topology import Topology
from repro.monitoring.poller import PollSample
from repro.util.errors import MonitoringError
from repro.util.stats import Ewma
from repro.util.validation import check_fraction

__all__ = ["LinkLoadView", "LoadCollector"]

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class LinkLoadView:
    """The collector's current estimate for one directed link."""

    link: LinkKey
    rate: float
    capacity: float

    @property
    def utilization(self) -> float:
        """Estimated utilisation (load / capacity)."""
        return self.rate / self.capacity if self.capacity > 0 else 0.0


class LoadCollector:
    """Maintains an EWMA-smoothed utilisation estimate per directed link."""

    def __init__(self, topology: Topology, alpha: float = 0.6) -> None:
        self.topology = topology
        self.alpha = check_fraction(alpha, "alpha")
        if self.alpha == 0.0:
            raise MonitoringError("alpha must be strictly positive")
        self._estimates: Dict[LinkKey, Ewma] = {
            link.key: Ewma(alpha=self.alpha) for link in topology.links
        }
        # Capacities are read through the topology, keyed on its revision:
        # a Topology.set_capacity event (a degraded link) must reach the
        # alarm utilisation at the next read, not stay frozen at the
        # construction-time value.
        self._capacities: Dict[LinkKey, float] = {}
        self._capacity_revision: Optional[int] = None
        self._refresh_capacities()
        self.last_update: Optional[float] = None

    def _refresh_capacities(self) -> None:
        """Sync the monitored link set with the topology when its revision moved.

        Links that vanished from the topology (failures, maintenance) are
        dropped outright — estimate and capacity entry both — mirroring the
        poller's vanished-interface cleanup: the agents stop reporting them,
        so a retained entry could only ever feed the alarm a phantom
        utilisation against state that no longer exists.  Links that
        appeared (restorations, provisioning) start monitoring with a fresh
        EWMA; surviving links re-read their capacity so provisioning events
        reach the alarm at the next read.
        """
        revision = self.topology.revision
        if revision == self._capacity_revision:
            return
        current = {link.key: link.capacity for link in self.topology.links}
        for key in list(self._estimates):
            if key not in current:
                del self._estimates[key]
                self._capacities.pop(key, None)
        for key, capacity in current.items():
            if key not in self._estimates:
                self._estimates[key] = Ewma(alpha=self.alpha)
            self._capacities[key] = capacity
        self._capacity_revision = revision

    def ingest(self, sample: PollSample) -> None:
        """Fold one poll sample into the estimates (idle links decay toward 0)."""
        self._refresh_capacities()
        for link, ewma in self._estimates.items():
            ewma.update(sample.rates.get(link, 0.0))
        self.last_update = sample.time

    def rate(self, source: str, target: str) -> float:
        """Smoothed rate estimate for a directed link (bit/s)."""
        self._refresh_capacities()
        key = (source, target)
        if key not in self._estimates:
            raise MonitoringError(f"link {source}->{target} is not monitored")
        return self._estimates[key].value

    def utilization(self, source: str, target: str) -> float:
        """Smoothed utilisation estimate for a directed link."""
        self._refresh_capacities()
        key = (source, target)
        if key not in self._estimates:
            raise MonitoringError(f"link {source}->{target} is not monitored")
        capacity = self._capacities[key]
        return self._estimates[key].value / capacity if capacity > 0 else 0.0

    def views(self) -> List[LinkLoadView]:
        """Current estimate for every monitored link, sorted by link key."""
        self._refresh_capacities()
        return [
            LinkLoadView(link=key, rate=self._estimates[key].value, capacity=self._capacities[key])
            for key in sorted(self._estimates)
        ]

    def max_utilization(self) -> float:
        """Largest estimated utilisation across all monitored links."""
        return max((view.utilization for view in self.views()), default=0.0)

    def links_above(self, threshold: float) -> List[LinkLoadView]:
        """Monitored links whose estimated utilisation is >= ``threshold``."""
        return [view for view in self.views() if view.utilization >= threshold]
