"""Server-to-controller notification channel.

In the demo, video servers notify the Fibbing controller whenever they gain
(or lose) a playback client.  The controller uses those notifications to
estimate how much demand enters the network at each ingress router toward
each destination prefix — the traffic matrix its optimizer needs — without
having to infer demands from link counters alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.dataplane.demand import TrafficMatrix
from repro.util.errors import MonitoringError
from repro.util.prefixes import Prefix
from repro.util.validation import check_positive

__all__ = ["ClientNotification", "NotificationBus", "ClientRegistry"]


@dataclass(frozen=True)
class ClientNotification:
    """One notification: a server gained or lost a client.

    ``ingress`` is the router where the server's traffic enters the network,
    ``prefix`` the destination prefix the client belongs to, ``bitrate`` the
    per-client video bitrate, and ``delta`` is the signed client-count
    change: +1/-1 for an individual viewer, ±n when a server announces a
    whole flash-crowd cohort (an aggregate demand class) in one message.
    """

    time: float
    server: str
    ingress: str
    prefix: Prefix
    bitrate: float
    delta: int = 1

    def __post_init__(self) -> None:
        check_positive(self.bitrate, "bitrate")
        if not isinstance(self.delta, int) or isinstance(self.delta, bool) or self.delta == 0:
            raise MonitoringError(f"delta must be a non-zero int, got {self.delta!r}")


class NotificationBus:
    """Simple synchronous publish/subscribe channel for client notifications."""

    def __init__(self) -> None:
        self._subscribers: List[Callable[[ClientNotification], None]] = []
        self.published: List[ClientNotification] = []

    def subscribe(self, callback: Callable[[ClientNotification], None]) -> None:
        """Register ``callback(notification)`` for every future publication."""
        self._subscribers.append(callback)

    def publish(self, notification: ClientNotification) -> None:
        """Deliver ``notification`` to every subscriber, in registration order."""
        self.published.append(notification)
        for callback in self._subscribers:
            callback(notification)


class ClientRegistry:
    """Aggregates client notifications into per-(ingress, prefix) demands."""

    def __init__(self) -> None:
        self._clients: Dict[Tuple[str, Prefix], int] = {}
        self._bitrates: Dict[Tuple[str, Prefix], float] = {}

    def observe(self, notification: ClientNotification) -> None:
        """Fold one notification into the registry."""
        key = (notification.ingress, notification.prefix)
        count = self._clients.get(key, 0) + notification.delta
        if count < 0:
            raise MonitoringError(
                f"client count for {key} became negative; unmatched departure notification"
            )
        self._clients[key] = count
        self._bitrates[key] = notification.bitrate

    def client_count(self, ingress: str, prefix: Prefix) -> int:
        """Active clients served from ``ingress`` toward ``prefix``."""
        return self._clients.get((ingress, prefix), 0)

    def total_clients(self) -> int:
        """Total number of active clients across all servers."""
        return sum(self._clients.values())

    def demand_matrix(self) -> TrafficMatrix:
        """Estimated traffic matrix: client count x bitrate per (ingress, prefix)."""
        matrix = TrafficMatrix()
        for (ingress, prefix), count in self._clients.items():
            if count > 0:
                matrix.add(ingress, prefix, count * self._bitrates[(ingress, prefix)])
        return matrix

    def attach(self, bus: NotificationBus) -> None:
        """Subscribe this registry to a notification bus."""
        bus.subscribe(self.observe)
