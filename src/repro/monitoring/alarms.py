"""Utilisation threshold alarms with hysteresis.

The alarm watches the collector after every poll and fires a callback when
at least one link's estimated utilisation crosses the configured threshold.
Two pieces of hysteresis keep it from flapping:

* a *clear* threshold below the *raise* threshold — the alarm only re-arms
  after every link dropped below the clear level;
* a *cooldown* period after each firing, during which the alarm stays
  silent even if the condition persists (the controller needs time for its
  lies to propagate and take effect before being asked again).

Each firing feeds the on-demand load balancer's ``react()`` — the single
entry point whether the balancer drives one controller or a
:class:`~repro.core.shard.ShardedFibbingController` fleet, in which case the
resulting requirement wave is partitioned and planned per shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.monitoring.collector import LinkLoadView, LoadCollector
from repro.monitoring.poller import PollSample
from repro.util.errors import MonitoringError
from repro.util.validation import check_non_negative

__all__ = ["AlarmEvent", "UtilizationAlarm"]


@dataclass(frozen=True)
class AlarmEvent:
    """One firing of the alarm: when it fired and which links were hot."""

    time: float
    hot_links: Tuple[LinkLoadView, ...]

    @property
    def worst_utilization(self) -> float:
        """Utilisation of the most loaded link in the event."""
        return max((view.utilization for view in self.hot_links), default=0.0)

    @property
    def hot_link_keys(self) -> Tuple[Tuple[str, str], ...]:
        """The ``(source, target)`` keys of the hot links.

        The controller-facing view: the load balancer's ``react()`` records
        these on each :class:`~repro.core.loadbalancer.RebalanceAction`, and
        comparing them across consecutive events tells the reconciler
        whether an alarm re-fired for the *same* congestion (in which case
        an unchanged demand matrix makes the whole reaction a plan-cache
        hit) or for a new hot spot.  With a sharded controller
        (:class:`~repro.core.shard.ShardedFibbingController`) behind the
        balancer, an alarm whose surge touches only some prefixes dirties
        only the shards owning them: the other shard sub-waves stay clean
        (``shard_clean`` in the action's counter snapshot) and are served
        entirely from their plan caches.
        """
        return tuple(view.link for view in self.hot_links)


class UtilizationAlarm:
    """Fires a callback when some link utilisation exceeds a threshold."""

    def __init__(
        self,
        collector: LoadCollector,
        raise_threshold: float = 0.9,
        clear_threshold: Optional[float] = None,
        cooldown: float = 3.0,
        staleness_horizon: Optional[float] = None,
    ) -> None:
        """Create an alarm over ``collector``.

        ``staleness_horizon`` (seconds, ``None`` disables the check) guards
        the degraded-monitoring path: when SNMP polls time out and are
        omitted (see :meth:`~repro.monitoring.poller.SnmpPoller.set_timeouts`),
        the next successful sample averages its rates over the whole elapsed
        gap.  A sample whose ``interval`` exceeds the horizon is too stale
        to act on — the measured average says little about the *current*
        load — so the alarm stays silent for it (counted in
        :attr:`suppressed_stale`) instead of asking the controller to react
        to phantom congestion.
        """
        if not 0.0 < raise_threshold:
            raise MonitoringError(f"raise_threshold must be positive, got {raise_threshold}")
        if clear_threshold is None:
            clear_threshold = raise_threshold * 0.8
        if clear_threshold <= 0.0:
            raise MonitoringError(
                f"clear_threshold must be positive, got {clear_threshold} "
                "(a zero clear level could never re-arm the alarm)"
            )
        if clear_threshold > raise_threshold:
            raise MonitoringError(
                f"clear_threshold ({clear_threshold}) must not exceed raise_threshold "
                f"({raise_threshold})"
            )
        self.collector = collector
        self.raise_threshold = raise_threshold
        self.clear_threshold = clear_threshold
        self.cooldown = check_non_negative(cooldown, "cooldown")
        if staleness_horizon is not None:
            staleness_horizon = check_non_negative(staleness_horizon, "staleness_horizon")
        self.staleness_horizon = staleness_horizon
        #: Samples on which a decision was suppressed for staleness.
        self.suppressed_stale = 0
        self.events: List[AlarmEvent] = []
        self._listeners: List[Callable[[AlarmEvent], None]] = []
        self._armed = True
        self._last_fired: Optional[float] = None

    def on_alarm(self, listener: Callable[[AlarmEvent], None]) -> None:
        """Register ``listener(event)`` invoked every time the alarm fires."""
        self._listeners.append(listener)

    @property
    def last_event(self) -> Optional[AlarmEvent]:
        """The most recent firing (``None`` before the first one)."""
        return self.events[-1] if self.events else None

    def check(self, sample: PollSample) -> Optional[AlarmEvent]:
        """Evaluate the alarm after a poll; returns the event if it fired.

        Intended to be registered as a poller listener *after* the collector
        (the collector must ingest the sample first); for convenience it can
        also be wired through :meth:`wire`.
        """
        if (
            self.staleness_horizon is not None
            and sample.interval > self.staleness_horizon
        ):
            # Degraded monitoring: the sample covers a gap longer than the
            # horizon (omitted polls), so its averaged rates are too stale
            # to base a reaction on.  No firing, no re-arming — the next
            # fresh sample decides.
            self.suppressed_stale += 1
            return None
        hot = self.collector.links_above(self.raise_threshold)
        if not hot:
            if not self.collector.links_above(self.clear_threshold):
                self._armed = True
            return None
        if self._last_fired is not None and sample.time - self._last_fired < self.cooldown:
            # Within the cooldown the alarm stays silent even if the
            # condition persists (armed or not).
            return None
        if not self._armed:
            # Not re-armed: the congestion never dropped below the clear
            # threshold since the last firing.  Stay silent unless the
            # cooldown re-fire applies — the cooldown fully elapsed and the
            # congestion persists, meaning the previous mitigation was
            # insufficient and the controller must be asked again.
            cooldown_refire = (
                self._last_fired is not None
                and sample.time - self._last_fired >= self.cooldown
            )
            if not cooldown_refire:
                return None
        event = AlarmEvent(time=sample.time, hot_links=tuple(hot))
        self.events.append(event)
        self._armed = False
        self._last_fired = sample.time
        for listener in self._listeners:
            listener(event)
        return event

    def wire(self, poller) -> None:
        """Attach collector ingestion and alarm evaluation to a poller, in order."""
        poller.on_sample(self.collector.ingest)
        poller.on_sample(self.check)
