"""SNMP-like per-router interface counters.

Each :class:`SnmpAgent` represents the SNMP agent of one router and exposes
one monotonically increasing octet counter per outgoing interface (directed
link), read from the data-plane engine.  The poller talks to agents, not to
the engine directly, so the controller's code path is identical to the real
deployment: it only ever sees (interface, octet-counter) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.dataplane.engine import DataPlaneEngine
from repro.igp.rib_cache import RibCounters
from repro.igp.spf_cache import SpfCounters
from repro.igp.topology import Topology
from repro.util.errors import MonitoringError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.igp.network import IgpNetwork

__all__ = [
    "InterfaceStat",
    "SnmpAgent",
    "build_agents",
    "collect_counters",
    "collect_spf_counters",
]


@dataclass(frozen=True)
class InterfaceStat:
    """One reading of an interface counter."""

    router: str
    neighbor: str
    out_octets: float

    @property
    def interface(self) -> str:
        """Human-readable interface name, e.g. ``"A->R1"``."""
        return f"{self.router}->{self.neighbor}"


class SnmpAgent:
    """The SNMP agent of one router, exposing per-interface octet counters."""

    def __init__(self, router: str, topology: Topology, engine: DataPlaneEngine) -> None:
        if not topology.has_router(router):
            raise MonitoringError(f"cannot create an SNMP agent for unknown router {router!r}")
        self.router = router
        self.topology = topology
        self.engine = engine

    @property
    def interfaces(self) -> List[str]:
        """Neighbors reachable over one directed link (one interface each), sorted."""
        return self.topology.neighbors(self.router)

    def read_interface(self, neighbor: str) -> InterfaceStat:
        """Read the out-octets counter of the interface toward ``neighbor``."""
        if neighbor not in self.interfaces:
            raise MonitoringError(
                f"router {self.router!r} has no interface toward {neighbor!r}"
            )
        octets = self.engine.link_transmitted_bytes(self.router, neighbor)
        return InterfaceStat(router=self.router, neighbor=neighbor, out_octets=octets)

    def read_all(self) -> List[InterfaceStat]:
        """Read every interface counter of this router."""
        return [self.read_interface(neighbor) for neighbor in self.interfaces]


def build_agents(topology: Topology, engine: DataPlaneEngine) -> Dict[str, SnmpAgent]:
    """One SNMP agent per router of the topology."""
    return {router: SnmpAgent(router, topology, engine) for router in topology.routers}


def collect_counters(network: "IgpNetwork") -> Dict[str, Dict[str, int]]:
    """Per-router SPF and RIB cache counters, plus the domain-wide aggregate.

    This is the monitoring-plane view of the incremental engines: for
    every router it reports how many SPF triggers were served from cache,
    repaired incrementally from the dirty-edge delta log, recomputed in full,
    or fell back after an oversized delta (under ``REPRO_KERNEL=numpy`` the
    ``spf_kernel_computes``/``spf_kernel_updates``/``spf_kernel_index_builds``
    keys additionally count array-kernel Dijkstra runs, repairs and CSR
    index compilations) — and, one layer up, how many RIB
    resolutions were cache hits, per-prefix dirty repairs, full prefix
    rescans, or fallbacks past the dirty-prefix threshold (the ``rib_*``
    keys).  The ``"dataplane"`` entry carries the flow-level ``dp_*``
    counters of every data-plane engine registered with the network (paths
    reused vs. re-walked, warm-started vs. full fair-share allocations,
    plus the aggregate engine's ``dp_classes_rewalked`` /
    ``dp_classes_reused`` / ``dp_classes_splits`` demand-class mirror of
    the flow pair); the
    ``"controller"`` entry carries the ``ctl_*`` reconciliation counters of
    every registered controller (requirement plans served from the plan
    cache vs. recomputed, lies injected/retracted/kept, threshold
    fallbacks), *merged across controllers* — several controllers (or one
    sharded facade whose view folds its shards in) on one network each
    contribute exactly once — plus the ``shard_*`` wave-dispatch counters
    of any registered :class:`~repro.core.shard.ShardedFibbingController`;
    the ``"faults"`` entry carries the ``fault_*`` chaos accounting of every
    registered :class:`~repro.core.chaos.FaultInjector` (links
    downed/restored, LSAs dropped in flight, polls timed out/omitted,
    controller crashes/restarts — all zero on clean runs); the ``"total"``
    entry merges all five layers and matches
    :attr:`repro.igp.network.IgpNetwork.spf_stats`.
    """
    per_router: Dict[str, Dict[str, int]] = {}
    total = SpfCounters()
    rib_total = RibCounters()
    for name, process in sorted(network.routers.items()):
        per_router[name] = {
            **process.spf_cache.counters.snapshot(),
            **process.rib_cache.counters.snapshot(),
        }
        total.merge(process.spf_cache.counters)
        rib_total.merge(process.rib_cache.counters)
    dataplane = network.dataplane_counters()
    controller = network.controller_counters()
    shard = network.shard_counters()
    faults = network.fault_counters()
    per_router["dataplane"] = dataplane.snapshot()
    per_router["controller"] = {**controller.snapshot(), **shard.snapshot()}
    per_router["faults"] = faults.snapshot()
    per_router["total"] = {
        **total.snapshot(),
        **rib_total.snapshot(),
        **dataplane.snapshot(),
        **controller.snapshot(),
        **shard.snapshot(),
        **faults.snapshot(),
    }
    return per_router


#: Backwards-compatible alias: the collector predates the data-plane layer
#: and used to report SPF/RIB counters only.
collect_spf_counters = collect_counters
