"""Periodic SNMP polling.

The poller wakes up every ``poll_interval`` seconds of simulated time, reads
all interface counters from every agent, converts the octet deltas into
per-link bit rates, and hands the resulting :class:`PollSample` to its
listeners (typically a :class:`~repro.monitoring.collector.LoadCollector`).

The polling period is the dominant term of the controller's reaction time
(ablation A1 in DESIGN.md): congestion can only be noticed at the next poll.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.monitoring.counters import SnmpAgent
from repro.util.errors import MonitoringError
from repro.util.timeline import Timeline
from repro.util.validation import check_non_negative, check_positive

__all__ = ["PollSample", "SnmpPoller"]

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class PollSample:
    """Per-link average rates (bit/s) measured over one polling interval."""

    time: float
    interval: float
    rates: Dict[LinkKey, float]

    def rate_of(self, source: str, target: str) -> float:
        """Measured rate on ``source -> target`` (0.0 when idle or unknown)."""
        return self.rates.get((source, target), 0.0)


class SnmpPoller:
    """Polls every agent's counters on a fixed period and derives link rates."""

    def __init__(
        self,
        agents: Mapping[str, SnmpAgent],
        timeline: Timeline,
        poll_interval: float = 1.0,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not agents:
            raise MonitoringError("the poller needs at least one SNMP agent")
        self.agents = dict(agents)
        self.timeline = timeline
        self.poll_interval = check_positive(poll_interval, "poll_interval")
        # Per-poll schedule jitter: each poll fires poll_interval ± U(jitter)
        # seconds after the previous one, drawn from an *explicit* RNG so
        # runs stay deterministic and sweep-reproducible.  jitter=0 draws
        # nothing at all — the zero-jitter schedule is byte-identical to the
        # fixed-period poller whether or not an RNG is supplied.
        self.jitter = check_non_negative(jitter, "jitter")
        if self.jitter >= self.poll_interval:
            raise MonitoringError(
                f"jitter ({self.jitter}) must stay below poll_interval "
                f"({self.poll_interval}) so polls never coincide or reorder"
            )
        if self.jitter > 0.0 and rng is None:
            raise MonitoringError(
                "a jittered poller needs an explicit random.Random (rng=) "
                "so the poll schedule is reproducible"
            )
        self.rng = rng
        # Fault-injection knobs (see core.chaos): each poll attempt times
        # out with probability ``timeout_rate`` (drawn from an explicit
        # seeded RNG), is retried up to ``max_retries`` times with
        # exponential backoff (retry k fires ``retry_backoff * 2**k``
        # seconds later), and is *omitted* — no sample at all this round —
        # when every retry times out too.  The baseline reading survives an
        # omission, so the next successful poll measures its rates over the
        # whole elapsed gap; downstream consumers see that as a long
        # ``sample.interval`` (the alarm's staleness horizon keys on it).
        # At the default rate of 0.0 no random numbers are drawn and every
        # poll succeeds immediately.
        self.timeout_rate: float = 0.0
        self.timeout_rng: Optional[random.Random] = None
        self.max_retries: int = 2
        self.retry_backoff: float = 0.1
        self.poll_timeouts = 0
        self.poll_omissions = 0
        self.polls_performed = 0
        #: Counter resets/wraps observed: negative octet deltas re-baseline
        #: the link (no rate reported that interval) instead of silently
        #: reporting it idle.
        self.poll_counter_resets = 0
        self.samples: List[PollSample] = []
        self._listeners: List[Callable[[PollSample], None]] = []
        self._previous_counters: Dict[LinkKey, float] = {}
        self._previous_time = timeline.now
        self._started = False

    def set_timeouts(
        self,
        rate: float,
        rng: Optional[random.Random] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
    ) -> None:
        """Configure SNMP timeout fault injection (see the class attributes).

        ``rate`` is the per-attempt timeout probability; ``rng`` must be an
        explicit seeded ``random.Random`` whenever it is positive.
        """
        rate = check_non_negative(rate, "timeout rate")
        if rate > 1.0:
            raise MonitoringError(f"timeout rate must be at most 1.0, got {rate}")
        if rate > 0.0 and rng is None:
            raise MonitoringError(
                "a seeded random.Random is required when the timeout rate is positive"
            )
        if max_retries < 0:
            raise MonitoringError(f"max_retries must be >= 0, got {max_retries}")
        self.timeout_rate = rate
        self.timeout_rng = rng
        self.max_retries = max_retries
        self.retry_backoff = check_non_negative(retry_backoff, "retry_backoff")

    def on_sample(self, listener: Callable[[PollSample], None]) -> None:
        """Register ``listener(sample)`` invoked after every poll."""
        self._listeners.append(listener)

    def start(self) -> None:
        """Schedule the first poll (idempotent)."""
        if self._started:
            return
        self._started = True
        # Take a baseline reading so the first real poll measures a delta.
        self._previous_counters = self._read_counters()
        self._previous_time = self.timeline.now
        self._schedule_next_poll()

    def _schedule_next_poll(self) -> None:
        delay = self.poll_interval
        if self.jitter > 0.0:
            delay += self.rng.uniform(-self.jitter, self.jitter)
        self.timeline.schedule_in(delay, self._poll, label="snmp-poll")

    def _read_counters(self) -> Dict[LinkKey, float]:
        counters: Dict[LinkKey, float] = {}
        for router in sorted(self.agents):
            for stat in self.agents[router].read_all():
                counters[(stat.router, stat.neighbor)] = stat.out_octets
        return counters

    def _poll(self) -> None:
        self._attempt(0)

    def _attempt(self, attempt: int) -> None:
        if (
            self.timeout_rate > 0.0
            and self.timeout_rng is not None
            and self.timeout_rng.random() < self.timeout_rate
        ):
            self.poll_timeouts += 1
            if attempt < self.max_retries:
                self.timeline.schedule_in(
                    self.retry_backoff * (2.0 ** attempt),
                    lambda: self._attempt(attempt + 1),
                    label="snmp-poll-retry",
                )
            else:
                # Every retry timed out: this polling round produces no
                # sample.  The baseline counters/time survive, so the next
                # successful poll averages over the whole gap.
                self.poll_omissions += 1
                self._schedule_next_poll()
            return
        now = self.timeline.now
        counters = self._read_counters()
        interval = now - self._previous_time
        rates: Dict[LinkKey, float] = {}
        if interval > 0:
            for link, octets in counters.items():
                delta = octets - self._previous_counters.get(link, 0.0)
                if delta > 0:
                    rates[link] = delta * 8.0 / interval
                elif delta < 0:
                    # An agent restart or 64-bit counter wrap: the reading
                    # went backwards.  The delta is meaningless, so no rate
                    # is reported this interval; the link re-baselines at the
                    # new reading (the wholesale counter replacement below)
                    # and measures normally from the next poll on.
                    self.poll_counter_resets += 1
        sample = PollSample(time=now, interval=interval, rates=rates)
        self.polls_performed += 1
        self.samples.append(sample)
        # Wholesale replacement: links that vanished from the agents' reads
        # (failed links are dropped from the topology's neighbor sets) leave
        # no stale baseline entry behind.
        self._previous_counters = counters
        self._previous_time = now
        for listener in self._listeners:
            listener(sample)
        self._schedule_next_poll()
