"""Fleet-scale parallel sweep harness with ``BENCH_*.json`` artifacts.

The paper's evaluation is a *grid* of runs — seeds × topologies × wave
sizes for Fig. 1/Fig. 2, the A4/A5/A6 scaling rows — and every run is
embarrassingly parallel with respect to the others.  This module turns the
``experiments/`` harnesses into a declarative grid executor:

* :class:`GridSpec` / :class:`SweepGrid` declare the grid (experiment ×
  seeds × parameter choices); :meth:`SweepGrid.expand` produces a
  deterministic, ordered list of :class:`RunSpec` runs.
* :class:`SweepHarness` executes the runs through a
  :mod:`concurrent.futures` pool (``parallel="serial" | "thread" |
  "process"``, mirroring the ``core.shard`` executor knob that paved the
  pickling groundwork — :class:`~repro.util.prefixes.Prefix` already
  crosses process boundaries).  Every cache lineage an experiment builds
  (``SpfCache``/``RibCache``/``PlanCache``, engine path caches) is created
  *inside* the run, so each worker process owns its lineages outright and
  no cache state crosses process boundaries; every run derives its
  randomness from an explicit ``random.Random(seed)`` threaded through the
  experiment entry points, never from module-level RNG state — so results
  are independent of which worker executes a run and in what order.
* :class:`SweepReport` merges the per-run counter snapshots (the same
  ``spf_*``/``rib_*``/``dp_*``/``ctl_*``/``shard_*`` key space that
  :func:`repro.monitoring.counters.collect_counters` aggregates within one
  run) plus per-run wall-clock timings into one report, and saves it as a
  machine-readable ``BENCH_<name>.json`` at the repository root (schema:
  :data:`repro.util.artifacts.BENCH_SCHEMA`) so the perf trajectory is
  tracked across PRs.

Determinism is the contract: each run's ``digest`` hashes its result rows
with wall-clock fields stripped, so for the same grid + seeds the per-run
digests and the merged counters are byte-identical between
``parallel="serial"`` and ``parallel="process"`` — ``repro sweep --check``
(and the CI smoke) verifies exactly that.  A failed run fails the whole
sweep with the worker's traceback embedded in the :class:`SweepError`;
worker failures are never silently dropped.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.util.artifacts import bench_json_path, write_bench_json
from repro.util.errors import SweepError

__all__ = [
    "PARALLEL_MODES",
    "EXPERIMENTS",
    "SWEEPS",
    "Experiment",
    "GridSpec",
    "SweepGrid",
    "RunSpec",
    "RunResult",
    "SweepHarness",
    "SweepReport",
    "register_experiment",
    "merge_counter_snapshots",
    "run_digest",
]

#: Accepted values of the ``parallel=`` knob (same set as ``core.shard``).
PARALLEL_MODES = ("serial", "thread", "process")


# --------------------------------------------------------------------- #
# Result digests and counter merging
# --------------------------------------------------------------------- #
def _strip_timings(value):
    """Drop wall-clock fields (``*seconds``) from a row tree.

    Timings legitimately differ between serial and parallel executions of
    the same run; everything else must not.  The digest therefore covers
    the rows with timing keys removed, recursively.
    """
    if isinstance(value, Mapping):
        return {
            key: _strip_timings(item)
            for key, item in value.items()
            if not str(key).endswith("seconds")
        }
    if isinstance(value, (list, tuple)):
        return [_strip_timings(item) for item in value]
    return value


def run_digest(rows: Sequence[Mapping[str, object]]) -> str:
    """SHA-256 over the canonical JSON of ``rows`` with timings stripped."""
    canonical = json.dumps(_strip_timings(list(rows)), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def merge_counter_snapshots(
    snapshots: Iterable[Mapping[str, int]]
) -> Dict[str, int]:
    """Key-wise sum of per-run counter snapshots (sorted keys).

    The within-run mirror of this is
    :func:`repro.monitoring.counters.collect_counters`'s ``"total"`` entry;
    here the same counter key space is merged *across* runs of a sweep.
    """
    merged: Dict[str, int] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            merged[key] = merged.get(key, 0) + int(value)
    return dict(sorted(merged.items()))


# --------------------------------------------------------------------- #
# Experiment registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Experiment:
    """One sweepable experiment: a pure ``fn(seed, params)`` entry point.

    ``fn`` must return ``(rows, counters)`` — a list of JSON-serialisable
    row mappings and a flat ``{counter: int}`` snapshot — and must derive
    all randomness from an explicit ``random.Random(seed)`` (no module-level
    RNG), so a run is a pure function of ``(seed, params)`` regardless of
    which pool worker executes it.
    """

    name: str
    fn: Callable[[int, Dict[str, object]], Tuple[List[Mapping[str, object]], Dict[str, int]]]
    description: str = ""


def _flashcrowd_experiment(seed, params):
    """A4 — data-plane flash-crowd scaling (seed jitters per-flow rates)."""
    from repro.experiments.scaling import run_flashcrowd_scaling

    rows = run_flashcrowd_scaling(seed=seed, **params)
    counters = merge_counter_snapshots(
        {
            "dp_flows_rerouted": row.flows_rerouted,
            "dp_flows_reused": row.flows_reused,
            "dp_alloc_warm_starts": row.alloc_warm_starts,
            "dp_alloc_full": row.alloc_full,
            "dp_fallbacks": row.fallbacks,
        }
        for row in rows
    )
    return [asdict(row) for row in rows], counters


def _reconcile_experiment(seed, params):
    """A5 — controller reconciliation scaling (seed draws the churn order)."""
    from repro.experiments.scaling import run_reconcile_scaling

    rows = run_reconcile_scaling(seed=seed, **params)
    counters = merge_counter_snapshots(
        {
            "ctl_plan_cache_hits": row.plan_cache_hits,
            "ctl_plans_recomputed": row.plans_recomputed,
            "ctl_lies_injected": row.lies_injected,
            "ctl_lies_retracted": row.lies_retracted,
            "ctl_lies_kept": row.lies_kept,
            "ctl_fallbacks": row.fallbacks,
        }
        for row in rows
    )
    return [asdict(row) for row in rows], counters


def _shard_experiment(seed, params):
    """A6 — sharded-controller scaling (seed draws the churned shard)."""
    from repro.experiments.scaling import run_shard_scaling

    rows = run_shard_scaling(seed=seed, **params)
    counters = merge_counter_snapshots(
        {
            "ctl_plans_recomputed": row.sharded_plans_recomputed,
            "ctl_plan_cache_hits": row.sharded_plan_cache_hits,
            "shard_dirty": row.shard_dirty,
            "shard_clean": row.shard_clean,
            "shard_waves_parallel": row.waves_parallel,
            "shard_waves_serial": row.waves_serial,
        }
        for row in rows
    )
    return [asdict(row) for row in rows], counters


def _lie_scaling_experiment(seed, params):
    """A2 — lie-count scaling (seed feeds topology + demand generation)."""
    from repro.experiments.scaling import run_lie_scaling

    rows = run_lie_scaling(seed=seed, **params)
    counters = merge_counter_snapshots(
        {
            "lies_without_merger": row.lies_without_merger,
            "lies_with_merger": row.lies_with_merger,
        }
        for row in rows
    )
    return [asdict(row) for row in rows], counters


def _split_approx_experiment(seed, params):
    """A3 — split-approximation error (seed draws the sampled targets)."""
    from repro.experiments.scaling import run_split_approximation

    rows = run_split_approximation(seed=seed, **params)
    return [asdict(row) for row in rows], {"split_tables": len(rows)}


def _flashcrowd_classes_experiment(seed, params):
    """Scaled class-level flash crowd (seed draws the ECMP hash salt)."""
    from repro.experiments.flashcrowd_classes import run_flashcrowd_classes

    result = run_flashcrowd_classes(seed=seed, keep_demo_result=False, **params)
    row = {
        "sessions": result.sessions,
        "scale": result.scale,
        "smooth_sessions": result.qoe.smooth_sessions,
        "stalled_sessions": result.qoe.stalled_sessions,
        "total_stall_time": round(result.qoe.total_stall_time, 9),
        "peak_utilization": round(result.peak_utilization, 9),
        "alarms": result.alarms,
        "actions": result.actions,
        "lies_active": result.lies_active,
        "wall_seconds": result.wall_seconds,
    }
    counters = {
        key: value
        for key, value in result.dataplane_stats.items()
        if isinstance(value, int)
    }
    return [row], counters


def _fig2_experiment(seed, params):
    """Fig. 2 — the full closed-loop demo (seed draws the flow hash salt)."""
    from repro.experiments.fig2 import run_demo_timeseries

    result = run_demo_timeseries(seed=seed, **params)
    row = {
        "lies_active": result.lies_active,
        "alarms": len(result.alarms),
        "actions": len(result.actions),
        "sessions": result.sessions_started,
        "smooth_sessions": result.qoe.smooth_sessions,
        "total_stall_time": round(result.qoe.total_stall_time, 9),
        "peak_utilization": round(result.peak_utilization, 9),
        "controller_messages": result.controller_messages,
        "final_throughput": {
            f"{source}-{target}": round(result.final_throughput(source, target), 6)
            for source, target in result.scenario.monitored_links
        },
    }
    counters = merge_counter_snapshots(
        [
            {
                key: value
                for key, value in {
                    **result.dataplane_stats,
                    **result.controller_stats,
                }.items()
                if isinstance(value, int)
            }
        ]
    )
    return [row], counters


def _reaction_experiment(seed, params):
    """A7 — asynchronous control-loop reaction-time curves."""
    from repro.experiments.reaction import run_reaction_curves

    rows = run_reaction_curves(seed=seed, **params)
    counters = merge_counter_snapshots(
        {
            "ctl_reactions_deferred": row.reactions_deferred,
            "ctl_supersessions": row.supersessions,
            "ctl_transient_loops": row.transient_loops,
            "ctl_transient_blackholes": row.transient_blackholes,
            "ctl_converge_events": row.converge_events,
        }
        for row in rows
    )
    return [asdict(row) for row in rows], counters


def _chaos_experiment(seed, params):
    """A8 — chaos resilience: QoE with and without controller recovery."""
    from repro.experiments.chaos import run_chaos_resilience

    rows = run_chaos_resilience(seed=seed, **params)
    counters = merge_counter_snapshots(
        {
            "ctl_resyncs": row.resyncs,
            "ctl_resync_lies_recovered": row.resync_lies_recovered,
            "ctl_reactions_abandoned": row.reactions_abandoned,
            "fault_link_downs": row.link_downs,
            "fault_link_ups": row.link_ups,
            "fault_lsas_dropped": row.lsas_dropped,
            "fault_poll_timeouts": row.poll_timeouts,
            "fault_poll_omissions": row.poll_omissions,
            "fault_controller_crashes": row.controller_crashes,
            "fault_controller_restarts": row.controller_restarts,
        }
        for row in rows
    )
    return [asdict(row) for row in rows], counters


def _selftest_fail_experiment(seed, params):
    """Always raises — proves worker failures surface with their traceback.

    Registered (instead of monkey-patched in tests) so it is importable in
    fresh pool workers under any multiprocessing start method.
    """
    raise RuntimeError(f"sweep selftest failure (seed={seed}, params={params})")


#: The sweepable experiments, by grid name.
EXPERIMENTS: Dict[str, Experiment] = {}


def register_experiment(name: str, fn, description: str = "") -> Experiment:
    """Register a sweepable experiment (overwriting is an error)."""
    if name in EXPERIMENTS:
        raise SweepError(f"experiment {name!r} is already registered")
    experiment = Experiment(name=name, fn=fn, description=description)
    EXPERIMENTS[name] = experiment
    return experiment


register_experiment(
    "flashcrowd", _flashcrowd_experiment, "A4 data-plane flash-crowd scaling"
)
register_experiment(
    "reconcile", _reconcile_experiment, "A5 controller reconciliation scaling"
)
register_experiment("shard", _shard_experiment, "A6 sharded controller scaling")
register_experiment("lie-scaling", _lie_scaling_experiment, "A2 lie-count scaling")
register_experiment(
    "split-approx", _split_approx_experiment, "A3 split-approximation error"
)
register_experiment("fig2", _fig2_experiment, "Fig. 2 closed-loop demo run")
register_experiment(
    "flashcrowd-classes",
    _flashcrowd_classes_experiment,
    "scaled class-level flash crowd on the aggregate data plane",
)
register_experiment(
    "reaction", _reaction_experiment, "A7 asynchronous control-loop reaction times"
)
register_experiment(
    "chaos", _chaos_experiment, "A8 chaos resilience with/without controller recovery"
)
register_experiment(
    "selftest-fail", _selftest_fail_experiment, "harness self-test: always raises"
)


# --------------------------------------------------------------------- #
# Grid declaration and expansion
# --------------------------------------------------------------------- #
def _freeze(value):
    """Normalise a parameter choice to a hashable, picklable shape."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class GridSpec:
    """One experiment's axis of the grid: seeds × per-parameter choices."""

    experiment: str
    seeds: Tuple[int, ...]
    #: ``((name, (choice, ...)), ...)`` — sorted by name, expansion order.
    params: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()

    @staticmethod
    def build(experiment: str, seeds: Sequence[int], **params) -> "GridSpec":
        """Declarative constructor: each keyword maps to its choice list."""
        if not seeds:
            raise SweepError(f"grid for {experiment!r} needs at least one seed")
        frozen = []
        for name in sorted(params):
            choices = params[name]
            if not isinstance(choices, (list, tuple)) or not choices:
                raise SweepError(
                    f"grid parameter {name!r} of {experiment!r} needs a non-empty "
                    f"list of choices, got {choices!r}"
                )
            frozen.append((name, tuple(_freeze(choice) for choice in choices)))
        return GridSpec(
            experiment=experiment,
            seeds=tuple(int(seed) for seed in seeds),
            params=tuple(frozen),
        )

    def expand(self) -> List[Tuple[int, Tuple[Tuple[str, object], ...]]]:
        """All (seed, params) combinations, in deterministic order.

        Parameter choices vary fastest (cartesian product in sorted-name
        order), seeds slowest — so "2 seeds × 2 grid points" enumerates as
        seed0/point0, seed0/point1, seed1/point0, seed1/point1.
        """
        names = [name for name, _choices in self.params]
        choice_lists = [choices for _name, choices in self.params]
        combos = [
            tuple(zip(names, values))
            for values in itertools.product(*choice_lists)
        ]
        return [(seed, combo) for seed in self.seeds for combo in combos]

    def to_payload(self) -> Dict[str, object]:
        """JSON-friendly form for the ``BENCH_*.json`` grid section."""
        return {
            "experiment": self.experiment,
            "seeds": list(self.seeds),
            "params": {name: list(choices) for name, choices in self.params},
        }


@dataclass(frozen=True)
class SweepGrid:
    """A named collection of :class:`GridSpec` axes — one whole sweep."""

    name: str
    specs: Tuple[GridSpec, ...]

    def expand(self) -> List["RunSpec"]:
        """The full ordered run list (spec order, then each spec's order)."""
        runs: List[RunSpec] = []
        for spec in self.specs:
            if spec.experiment not in EXPERIMENTS:
                raise SweepError(
                    f"sweep {self.name!r} references unknown experiment "
                    f"{spec.experiment!r}; registered: {sorted(EXPERIMENTS)}"
                )
            for seed, params in spec.expand():
                runs.append(
                    RunSpec(
                        index=len(runs),
                        experiment=spec.experiment,
                        seed=seed,
                        params=params,
                    )
                )
        return runs

    def to_payload(self) -> List[Dict[str, object]]:
        return [spec.to_payload() for spec in self.specs]


@dataclass(frozen=True)
class RunSpec:
    """One fully-instantiated run of the grid (picklable, primitives only)."""

    index: int
    experiment: str
    seed: int
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def label(self) -> str:
        """Human-readable run id, e.g. ``reconcile[seed=1, waves=12]``."""
        parts = [f"seed={self.seed}"]
        parts.extend(f"{name}={value}" for name, value in self.params)
        return f"{self.experiment}[{', '.join(parts)}]"


# --------------------------------------------------------------------- #
# Worker body
# --------------------------------------------------------------------- #
def _execute_run(spec: RunSpec) -> Dict[str, object]:
    """Execute one run (possibly in a pool worker) and package the result.

    Never raises: failures come back as an ``error`` traceback string, so
    the harness can fail the sweep with the *original* worker traceback
    instead of an opaque pool exception.  All caches the experiment builds
    live and die inside this call — per-worker lineages by construction.
    """
    start = time.perf_counter()
    try:
        experiment = EXPERIMENTS[spec.experiment]
        rows, counters = experiment.fn(spec.seed, spec.params_dict)
        rows = [dict(row) for row in rows]
        return {
            "index": spec.index,
            "experiment": spec.experiment,
            "seed": spec.seed,
            "params": spec.params_dict,
            "rows": rows,
            "counters": {key: int(value) for key, value in counters.items()},
            "digest": run_digest(rows),
            "seconds": time.perf_counter() - start,
            "error": None,
        }
    except BaseException:
        return {
            "index": spec.index,
            "experiment": spec.experiment,
            "seed": spec.seed,
            "params": spec.params_dict,
            "rows": [],
            "counters": {},
            "digest": None,
            "seconds": time.perf_counter() - start,
            "error": traceback.format_exc(),
        }


# --------------------------------------------------------------------- #
# Harness and report
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunResult:
    """One completed run: spec echo, result rows, counters, digest, timing."""

    index: int
    experiment: str
    seed: int
    params: Dict[str, object]
    rows: List[Dict[str, object]]
    counters: Dict[str, int]
    digest: str
    seconds: float

    def key(self) -> str:
        """Stable identity of the run within a grid (digest comparisons)."""
        return json.dumps(
            {"experiment": self.experiment, "seed": self.seed, "params": self.params},
            sort_keys=True,
            default=str,
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "params": self.params,
            "digest": self.digest,
            "seconds": self.seconds,
            "counters": self.counters,
            "rows": self.rows,
        }


@dataclass(frozen=True)
class SweepReport:
    """Merged outcome of one sweep; serialises to ``BENCH_<name>.json``."""

    name: str
    parallel: str
    grid: List[Dict[str, object]]
    runs: List[RunResult]
    merged_counters: Dict[str, int]
    total_seconds: float

    @property
    def sweep_digest(self) -> str:
        """One hash over the per-run digests + merged counters.

        Wall-clock never enters, so serial and parallel executions of the
        same grid produce the same sweep digest — the cheap cross-PR and
        cross-mode comparison handle.
        """
        canonical = json.dumps(
            {
                "digests": [run.digest for run in self.runs],
                "merged_counters": self.merged_counters,
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def determinism_diff(self, other: "SweepReport") -> List[str]:
        """Where this report and ``other`` disagree on deterministic output.

        Compares per-run digests (matched by run identity) and the merged
        counters; timings are expected to differ and are ignored.  Empty
        list = the two executions are equivalent.
        """
        problems: List[str] = []
        if len(self.runs) != len(other.runs):
            problems.append(
                f"run counts differ: {len(self.runs)} vs {len(other.runs)}"
            )
            return problems
        for mine, theirs in zip(self.runs, other.runs):
            if mine.key() != theirs.key():
                problems.append(
                    f"run order differs at #{mine.index}: {mine.key()} vs {theirs.key()}"
                )
            elif mine.digest != theirs.digest:
                problems.append(
                    f"digest mismatch for {mine.experiment}[seed={mine.seed}]: "
                    f"{mine.digest} ({self.parallel}) vs {theirs.digest} ({other.parallel})"
                )
            elif mine.counters != theirs.counters:
                problems.append(
                    f"counter mismatch for {mine.experiment}[seed={mine.seed}]"
                )
        if self.merged_counters != other.merged_counters:
            problems.append("merged counters differ")
        return problems

    def to_payload(self) -> Dict[str, object]:
        return {
            "parallel": self.parallel,
            "grid": self.grid,
            "run_count": len(self.runs),
            "total_seconds": self.total_seconds,
            "merged_counters": self.merged_counters,
            "sweep_digest": self.sweep_digest,
            "runs": [run.to_payload() for run in self.runs],
        }

    def metrics(self) -> Dict[str, float]:
        """Scalar measurements for the artifact's ``metrics`` mapping."""
        metrics: Dict[str, float] = {
            "run_count": float(len(self.runs)),
            "total_seconds": float(self.total_seconds),
        }
        for key, value in self.merged_counters.items():
            metrics[f"counter_{key}"] = float(value)
        return metrics

    def save(self, directory=None):
        """Write ``BENCH_<name>.json`` (repo root by default); returns the path."""
        return write_bench_json(
            self.name, "sweep", self.to_payload(), directory, metrics=self.metrics()
        )

    def json_path(self, directory=None):
        return bench_json_path(self.name, directory)


class SweepHarness:
    """Expands a :class:`SweepGrid` and executes it across a worker pool."""

    def __init__(
        self,
        grid: SweepGrid,
        parallel: str = "process",
        max_workers: Optional[int] = None,
    ) -> None:
        if parallel not in PARALLEL_MODES:
            raise SweepError(
                f"parallel must be one of {PARALLEL_MODES}, got {parallel!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise SweepError(f"max_workers must be >= 1, got {max_workers}")
        self.grid = grid
        self.parallel = parallel
        self.max_workers = max_workers

    def expand(self) -> List[RunSpec]:
        """The ordered run list this harness will execute."""
        return self.grid.expand()

    def run(self) -> SweepReport:
        """Execute every run, merge counters, and return the report.

        Any failed run raises :class:`SweepError` carrying the worker's
        traceback; the sweep never silently drops a run.
        """
        specs = self.expand()
        start = time.perf_counter()
        if self.parallel == "serial" or len(specs) <= 1:
            payloads = [_execute_run(spec) for spec in specs]
        else:
            workers = min(len(specs), self.max_workers or os.cpu_count() or 1)
            executor_cls = (
                ProcessPoolExecutor if self.parallel == "process" else ThreadPoolExecutor
            )
            with executor_cls(max_workers=workers) as pool:
                futures = [pool.submit(_execute_run, spec) for spec in specs]
                payloads = [future.result() for future in futures]
        for spec, payload in zip(specs, payloads):
            if payload["error"] is not None:
                raise SweepError(
                    f"sweep {self.grid.name!r} run {spec.label()} failed in a "
                    f"{self.parallel} worker:\n{payload['error']}"
                )
        runs = [
            RunResult(
                index=payload["index"],
                experiment=payload["experiment"],
                seed=payload["seed"],
                params=payload["params"],
                rows=payload["rows"],
                counters=payload["counters"],
                digest=payload["digest"],
                seconds=payload["seconds"],
            )
            for payload in payloads
        ]
        return SweepReport(
            name=self.grid.name,
            parallel=self.parallel,
            grid=self.grid.to_payload(),
            runs=runs,
            merged_counters=merge_counter_snapshots(run.counters for run in runs),
            total_seconds=time.perf_counter() - start,
        )


# --------------------------------------------------------------------- #
# Predefined sweeps
# --------------------------------------------------------------------- #
#: The default cross-PR trajectory sweep: every scaling ablation plus the
#: closed-loop Fig. 2 demo, across seeds.  ``make sweep`` runs this.
_DEFAULT_SWEEP = SweepGrid(
    name="default",
    specs=(
        GridSpec.build(
            "flashcrowd", seeds=(0, 1, 2), flow_counts=[(20, 40)], pods=[4, 8]
        ),
        GridSpec.build(
            "reconcile", seeds=(0, 1, 2), requirement_counts=[(4, 8)], waves=[12], ring=[8]
        ),
        GridSpec.build(
            "shard",
            seeds=(0, 1),
            shard_counts=[(1, 2)],
            requirements=[8],
            waves=[8],
            ring=[8],
        ),
        GridSpec.build("lie-scaling", seeds=(0, 1), core_sizes=[(4,)], pops=[2]),
        GridSpec.build("fig2", seeds=(0, 1), duration=[25.0]),
        GridSpec.build(
            "flashcrowd-classes", seeds=(0, 1), sessions=[62_000, 1_000_000]
        ),
        GridSpec.build(
            "reaction",
            seeds=(0,),
            duration=[40.0],
            poll_intervals=[(0.5, 1.0, 2.0)],
            reaction_latencies=[(0.0, 0.5)],
            spf_delays=[(0.05, 0.2)],
        ),
        GridSpec.build(
            "chaos",
            seeds=(0, 1),
            link_churn=[0, 2],
            lsa_loss_rate=[0.02],
            poll_timeout_rate=[0.1],
            staleness_horizon=[5.0],
        ),
    ),
)

#: The CI smoke sweep (``BENCH_QUICK``): 2 seeds × 2 grid points per axis.
_QUICK_SWEEP = SweepGrid(
    name="quick",
    specs=(
        GridSpec.build("flashcrowd", seeds=(0, 1), flow_counts=[(10,)], pods=[2, 4]),
        GridSpec.build(
            "reconcile", seeds=(0, 1), requirement_counts=[(4,)], waves=[4, 6], ring=[8]
        ),
        GridSpec.build(
            "flashcrowd-classes", seeds=(0,), sessions=[6_200], duration=[25.0]
        ),
        GridSpec.build(
            "reaction",
            seeds=(0,),
            duration=[25.0],
            poll_intervals=[(0.5, 1.0)],
            reaction_latencies=[(0.0, 0.5)],
            spf_delays=[(0.05,)],
        ),
        GridSpec.build(
            "chaos",
            seeds=(0,),
            link_churn=[1],
            lsa_loss_rate=[0.02],
            poll_timeout_rate=[0.1],
            staleness_horizon=[5.0],
        ),
    ),
)

#: Predefined sweeps selectable from the CLI (``repro sweep --sweep NAME``).
SWEEPS: Dict[str, SweepGrid] = {
    grid.name: grid for grid in (_DEFAULT_SWEEP, _QUICK_SWEEP)
}
