"""Experiment harnesses regenerating the paper's figures and claims.

Each module builds one experiment end-to-end from the library's public API,
so that the corresponding benchmark, example and tests all share the exact
same code path:

``fig1``
    The static Fig. 1 experiment: relative link loads with and without the
    Fig. 1c lies.
``fig2``
    The dynamic Fig. 2 experiment: the full closed loop (IGP, data plane,
    video sessions, SNMP monitoring, on-demand load balancer) producing the
    per-link throughput time series and the QoE report.
``flashcrowd_classes``
    The Fig. 2 scenario scaled to millions of viewers over the
    aggregate-demand data plane: session counts and capacities grow
    together, each arrival batch is one demand class, QoE is class-level.
``overhead``
    The §2 control-plane/data-plane overhead comparison between Fibbing and
    MPLS RSVP-TE.
``optimality``
    The §2 optimality claim: Fibbing's realised max utilisation against the
    fractional LP optimum and the IGP baselines.
``scaling``
    The extended ablations: lie-count scaling, split-approximation error and
    reaction-time sweeps.
``sweep``
    The declarative grid sweep harness: expands experiment × seeds × knob
    grids into runs, executes them across a process pool, and merges the
    per-run counter snapshots into one ``BENCH_*.json`` report.
"""

from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import DemoRunResult, run_demo_timeseries, reaction_times
from repro.experiments.flashcrowd_classes import (
    FlashCrowdClassesResult,
    build_scaled_demo_scenario,
    run_flashcrowd_classes,
)
from repro.experiments.overhead import OverheadRow, run_overhead_comparison
from repro.experiments.optimality import OptimalityRow, run_optimality_study
from repro.experiments.scaling import (
    FlashCrowdScalingRow,
    LieScalingRow,
    ReconcileScalingRow,
    ShardScalingRow,
    SplitApproximationRow,
    run_flashcrowd_scaling,
    run_lie_scaling,
    run_reconcile_scaling,
    run_shard_scaling,
    run_split_approximation,
)
from repro.experiments.sweep import (
    EXPERIMENTS,
    SWEEPS,
    GridSpec,
    RunResult,
    RunSpec,
    SweepGrid,
    SweepHarness,
    SweepReport,
)

__all__ = [
    "Fig1Result",
    "run_fig1",
    "DemoRunResult",
    "run_demo_timeseries",
    "reaction_times",
    "FlashCrowdClassesResult",
    "build_scaled_demo_scenario",
    "run_flashcrowd_classes",
    "OverheadRow",
    "run_overhead_comparison",
    "OptimalityRow",
    "run_optimality_study",
    "FlashCrowdScalingRow",
    "LieScalingRow",
    "ReconcileScalingRow",
    "ShardScalingRow",
    "SplitApproximationRow",
    "run_flashcrowd_scaling",
    "run_lie_scaling",
    "run_reconcile_scaling",
    "run_shard_scaling",
    "run_split_approximation",
    "EXPERIMENTS",
    "SWEEPS",
    "GridSpec",
    "RunResult",
    "RunSpec",
    "SweepGrid",
    "SweepHarness",
    "SweepReport",
]
