"""Extended ablations: lie-count scaling and split-approximation error.

These back the design-choice discussions of DESIGN.md:

* **A2 — lie-count scaling**: how many fake-node LSAs the controller needs
  as the topology and the number of rebalanced destinations grow, with and
  without the merger pass (which prunes requirements the IGP already
  satisfies and reduces weight vectors).
* **A3 — split approximation**: the error between a requested fractional
  split and what a bounded number of ECMP entries can realise, as a
  function of the table size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.merger import LieMerger
from repro.core.optimizer import MinMaxLoadOptimizer
from repro.core.requirements import DestinationRequirement, RequirementSet
from repro.core.splitting import approximate_ratios, split_error
from repro.core.augmentation import synthesize_lies
from repro.experiments.overhead import build_flash_crowd_demands
from repro.igp.network import compute_static_fibs
from repro.igp.rib_cache import RibCache
from repro.topologies.isp import synthetic_isp
from repro.util.errors import ValidationError

__all__ = [
    "LieScalingRow",
    "SplitApproximationRow",
    "run_lie_scaling",
    "run_split_approximation",
]


@dataclass(frozen=True)
class LieScalingRow:
    """Lie counts for one (topology size, destination count) instance."""

    core_size: int
    pops: int
    routers: int
    destinations: int
    lies_without_merger: int
    lies_with_merger: int

    @property
    def reduction(self) -> float:
        """Fraction of lies saved by the merger pass."""
        if self.lies_without_merger == 0:
            return 0.0
        return 1.0 - self.lies_with_merger / self.lies_without_merger


@dataclass(frozen=True)
class SplitApproximationRow:
    """Average/worst split approximation error for one ECMP table size."""

    max_entries: int
    mean_error: float
    worst_error: float


def run_lie_scaling(
    core_sizes: Sequence[int] = (4, 6, 8),
    pops: int = 3,
    destinations: int = 3,
    seed: int = 0,
) -> List[LieScalingRow]:
    """Measure lie counts on synthetic ISP topologies of growing size."""
    rows: List[LieScalingRow] = []
    for core_size in core_sizes:
        topology = synthetic_isp(core_size=core_size, pops=pops, prefixes_per_pop=2, seed=seed)
        demands = build_flash_crowd_demands(
            topology, destinations=destinations, sources_per_destination=3, seed=seed
        )
        optimizer = MinMaxLoadOptimizer(topology)
        result = optimizer.optimize(demands)
        fractions = result.to_fractions()

        requirements = RequirementSet(
            DestinationRequirement.from_fractions(prefix, per_router)
            for prefix, per_router in fractions.items()
        )
        # One versioned route cache per instance: the merger's own baseline
        # recomputation becomes a pure cache hit.
        rib_cache = RibCache()
        baseline_fibs = compute_static_fibs(topology, rib_cache=rib_cache)

        lies_without = 0
        for requirement in requirements:
            lies_without += len(
                synthesize_lies(topology, requirement, baseline_fibs=baseline_fibs)
            )

        merger = LieMerger(topology, rib_cache=rib_cache)
        reduced, _report = merger.optimize(requirements)
        lies_with = 0
        for requirement in reduced:
            lies_with += len(
                synthesize_lies(topology, requirement, baseline_fibs=baseline_fibs)
            )

        rows.append(
            LieScalingRow(
                core_size=core_size,
                pops=pops,
                routers=topology.num_routers,
                destinations=destinations,
                lies_without_merger=lies_without,
                lies_with_merger=lies_with,
            )
        )
    return rows


def run_split_approximation(
    table_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    samples: int = 200,
    next_hops: int = 3,
    seed: int = 0,
) -> List[SplitApproximationRow]:
    """Measure the L1 error of bounded-denominator split approximation."""
    if samples < 1:
        raise ValidationError(f"samples must be >= 1, got {samples}")
    rng = random.Random(seed)
    targets: List[Dict[str, float]] = []
    for _ in range(samples):
        raw = [rng.random() + 1e-6 for _ in range(next_hops)]
        total = sum(raw)
        targets.append({f"nh{i}": value / total for i, value in enumerate(raw)})

    rows: List[SplitApproximationRow] = []
    for max_entries in table_sizes:
        errors = []
        for target in targets:
            weights = approximate_ratios(target, max_entries=max_entries)
            errors.append(split_error(target, weights))
        rows.append(
            SplitApproximationRow(
                max_entries=max_entries,
                mean_error=sum(errors) / len(errors),
                worst_error=max(errors),
            )
        )
    return rows
