"""Extended ablations: lie-count scaling, split-approximation error,
data-plane flash-crowd scaling, and controller reconciliation scaling.

These back the design-choice discussions of DESIGN.md:

* **A2 — lie-count scaling**: how many fake-node LSAs the controller needs
  as the topology and the number of rebalanced destinations grow, with and
  without the merger pass (which prunes requirements the IGP already
  satisfies and reduces weight vectors).
* **A3 — split approximation**: the error between a requested fractional
  split and what a bounded number of ECMP entries can realise, as a
  function of the table size.
* **A4 — data-plane flash-crowd scaling**: how the incremental data plane
  (versioned path cache + warm-start max-min repair) behaves as the
  arrival-wave size grows, versus the from-scratch engine whose per-event
  cost is O(flows).
* **A5 — controller reconciliation scaling**: how the plan-cache
  reconciler behaves as the requirement count grows while only one
  requirement changes per reaction, versus the clear-and-replay oracle
  whose per-reaction cost is O(requirements).
* **A6 — sharded controller scaling**: how the sharded facade behaves on
  disjoint-prefix reaction waves (each wave churning every requirement of
  exactly one shard), versus the single incremental controller whose
  dirty-threshold fallback re-plans the *whole* wave.  Sharding evaluates
  the threshold per shard sub-wave, confining the clear-and-replay blast
  radius to the shard that actually churned — the controller-layer mirror
  of the data plane's per-component warm-start repair; on multi-core hosts
  the ``parallel=`` executor additionally overlaps the sub-wave planning.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.merger import LieMerger
from repro.core.optimizer import MinMaxLoadOptimizer
from repro.core.requirements import DestinationRequirement, RequirementSet
from repro.core.splitting import approximate_ratios, split_error
from repro.core.augmentation import synthesize_lies
from repro.experiments.overhead import build_flash_crowd_demands
from repro.dataplane.engine import DataPlaneEngine
from repro.igp.network import compute_static_fibs
from repro.igp.rib_cache import RibCache
from repro.igp.topology import Topology
from repro.topologies.isp import synthetic_isp
from repro.util.errors import ValidationError
from repro.util.prefixes import Prefix
from repro.util.timeline import Timeline

__all__ = [
    "LieScalingRow",
    "SplitApproximationRow",
    "FlashCrowdScalingRow",
    "ReconcileScalingRow",
    "ShardScalingRow",
    "run_lie_scaling",
    "run_split_approximation",
    "run_flashcrowd_scaling",
    "run_reconcile_scaling",
    "run_shard_scaling",
    "build_pod_topology",
    "build_ring_topology",
    "churn_requirement",
    "replay_requirement_churn",
    "replay_shard_churn",
    "ring_shard_assignment",
    "pod_prefix",
    "replay_wave",
]


@dataclass(frozen=True)
class LieScalingRow:
    """Lie counts for one (topology size, destination count) instance."""

    core_size: int
    pops: int
    routers: int
    destinations: int
    lies_without_merger: int
    lies_with_merger: int

    @property
    def reduction(self) -> float:
        """Fraction of lies saved by the merger pass."""
        if self.lies_without_merger == 0:
            return 0.0
        return 1.0 - self.lies_with_merger / self.lies_without_merger


@dataclass(frozen=True)
class SplitApproximationRow:
    """Average/worst split approximation error for one ECMP table size."""

    max_entries: int
    mean_error: float
    worst_error: float


def run_lie_scaling(
    core_sizes: Sequence[int] = (4, 6, 8),
    pops: int = 3,
    destinations: int = 3,
    seed: int = 0,
) -> List[LieScalingRow]:
    """Measure lie counts on synthetic ISP topologies of growing size."""
    rows: List[LieScalingRow] = []
    for core_size in core_sizes:
        topology = synthetic_isp(core_size=core_size, pops=pops, prefixes_per_pop=2, seed=seed)
        demands = build_flash_crowd_demands(
            topology, destinations=destinations, sources_per_destination=3, seed=seed
        )
        optimizer = MinMaxLoadOptimizer(topology)
        result = optimizer.optimize(demands)
        fractions = result.to_fractions()

        requirements = RequirementSet(
            DestinationRequirement.from_fractions(prefix, per_router)
            for prefix, per_router in fractions.items()
        )
        # One versioned route cache per instance: the merger's own baseline
        # recomputation becomes a pure cache hit.
        rib_cache = RibCache()
        baseline_fibs = compute_static_fibs(topology, rib_cache=rib_cache)

        lies_without = 0
        for requirement in requirements:
            lies_without += len(
                synthesize_lies(topology, requirement, baseline_fibs=baseline_fibs)
            )

        merger = LieMerger(topology, rib_cache=rib_cache)
        reduced, _report = merger.optimize(requirements)
        lies_with = 0
        for requirement in reduced:
            lies_with += len(
                synthesize_lies(topology, requirement, baseline_fibs=baseline_fibs)
            )

        rows.append(
            LieScalingRow(
                core_size=core_size,
                pops=pops,
                routers=topology.num_routers,
                destinations=destinations,
                lies_without_merger=lies_without,
                lies_with_merger=lies_with,
            )
        )
    return rows


@dataclass(frozen=True)
class FlashCrowdScalingRow:
    """One flash-crowd wave size, replayed with and without the path cache."""

    flows: int
    pods: int
    full_seconds: float
    incremental_seconds: float
    flows_rerouted: int
    flows_reused: int
    alloc_warm_starts: int
    alloc_full: int
    fallbacks: int

    @property
    def speedup(self) -> float:
        """Wall-clock advantage of the incremental engine on this wave."""
        if self.incremental_seconds <= 0:
            return float("inf")
        return self.full_seconds / self.incremental_seconds


def build_pod_topology(pods: int, capacity: float = 16e6) -> Topology:
    """``pods`` disjoint server->middle->client chains, one prefix per pod.

    This is the video-CDN shape of the scaling workloads: many independent
    regions, each with its own streaming servers and viewer prefix.  The
    pods are disjoint connected components of the flow-link hypergraph, so
    the warm-start allocator can repair one region's arrivals without
    touching the rest of the fleet.
    """
    if pods < 1:
        raise ValidationError(f"need at least 1 pod, got {pods}")
    topology = Topology(name=f"pods-{pods}")
    for pod in range(pods):
        names = [f"S{pod}", f"M{pod}", f"C{pod}"]
        topology.add_routers(names)
        topology.add_link(names[0], names[1], weight=1, capacity=capacity)
        topology.add_link(names[1], names[2], weight=1, capacity=capacity)
        topology.attach_prefix(names[2], Prefix.parse(f"10.{pod % 250}.{pod // 250}.0/24"))
    return topology


def pod_prefix(topology: Topology, pod: int) -> Prefix:
    """The viewer prefix of one pod of :func:`build_pod_topology`."""
    return topology.attachments_of(f"C{pod}")[0].prefix


def replay_wave(
    engine: DataPlaneEngine,
    topology: Topology,
    pods: int,
    flows: int,
    churn: int,
    rng: Optional[random.Random] = None,
) -> float:
    """One flash-crowd wave: ``flows`` arrivals round-robin across the pods,
    followed by ``churn`` departures of the earliest viewers.  Returns the
    wall-clock seconds the engine spent reacting.  With an explicit ``rng``
    (a :class:`random.Random` — never module-level state, which would leak
    across runs sharing a sweep worker) the per-flow rates are jittered
    deterministically, so seeded sweep runs exercise distinct workloads;
    two replays driven by equally-seeded instances see identical waves.
    Shared with ``benchmarks/test_bench_dataplane_cache.py`` so the
    benchmark and the A4 scaling rows always measure the same workload."""
    start = time.perf_counter()
    for index in range(flows):
        pod = index % pods
        rate = 1e6 + 1000.0 * index
        if rng is not None:
            rate += rng.random() * 1e5
        engine.add_flow(f"S{pod}", pod_prefix(topology, pod), rate, label="wave")
    for flow_id in range(churn):
        engine.remove_flow(flow_id)
    return time.perf_counter() - start


def run_flashcrowd_scaling(
    flow_counts: Sequence[int] = (50, 100, 200),
    pods: int = 8,
    churn_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> List[FlashCrowdScalingRow]:
    """Replay growing flash-crowd waves with and without the data-plane cache.

    For each wave size the same arrival/departure sequence is driven through
    a from-scratch engine (``incremental=False``; every event re-routes every
    flow and re-allocates from scratch) and through the incremental engine
    (versioned path cache + warm-start allocation).  The differential suite
    guarantees both produce bit-identical flows; this experiment measures
    the wall-clock gap and the cache-effectiveness counters.

    ``seed`` (sweep entry point) jitters the per-flow rates through an
    explicit ``random.Random(seed)`` — one fresh instance per engine replay,
    so both engines still see identical waves and the result is a pure
    function of the arguments, independent of run order within a worker.
    ``seed=None`` keeps the historical deterministic rates.
    """
    rows: List[FlashCrowdScalingRow] = []
    for flows in flow_counts:
        if flows < 1:
            raise ValidationError(f"wave size must be >= 1, got {flows}")
        churn = int(flows * churn_fraction)
        topology = build_pod_topology(pods)
        fibs = compute_static_fibs(topology)

        full_engine = DataPlaneEngine(
            topology, lambda: fibs, Timeline(), incremental=False
        )
        full_seconds = replay_wave(
            full_engine, topology, pods, flows, churn,
            rng=None if seed is None else random.Random(seed),
        )

        incremental_engine = DataPlaneEngine(topology, lambda: fibs, Timeline())
        incremental_seconds = replay_wave(
            incremental_engine, topology, pods, flows, churn,
            rng=None if seed is None else random.Random(seed),
        )

        counters = incremental_engine.counters
        rows.append(
            FlashCrowdScalingRow(
                flows=flows,
                pods=pods,
                full_seconds=full_seconds,
                incremental_seconds=incremental_seconds,
                flows_rerouted=counters.flows_rerouted,
                flows_reused=counters.flows_reused,
                alloc_warm_starts=counters.alloc_warm_starts,
                alloc_full=counters.alloc_full,
                fallbacks=counters.fallbacks,
            )
        )
    return rows


@dataclass(frozen=True)
class ReconcileScalingRow:
    """One requirement-set size, replayed through oracle and reconciler."""

    requirements: int
    waves: int
    oracle_seconds: float
    incremental_seconds: float
    plan_cache_hits: int
    plans_recomputed: int
    lies_injected: int
    lies_retracted: int
    lies_kept: int
    fallbacks: int

    @property
    def speedup(self) -> float:
        """Wall-clock advantage of the plan-cache reconciler on this churn."""
        if self.incremental_seconds <= 0:
            return float("inf")
        return self.oracle_seconds / self.incremental_seconds


def build_ring_topology(size: int, prefixes: int) -> Topology:
    """A ring of ``size`` routers announcing ``prefixes`` round-robin.

    This is the controller-churn workload shape: every prefix's requirement
    constrains the announcer's antipode, whose two ring directions tie in
    cost, so weighted requirements there always need lies (tie mode) and a
    weight change always moves the desired lie set.
    """
    if size < 4 or size % 2:
        raise ValidationError(f"ring size must be even and >= 4, got {size}")
    topology = Topology(name=f"ring-{size}")
    names = [f"R{i}" for i in range(size)]
    topology.add_routers(names)
    for i in range(size):
        topology.add_link(names[i], names[(i + 1) % size], weight=1)
    for index in range(prefixes):
        topology.attach_prefix(
            names[index % size],
            Prefix.parse(f"10.{index % 250}.{index // 250}.0/24"),
        )
    return topology


def churn_requirement(
    topology: Topology, index: int, generation: int
) -> DestinationRequirement:
    """The requirement of prefix ``index`` at churn ``generation``.

    Constrains the announcer's antipode to split over both ring directions
    with a generation-dependent weight; consecutive generations always map
    to different weights, so bumping a requirement's generation by one is
    guaranteed to change its digest.
    """
    size = topology.num_routers
    announcer = index % size
    antipode = f"R{(announcer + size // 2) % size}"
    left = f"R{(announcer + size // 2 - 1) % size}"
    right = f"R{(announcer + size // 2 + 1) % size}"
    prefix = topology.attachments_of(f"R{announcer}")[index // size].prefix
    return DestinationRequirement(
        prefix=prefix,
        next_hops={antipode: {left: 1 + generation % 5, right: 1}},
    )


def replay_requirement_churn(
    controller,
    topology: Topology,
    count: int,
    waves: int,
    rng: Optional[random.Random] = None,
) -> float:
    """Drive ``waves`` enforce waves with one of ``count`` requirements
    changing per wave (the rest unchanged) through ``controller``; returns
    the wall-clock seconds spent planning and reconciling.  With an explicit
    ``rng`` the churned requirement is drawn per wave instead of rotating
    round-robin — equally-seeded instances replay identical churns, so the
    oracle/reconciler comparison stays exact under seeded sweeps.  Shared
    with ``benchmarks/test_bench_controller_reconcile.py`` so the benchmark
    and the A5 scaling rows always measure the same workload."""
    generations = {index: 0 for index in range(count)}
    start = time.perf_counter()
    controller.enforce(
        [churn_requirement(topology, index, 0) for index in range(count)]
    )
    for wave in range(1, waves + 1):
        target = rng.randrange(count) if rng is not None else wave % count
        generations[target] += 1
        controller.enforce(
            [
                churn_requirement(topology, index, generations[index])
                for index in range(count)
            ]
        )
    return time.perf_counter() - start


def run_reconcile_scaling(
    requirement_counts: Sequence[int] = (8, 16, 32),
    waves: int = 60,
    ring: int = 32,
    seed: Optional[int] = None,
) -> List[ReconcileScalingRow]:
    """Replay growing requirement churns through oracle and reconciler.

    For each requirement-set size the same churn (one requirement changing
    per enforce wave) is driven through a clear-and-replay controller
    (``incremental=False``; every wave re-validates and re-synthesises every
    requirement) and through the plan-cache reconciler (unchanged
    requirements are skipped outright).  The differential suite guarantees
    both install bit-identical lies; this experiment measures the wall-clock
    gap and the ``ctl_*`` effectiveness counters.

    ``seed`` (sweep entry point) randomises which requirement churns per
    wave through an explicit ``random.Random(seed)`` — one fresh instance
    per controller replay, so oracle and reconciler still see identical
    churn sequences.  ``seed=None`` keeps the historical round-robin churn.
    """
    from repro.core.controller import FibbingController
    from repro.core.lies import lie_set_digest

    rows: List[ReconcileScalingRow] = []
    for count in requirement_counts:
        if count < 1:
            raise ValidationError(f"requirement count must be >= 1, got {count}")
        topology = build_ring_topology(ring, count)

        oracle = FibbingController(topology, incremental=False)
        oracle_seconds = replay_requirement_churn(
            oracle, topology, count, waves,
            rng=None if seed is None else random.Random(seed),
        )

        reconciler = FibbingController(topology)
        incremental_seconds = replay_requirement_churn(
            reconciler, topology, count, waves,
            rng=None if seed is None else random.Random(seed),
        )

        # The reconciler's whole point is that skipping clean requirements
        # is invisible on the wire: both engines must land on the same lies.
        if lie_set_digest(reconciler.active_lies()) != lie_set_digest(
            oracle.active_lies()
        ):
            raise ValidationError(
                "reconciler and oracle diverged on the churn workload"
            )

        counters = reconciler.reconciler.counters
        rows.append(
            ReconcileScalingRow(
                requirements=count,
                waves=waves,
                oracle_seconds=oracle_seconds,
                incremental_seconds=incremental_seconds,
                plan_cache_hits=counters.plan_cache_hits,
                plans_recomputed=counters.plans_recomputed,
                lies_injected=counters.lies_injected,
                lies_retracted=counters.lies_retracted,
                lies_kept=counters.lies_kept,
                fallbacks=counters.fallbacks,
            )
        )
    return rows


@dataclass(frozen=True)
class ShardScalingRow:
    """One shard count, replayed through single and sharded controllers."""

    shards: int
    requirements: int
    waves: int
    single_seconds: float
    sharded_seconds: float
    single_plans_recomputed: int
    single_fallbacks: int
    sharded_plans_recomputed: int
    sharded_plan_cache_hits: int
    shard_dirty: int
    shard_clean: int
    waves_parallel: int
    waves_serial: int

    @property
    def speedup(self) -> float:
        """Wall-clock advantage of the sharded facade on this churn."""
        if self.sharded_seconds <= 0:
            return float("inf")
        return self.single_seconds / self.sharded_seconds


def ring_shard_assignment(topology: Topology, count: int, shards: int):
    """Pin the ring prefixes round-robin to shards, by churn index.

    :func:`churn_requirement` addresses prefixes by index; this assignment
    puts index ``i`` into shard ``i % shards``, so a wave that churns every
    index of one residue class dirties exactly one shard — the
    disjoint-prefix reaction-wave shape of the A6 study.
    """
    size = topology.num_routers
    mapping = {}
    for index in range(count):
        prefix = topology.attachments_of(f"R{index % size}")[index // size].prefix
        mapping[prefix] = index % shards

    def assign(prefix: Prefix, _shards: int) -> int:
        return mapping[prefix]

    return assign


def replay_shard_churn(
    controller,
    topology: Topology,
    count: int,
    waves: int,
    shards: int,
    rng: Optional[random.Random] = None,
) -> float:
    """Drive ``waves`` enforce waves, each churning every requirement of
    exactly one shard (index residue ``wave % shards``, rotating) while the
    other shards' requirements stay untouched; returns the wall-clock
    seconds spent planning and reconciling the churn waves.  The initial
    all-new wave (and with it the one-time baseline-FIB computation, which
    both engines pay identically) runs before the clock starts: the study
    object is the steady-state reaction cost.  With an explicit ``rng`` the
    churned shard is drawn per wave instead of rotating — equally-seeded
    instances replay identical churns, keeping the single/sharded
    comparison exact under seeded sweeps.  Shared with
    ``benchmarks/test_bench_shard_scaling.py`` so the benchmark and the A6
    scaling rows always measure the same workload."""
    generations = {index: 0 for index in range(count)}
    controller.enforce(
        [churn_requirement(topology, index, 0) for index in range(count)]
    )
    start = time.perf_counter()
    for wave in range(1, waves + 1):
        target = rng.randrange(shards) if rng is not None else wave % shards
        for index in range(count):
            if index % shards == target:
                generations[index] += 1
        controller.enforce(
            [
                churn_requirement(topology, index, generations[index])
                for index in range(count)
            ]
        )
    return time.perf_counter() - start


def run_shard_scaling(
    shard_counts: Sequence[int] = (1, 2, 4),
    requirements: int = 32,
    waves: int = 30,
    ring: int = 32,
    plan_dirty_threshold: float = 0.2,
    parallel: str = "serial",
    seed: Optional[int] = None,
) -> List[ShardScalingRow]:
    """A6 — replay disjoint-prefix churn through single and sharded control.

    Both sides run the *same* incremental engine with the same
    ``plan_dirty_threshold``; each wave churns every requirement of one
    shard (``1/shards`` of the set).  Whenever that dirty fraction exceeds
    the threshold, the single controller's fallback re-plans the whole wave
    — clean requirements included — while the facade evaluates the
    threshold per shard sub-wave and re-plans only the shard that churned.
    The lie sets are verified identical before any timing is reported.  On
    multi-core hosts ``parallel="thread"`` (or ``"process"``) additionally
    overlaps the sub-wave planning; the algorithmic gap measured here needs
    no extra cores.  ``seed`` (sweep entry point) randomises which shard
    churns per wave through an explicit ``random.Random(seed)`` — one fresh
    instance per controller replay, so both sides see identical churns;
    ``seed=None`` keeps the historical rotating churn.
    """
    from repro.core.controller import FibbingController
    from repro.core.lies import lie_set_digest
    from repro.core.shard import ShardedFibbingController

    rows: List[ShardScalingRow] = []
    for shards in shard_counts:
        if shards < 1:
            raise ValidationError(f"shard count must be >= 1, got {shards}")
        topology = build_ring_topology(ring, requirements)

        single = FibbingController(
            topology, plan_dirty_threshold=plan_dirty_threshold
        )
        single_seconds = replay_shard_churn(
            single, topology, requirements, waves, shards,
            rng=None if seed is None else random.Random(seed),
        )

        sharded = ShardedFibbingController(
            topology,
            shards=shards,
            plan_dirty_threshold=plan_dirty_threshold,
            parallel=parallel,
            assignment=ring_shard_assignment(topology, requirements, shards),
        )
        try:
            sharded_seconds = replay_shard_churn(
                sharded, topology, requirements, waves, shards,
                rng=None if seed is None else random.Random(seed),
            )
            if lie_set_digest(sharded.active_lies()) != lie_set_digest(
                single.active_lies()
            ):
                raise ValidationError(
                    "sharded facade and single controller diverged on the churn workload"
                )
            single_counters = single.reconciler.counters
            sharded_counters = sharded.reconciler.counters
            shard_counters = sharded.shard_counters
            rows.append(
                ShardScalingRow(
                    shards=shards,
                    requirements=requirements,
                    waves=waves,
                    single_seconds=single_seconds,
                    sharded_seconds=sharded_seconds,
                    single_plans_recomputed=single_counters.plans_recomputed,
                    single_fallbacks=single_counters.fallbacks,
                    sharded_plans_recomputed=sharded_counters.plans_recomputed,
                    sharded_plan_cache_hits=sharded_counters.plan_cache_hits,
                    shard_dirty=shard_counters.shards_dirty,
                    shard_clean=shard_counters.shards_clean,
                    waves_parallel=shard_counters.waves_parallel,
                    waves_serial=shard_counters.waves_serial,
                )
            )
        finally:
            sharded.close()
    return rows


def run_split_approximation(
    table_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    samples: int = 200,
    next_hops: int = 3,
    seed: int = 0,
) -> List[SplitApproximationRow]:
    """Measure the L1 error of bounded-denominator split approximation."""
    if samples < 1:
        raise ValidationError(f"samples must be >= 1, got {samples}")
    rng = random.Random(seed)
    targets: List[Dict[str, float]] = []
    for _ in range(samples):
        raw = [rng.random() + 1e-6 for _ in range(next_hops)]
        total = sum(raw)
        targets.append({f"nh{i}": value / total for i, value in enumerate(raw)})

    rows: List[SplitApproximationRow] = []
    for max_entries in table_sizes:
        errors = []
        for target in targets:
            weights = approximate_ratios(target, max_entries=max_entries)
            errors.append(split_error(target, weights))
        rows.append(
            SplitApproximationRow(
                max_entries=max_entries,
                mean_error=sum(errors) / len(errors),
                worst_error=max(errors),
            )
        )
    return rows
