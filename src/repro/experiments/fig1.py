"""The static Fig. 1 experiment.

Fig. 1b of the paper shows the relative link loads when both sources push
100 units of traffic toward the blue prefix over the unmodified IGP: the
shared segment B–R2–C carries 200 units and overloads.  Fig. 1d shows the
loads after the controller injects the Fig. 1c lies: router A splits 1/3–2/3
and router B 1/2–1/2, bringing every link down to roughly 66 units.

:func:`run_fig1` reproduces both states with the exact lie set of Fig. 1c
(:func:`repro.topologies.demo.demo_lies`) or, optionally, with lies derived
by the controller's own optimisation pipeline — the two coincide, which is
itself a useful check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.controller import FibbingController
from repro.core.loadbalancer import OnDemandLoadBalancer  # noqa: F401  (documented entry point)
from repro.core.merger import LieMerger
from repro.core.optimizer import MinMaxLoadOptimizer
from repro.core.requirements import DestinationRequirement, RequirementSet
from repro.dataplane.demand import TrafficMatrix
from repro.dataplane.forwarding import route_fractional
from repro.igp.graph import ComputationGraph
from repro.igp.network import compute_static_fibs
from repro.igp.rib import compute_rib, rib_digest
from repro.topologies.demo import DemoScenario, build_demo_scenario, demo_lies

__all__ = ["Fig1Result", "run_fig1", "fig1_rib_digests", "fig1_lie_digests"]

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class Fig1Result:
    """Relative per-link loads of one Fig. 1 state (baseline or fibbed)."""

    label: str
    link_loads: Dict[LinkKey, float]
    max_load: float
    lie_count: int
    split_at_a: Dict[str, float]
    split_at_b: Dict[str, float]

    def load_of(self, source: str, target: str) -> float:
        """Relative load on the directed link ``source -> target``."""
        return self.link_loads.get((source, target), 0.0)


def run_fig1(
    with_fibbing: bool,
    use_controller_pipeline: bool = False,
    scenario: DemoScenario | None = None,
) -> Fig1Result:
    """Reproduce Fig. 1b (``with_fibbing=False``) or Fig. 1d (``True``).

    With ``use_controller_pipeline=True`` the lies are not the hand-written
    Fig. 1c set but the output of the controller's LP + approximation +
    merger pipeline; the resulting loads are identical.
    """
    if scenario is None:
        scenario = build_demo_scenario()
    topology = scenario.topology
    prefix = scenario.blue_prefix
    demands = TrafficMatrix.from_dict(
        {
            (scenario.server_routers[server], prefix): rate
            for server, rate in scenario.static_demands.items()
        }
    )

    lie_count = 0
    if not with_fibbing:
        fibs = compute_static_fibs(topology)
        label = "fig1b-baseline"
    elif not use_controller_pipeline:
        lies = demo_lies()
        lie_count = len(lies)
        fibs = compute_static_fibs(topology, lies)
        label = "fig1d-paper-lies"
    else:
        controller = FibbingController(topology)
        optimizer = MinMaxLoadOptimizer(topology)
        result = optimizer.optimize(demands, [prefix])
        fractions = result.to_fractions()
        requirement = DestinationRequirement.from_fractions(prefix, fractions[prefix])
        reduced, _ = LieMerger(topology).optimize(RequirementSet([requirement]))
        controller.enforce(reduced)
        lie_count = controller.active_lie_count()
        fibs = controller.static_fibs()
        label = "fig1d-controller-pipeline"

    outcome = route_fractional(fibs, demands)
    loads = {link: load for link, load in outcome.loads}
    split_a = fibs["A"].split_ratios(prefix)
    split_b = fibs["B"].split_ratios(prefix)
    return Fig1Result(
        label=label,
        link_loads=loads,
        max_load=max(loads.values(), default=0.0),
        lie_count=lie_count,
        split_at_a=split_a,
        split_at_b=split_b,
    )


def fig1_lie_digests(
    scenario: DemoScenario | None = None,
    incremental: bool = True,
    shards: int = 0,
) -> Dict[str, str]:
    """Per-prefix digests of the lies the controller pipeline installs.

    Runs the full LP → approximation → merger → enforcement pipeline on the
    Fig. 1 scenario and digests the installed :class:`FakeNodeLsa` set per
    prefix (names included, so the controller's deterministic naming is
    pinned too).  The golden snapshot requires the ``incremental=True``
    reconciler, the ``incremental=False`` clear-and-replay oracle *and* the
    sharded facade (``shards > 0`` builds a
    :class:`~repro.core.shard.ShardedFibbingController`) to land on the
    exact same digests.
    """
    from repro.core.lies import per_prefix_lie_digests

    if scenario is None:
        scenario = build_demo_scenario()
    topology = scenario.topology
    prefix = scenario.blue_prefix
    demands = TrafficMatrix.from_dict(
        {
            (scenario.server_routers[server], prefix): rate
            for server, rate in scenario.static_demands.items()
        }
    )
    if shards > 0:
        from repro.core.shard import ShardedFibbingController

        controller = ShardedFibbingController(
            topology, shards=shards, incremental=incremental
        )
    else:
        controller = FibbingController(topology, incremental=incremental)
    result = MinMaxLoadOptimizer(topology).optimize(demands, [prefix])
    requirement = DestinationRequirement.from_fractions(
        prefix, result.to_fractions()[prefix]
    )
    reduced, _ = LieMerger(topology).optimize(RequirementSet([requirement]))
    controller.enforce(reduced)
    return per_prefix_lie_digests(controller.active_lies())


def fig1_rib_digests(
    with_fibbing: bool,
    scenario: DemoScenario | None = None,
) -> Dict[str, str]:
    """Per-router RIB digests of a static Fig. 1 state.

    The golden regression snapshots pin these so that route-level changes
    (contributions, costs, fake-node flags) fail loudly even when the link
    loads happen to agree — two different RIBs can induce the same loads.
    """
    if scenario is None:
        scenario = build_demo_scenario()
    lies = demo_lies() if with_fibbing else []
    graph = ComputationGraph.from_topology(scenario.topology, lies)
    return {
        router: rib_digest(compute_rib(graph, router))
        for router in scenario.topology.routers
    }
