"""Million-session flash crowds over the aggregate-demand data plane.

The Fig. 2 demo plays 62 sessions over 32 Mbit/s links.  This experiment
replays the *same* scenario shape — same topology, same weights, same
relative arrival schedule (1 : 30 : 31), same 1 Mbit/s per-session bitrate —
scaled to millions of viewers: session counts and link capacities are both
multiplied by the same factor, so every per-session quantity (fair-share
rate, buffer dynamics, stall behaviour) matches the original demo while the
offered load grows by orders of magnitude.

The run uses ``dataplane_aggregate=True``: each arrival batch is ONE demand
class routed as a population and rated through the count-weighted
progressive-filling kernel, so the cost per event is O(classes × path
groups) regardless of the session count — which is what lets a
1,000,000-session closed-loop run (controller, monitoring, QoE and all)
finish in seconds on one core.  The QoE report is class-level: one
count-weighted cohort client per arrival batch.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.policies import LoadBalancerPolicy
from repro.experiments.fig2 import DemoRunResult, run_demo_timeseries
from repro.topologies.demo import (
    DEMO_LINK_CAPACITY,
    DemoScenario,
    build_demo_scenario,
)
from repro.util.errors import ValidationError
from repro.video.qoe import QoeReport

__all__ = [
    "DEMO_SESSION_TOTAL",
    "FlashCrowdClassesResult",
    "build_scaled_demo_scenario",
    "run_flashcrowd_classes",
]

#: Sessions of the original Fig. 2 schedule (1 at t=0, +30 at t=15, +31 at t=35).
DEMO_SESSION_TOTAL = 62


@dataclass
class FlashCrowdClassesResult:
    """Outcome of one scaled class-level flash-crowd run."""

    sessions: int
    scale: int
    with_controller: bool
    qoe: QoeReport
    #: Wall-clock seconds of the whole closed-loop run (single core).
    wall_seconds: float
    peak_utilization: float
    alarms: int
    actions: int
    lies_active: int
    dataplane_stats: Dict[str, int] = field(default_factory=dict)
    #: The underlying Fig. 2-style result (series, counters, lie digests).
    demo: Optional[DemoRunResult] = None


def build_scaled_demo_scenario(sessions: int) -> DemoScenario:
    """The demo scenario with session counts and capacities scaled together.

    ``sessions`` is rounded up to the next multiple of the demo's 62-session
    schedule; every arrival batch and every link capacity is multiplied by
    the same integer factor, so per-session dynamics are unchanged while the
    population grows.
    """
    if sessions < DEMO_SESSION_TOTAL:
        raise ValidationError(
            f"sessions must be >= {DEMO_SESSION_TOTAL} (one demo schedule), got {sessions}"
        )
    scale = math.ceil(sessions / DEMO_SESSION_TOTAL)
    base = build_demo_scenario(capacity=DEMO_LINK_CAPACITY * scale)
    return DemoScenario(
        topology=base.topology,
        blue_prefix=base.blue_prefix,
        server_routers=base.server_routers,
        controller_attachment=base.controller_attachment,
        static_demands=base.static_demands,
        monitored_links=base.monitored_links,
        flow_schedule=tuple(
            (event_time, server, count * scale)
            for event_time, server, count in base.flow_schedule
        ),
        video_bitrate=base.video_bitrate,
        link_capacity=base.link_capacity,
    )


def run_flashcrowd_classes(
    sessions: int = 1_000_000,
    with_controller: bool = True,
    duration: float = 60.0,
    video_duration: float = 90.0,
    policy: LoadBalancerPolicy = LoadBalancerPolicy(),
    hash_salt: int = 0,
    dataplane_incremental: bool = True,
    dataplane_kernel: Optional[str] = None,
    seed: Optional[int] = None,
    keep_demo_result: bool = True,
) -> FlashCrowdClassesResult:
    """Run the scaled Fig. 2-style flash crowd on the aggregate data plane.

    A pure function of its arguments (``seed`` draws the ECMP hash salt,
    as in :func:`~repro.experiments.fig2.run_demo_timeseries`); the
    returned ``wall_seconds`` is the only non-deterministic field.  Set
    ``keep_demo_result=False`` to drop the bulky per-sample series when only
    the scalar summary matters (the sweep rows do).
    """
    scenario = build_scaled_demo_scenario(sessions)
    scale = math.ceil(sessions / DEMO_SESSION_TOTAL)
    start = time.perf_counter()
    demo = run_demo_timeseries(
        with_controller=with_controller,
        duration=duration,
        video_duration=video_duration,
        policy=policy,
        scenario=scenario,
        hash_salt=hash_salt,
        dataplane_incremental=dataplane_incremental,
        dataplane_aggregate=True,
        dataplane_kernel=dataplane_kernel,
        seed=seed,
    )
    wall_seconds = time.perf_counter() - start
    return FlashCrowdClassesResult(
        sessions=demo.sessions_started,
        scale=scale,
        with_controller=with_controller,
        qoe=demo.qoe,
        wall_seconds=wall_seconds,
        peak_utilization=demo.peak_utilization,
        alarms=len(demo.alarms),
        actions=len(demo.actions),
        lies_active=demo.lies_active,
        dataplane_stats=dict(demo.dataplane_stats),
        demo=demo if keep_demo_result else None,
    )
