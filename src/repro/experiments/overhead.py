"""Control-plane and data-plane overhead comparison (the §2 claim).

The paper argues that Fibbing programs per-destination multi-path with
"very limited control-plane overhead" and "no data-plane overhead", while
MPLS RSVP-TE needs per-path tunnels, signalling, and packet encapsulation.
This experiment quantifies both sides on the same instances: for a growing
number of rebalanced destinations, it runs the Fibbing pipeline and the
RSVP-TE baseline on identical (topology, demand) inputs and reports the
amount of state, the number of control messages, the control bytes, and the
per-packet overhead each needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import LoadBalancerPolicy
from repro.dataplane.demand import TrafficMatrix
from repro.igp.lsa import ESTIMATED_LSA_BYTES
from repro.igp.topology import Topology
from repro.te.fibbing import FibbingTe
from repro.te.mpls import MplsRsvpTe
from repro.topologies.random import random_topology
from repro.util.errors import ValidationError
from repro.util.units import mbps

__all__ = ["OverheadRow", "run_overhead_comparison", "build_flash_crowd_demands"]

#: Estimated size of one RSVP PATH or RESV message, in bytes (conservative).
RSVP_MESSAGE_BYTES = 128


@dataclass(frozen=True)
class OverheadRow:
    """Overhead of one scheme for one number of rebalanced destinations."""

    scheme: str
    destinations: int
    state_entries: int
    control_messages: int
    control_bytes: int
    per_packet_overhead_bytes: int
    max_utilization: float


def build_flash_crowd_demands(
    topology: Topology,
    destinations: int,
    sources_per_destination: int = 2,
    rate: float = mbps(20),
    seed: int = 0,
) -> TrafficMatrix:
    """Synthetic flash crowd: a few heavy sources per stressed destination."""
    if destinations < 1:
        raise ValidationError(f"destinations must be >= 1, got {destinations}")
    prefixes = topology.prefixes
    if destinations > len(prefixes):
        raise ValidationError(
            f"topology only announces {len(prefixes)} prefixes, cannot stress {destinations}"
        )
    rng = random.Random(seed)
    demands = TrafficMatrix()
    routers = topology.routers
    for prefix in prefixes[:destinations]:
        attachment_routers = {att.router for att in topology.prefix_attachments(prefix)}
        candidates = [router for router in routers if router not in attachment_routers]
        sources = rng.sample(candidates, min(sources_per_destination, len(candidates)))
        for source in sources:
            demands.add(source, prefix, rate)
    return demands


def run_overhead_comparison(
    destination_counts: Sequence[int] = (1, 2, 4, 8),
    topology: Optional[Topology] = None,
    seed: int = 0,
    policy: LoadBalancerPolicy = LoadBalancerPolicy(),
) -> List[OverheadRow]:
    """Compare Fibbing and RSVP-TE overheads for growing destination counts."""
    if topology is None:
        topology = random_topology(num_routers=12, edge_probability=0.3, seed=seed)
    rows: List[OverheadRow] = []
    for count in destination_counts:
        demands = build_flash_crowd_demands(topology, destinations=count, seed=seed)

        fibbing = FibbingTe(policy=policy)
        fibbing_outcome = fibbing.route(topology, demands)
        assert fibbing.controller is not None  # populated by route()
        rows.append(
            OverheadRow(
                scheme="fibbing",
                destinations=count,
                state_entries=fibbing_outcome.control_state,
                control_messages=fibbing_outcome.control_messages,
                control_bytes=fibbing.controller.stats.bytes_sent,
                per_packet_overhead_bytes=fibbing_outcome.per_packet_overhead_bytes,
                max_utilization=fibbing_outcome.max_utilization,
            )
        )

        mpls = MplsRsvpTe()
        mpls_outcome = mpls.route(topology, demands)
        rows.append(
            OverheadRow(
                scheme="mpls-rsvp-te",
                destinations=count,
                state_entries=mpls_outcome.control_state,
                control_messages=mpls_outcome.control_messages,
                control_bytes=mpls_outcome.control_messages * RSVP_MESSAGE_BYTES,
                per_packet_overhead_bytes=mpls_outcome.per_packet_overhead_bytes,
                max_utilization=mpls_outcome.max_utilization,
            )
        )
    return rows
