"""The dynamic Fig. 2 experiment: the full demo, end to end.

The harness wires every subsystem together over one shared simulated
timeline, exactly like the live demo:

* an event-driven IGP domain (:class:`~repro.igp.network.IgpNetwork`) over
  the Fig. 1a topology;
* the flow-level data plane fed by the routers' installed FIBs;
* two video servers (S1 behind B, S2 behind A) streaming 1 Mbit/s videos to
  clients in the blue prefix, following the paper's arrival schedule
  (1 flow at t=0, +30 at t=15 s, +31 from S2 at t=35 s);
* the SNMP poller / collector / alarm pipeline;
* optionally, the Fibbing controller attached at R3 running the on-demand
  load balancer.

The result exposes the per-link throughput series the paper plots in Fig. 2
(links A–R1, B–R2 and B–R3), the aggregate QoE report backing the
smooth-vs-stutter claim, the controller's actions, and the control-plane
overhead counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.chaos import FaultInjector, FaultPlan
from repro.core.controller import FibbingController
from repro.core.lies import per_prefix_lie_digests
from repro.core.loadbalancer import OnDemandLoadBalancer, RebalanceAction
from repro.core.policies import LoadBalancerPolicy
from repro.core.scheduler import ControlLoopScheduler, ConvergenceMonitor
from repro.dataplane.engine import AggregateDemandEngine, DataPlaneEngine, LinkSample
from repro.igp.network import IgpNetwork
from repro.igp.router import RouterTimers
from repro.monitoring.alarms import AlarmEvent, UtilizationAlarm
from repro.monitoring.collector import LoadCollector
from repro.monitoring.counters import build_agents
from repro.monitoring.notifications import ClientRegistry
from repro.monitoring.poller import SnmpPoller
from repro.topologies.demo import DemoScenario, build_demo_scenario
from repro.util.timeline import Timeline
from repro.video.catalog import Video, VideoCatalog
from repro.video.flashcrowd import ArrivalEvent, apply_schedule, demo_schedule
from repro.video.qoe import QoeReport, aggregate_qoe
from repro.video.server import StreamingService, VideoServer

__all__ = ["DemoRunResult", "run_demo_timeseries", "reaction_times"]

LinkKey = Tuple[str, str]


@dataclass
class DemoRunResult:
    """Everything the Fig. 2 and QoE benchmarks need from one demo run."""

    scenario: DemoScenario
    with_controller: bool
    duration: float
    #: Absolute simulated time at which the experiment clock started (after
    #: initial IGP convergence).  Alarm and action timestamps are absolute;
    #: subtract this epoch to compare them with the relative series below.
    epoch: float
    #: Per monitored link: list of (time, throughput in byte/s) samples,
    #: matching Fig. 2's axes (time in seconds, throughput in byte/s).
    throughput_series: Dict[LinkKey, List[Tuple[float, float]]]
    qoe: QoeReport
    alarms: List[AlarmEvent]
    actions: List[RebalanceAction]
    max_utilization_series: List[Tuple[float, float]]
    lies_active: int
    controller_messages: int
    flooding_stats: Dict[str, int]
    sessions_started: int
    #: Final cumulative per-link byte counters (the SNMP view at run end);
    #: pinned bit-for-bit by the golden Fig. 2 snapshot.
    link_counters: Dict[LinkKey, float] = field(default_factory=dict)
    #: ``dp_*`` counters of the data-plane engine: how much of the run's
    #: flow churn was served from the path cache / warm-started allocation.
    dataplane_stats: Dict[str, int] = field(default_factory=dict)
    #: Full controller counter snapshot (``ctl_*`` included): how much of
    #: the run's reactions was served from the plan cache vs. re-planned,
    #: and the lie churn the reconciler actually shipped.  Empty without a
    #: controller.
    controller_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-prefix digests of the lies installed at run end (names included);
    #: pinned by the golden lie-set snapshot.  Empty without a controller.
    lie_digests: Dict[str, str] = field(default_factory=dict)
    #: ``fault_*`` accounting of the run's :class:`~repro.core.chaos.FaultInjector`
    #: (links downed/restored, LSAs dropped, polls timed out/omitted,
    #: controller crashes/restarts).  Empty without a fault plan.
    fault_stats: Dict[str, int] = field(default_factory=dict)
    #: Poll samples the alarm refused to act on for staleness (degraded
    #: monitoring with a ``staleness_horizon``); 0 otherwise.
    alarm_suppressed_stale: int = 0

    @property
    def peak_utilization(self) -> float:
        """Highest sampled link utilisation over the whole run."""
        return max((value for _, value in self.max_utilization_series), default=0.0)

    def series_of(self, source: str, target: str) -> List[Tuple[float, float]]:
        """The throughput series of one monitored link (byte/s, like Fig. 2)."""
        return self.throughput_series.get((source, target), [])

    def final_throughput(self, source: str, target: str) -> float:
        """Throughput (byte/s) of a monitored link at the last sample."""
        series = self.series_of(source, target)
        return series[-1][1] if series else 0.0


def run_demo_timeseries(
    with_controller: bool = True,
    duration: float = 60.0,
    poll_interval: float = 1.0,
    sample_interval: float = 1.0,
    video_duration: float = 90.0,
    policy: LoadBalancerPolicy = LoadBalancerPolicy(),
    scenario: Optional[DemoScenario] = None,
    router_timers: RouterTimers = RouterTimers(),
    hash_salt: int = 0,
    dataplane_incremental: bool = True,
    dataplane_aggregate: bool = False,
    dataplane_kernel: Optional[str] = None,
    controller_incremental: bool = True,
    controller_shards: int = 0,
    controller_parallel: str = "serial",
    seed: Optional[int] = None,
    poll_jitter: float = 0.0,
    reaction_latency: float = 0.0,
    shard_stagger: float = 0.0,
    supersede: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    staleness_horizon: Optional[float] = None,
) -> DemoRunResult:
    """Run the Fig. 2 experiment and return its measurements.

    ``with_controller=False`` reproduces the "controller disabled" variant
    used for the stutter comparison; everything else is identical.
    ``dataplane_incremental=False`` disables the data plane's path cache and
    warm-start allocator (from-scratch recomputation per event) — the
    results are bit-identical either way; only the ``dp_*`` counters and the
    wall-clock cost differ.  ``dataplane_aggregate=True`` swaps the per-flow
    engine for the :class:`~repro.dataplane.engine.AggregateDemandEngine`:
    each arrival batch becomes one demand class and one cohort QoE client,
    so the run's cost is O(arrival batches), not O(sessions) — link series,
    byte counters and samples stay bit-identical to the per-flow run (the
    dual-engine differential suite pins this), while the QoE report
    aggregates count-weighted cohorts.  ``dataplane_kernel`` picks the
    progressive-filling kernel (``"python"``/``"numpy"``; default follows
    ``REPRO_KERNEL``).  ``controller_incremental=False`` likewise runs
    the controller's clear-and-replay oracle instead of the plan-cache
    reconciler, with bit-identical installed lies and traffic.
    ``controller_shards > 0`` swaps the single controller for a
    :class:`~repro.core.shard.ShardedFibbingController` with that many
    shards (``controller_parallel`` picks its dispatch mode) — again
    bit-identical, per the shard differential suite; the run's
    ``controller_stats`` then carry the ``shard_*`` wave counters.
    ``seed`` (the sweep harness entry point) derives the flow ``hash_salt``
    from an explicit ``random.Random(seed)`` when no salt is given — the
    run is a pure function of its arguments, with no module-level RNG state
    to leak between runs sharing a sweep worker; ``seed=None`` keeps the
    historical salt.

    The asynchronous control-loop timing knobs (all defaulting to the
    synchronous/byte-identical behaviour):

    * ``poll_jitter`` — uniform ±jitter on every SNMP poll gap, from an
      explicit :class:`random.Random` derived from ``seed`` (or the salt)
      by integer arithmetic, so runs are independent of ``PYTHONHASHSEED``;
    * ``reaction_latency`` — seconds between an alarm and the controller's
      reaction executing (via
      :class:`~repro.core.scheduler.ControlLoopScheduler`); the reaction
      observes demand/monitoring state at the completion instant;
    * ``shard_stagger`` — with ``controller_shards > 0``, the gap between
      consecutive per-shard injection sub-waves;
    * ``supersede`` — whether an alarm firing mid-reaction cancels the
      pending reaction and re-plans from fresh state (counted in
      ``ctl_supersessions``).

    When a controller is attached, a read-only
    :class:`~repro.core.scheduler.ConvergenceMonitor` additionally charges
    per-wave convergence time and transient mixed-FIB loops/blackholes to
    the ``ctl_converge_*`` / ``ctl_transient_*`` counters.

    The chaos knobs (both defaulting to the clean run):

    * ``fault_plan`` — a :class:`~repro.core.chaos.FaultPlan` executed by a
      :class:`~repro.core.chaos.FaultInjector` over the run; event times in
      the plan are *relative to the experiment epoch* (like the arrival
      schedule) and shifted onto the absolute timeline here.  An empty plan
      wires nothing and stays byte-identical to ``fault_plan=None``.
    * ``staleness_horizon`` — seconds beyond which a poll sample's interval
      marks it too stale for the alarm to act on (degraded-monitoring
      suppression, counted in ``alarm_suppressed_stale``).
    """
    if seed is not None and hash_salt == 0:
        hash_salt = random.Random(seed).randrange(1 << 31)
    if scenario is None:
        scenario = build_demo_scenario()
    topology = scenario.topology
    timeline = Timeline()

    # --- control plane -------------------------------------------------- #
    network = IgpNetwork(topology, timeline, timers=router_timers, max_ecmp=policy.max_ecmp_entries)
    network.start()
    network.converge()
    epoch = timeline.now  # all experiment times are relative to this instant

    # --- data plane ------------------------------------------------------ #
    def fib_provider():
        return {
            name: process.fib
            for name, process in network.routers.items()
            if process.fib is not None
        }

    engine_cls = AggregateDemandEngine if dataplane_aggregate else DataPlaneEngine
    engine = engine_cls(
        topology,
        fib_provider,
        timeline,
        sample_interval=sample_interval,
        hash_salt=hash_salt,
        incremental=dataplane_incremental,
        kernel=dataplane_kernel,
    )
    engine.bind_to_network(network)
    engine.start()

    # --- video workload --------------------------------------------------- #
    catalog = VideoCatalog(
        [Video(title="demo-clip", bitrate=scenario.video_bitrate, duration=video_duration)]
    )
    service = StreamingService(engine)
    for server_name, ingress in scenario.server_routers.items():
        service.add_server(VideoServer(name=server_name, ingress=ingress, catalog=catalog))

    # --- monitoring -------------------------------------------------------- #
    agents = build_agents(topology, engine)
    poll_rng: Optional[random.Random] = None
    if poll_jitter > 0.0:
        # Integer arithmetic only (never string hashing): the jitter stream
        # must be identical under every PYTHONHASHSEED.
        poll_rng = random.Random((seed if seed is not None else hash_salt) * 1000003 + 17)
    poller = SnmpPoller(
        agents, timeline, poll_interval=poll_interval, jitter=poll_jitter, rng=poll_rng
    )
    collector = LoadCollector(topology)
    alarm = UtilizationAlarm(
        collector,
        raise_threshold=policy.utilization_threshold,
        clear_threshold=policy.clear_threshold,
        cooldown=policy.alarm_cooldown,
        staleness_horizon=staleness_horizon,
    )
    alarm.wire(poller)
    poller.start()

    # --- controller -------------------------------------------------------- #
    balancer: Optional[OnDemandLoadBalancer] = None
    controller: Optional[FibbingController] = None
    if with_controller:
        if controller_shards > 0:
            from repro.core.shard import ShardedFibbingController

            controller = ShardedFibbingController(
                topology,
                shards=controller_shards,
                network=network,
                attachment=scenario.controller_attachment,
                epsilon=policy.epsilon,
                incremental=controller_incremental,
                parallel=controller_parallel,
            )
        else:
            controller = FibbingController(
                topology,
                network=network,
                attachment=scenario.controller_attachment,
                epsilon=policy.epsilon,
                incremental=controller_incremental,
            )
        registry = ClientRegistry()
        registry.attach(service.bus)
        balancer = OnDemandLoadBalancer(
            controller,
            registry,
            policy=policy,
            managed_prefixes=[scenario.blue_prefix],
            dataplane=engine,
        )
        # The scheduler replaces the direct `balancer.attach(alarm)` wiring;
        # at the default zero knobs it reacts synchronously inside the alarm
        # callback, so the run stays byte-identical to the historical loop.
        scheduler = ControlLoopScheduler(
            balancer,
            timeline,
            reaction_latency=reaction_latency,
            shard_stagger=shard_stagger,
            supersede=supersede,
        )
        scheduler.attach(alarm)
        # Read-only observer (registered after the engine's FIB listener, so
        # it sees the freshly re-walked interim data-plane state).
        ConvergenceMonitor(network, engine, counters=controller.plan_cache.counters)

    # --- chaos ------------------------------------------------------------- #
    injector: Optional[FaultInjector] = None
    if fault_plan is not None and not fault_plan.is_empty:
        # Plan event times are epoch-relative, like the arrival schedule.
        shifted = replace(
            fault_plan,
            events=tuple(
                replace(event, time=epoch + event.time)
                for event in fault_plan.events
            ),
        )
        injector = FaultInjector(network, shifted, controller=controller, poller=poller)
        injector.start()

    # --- workload schedule -------------------------------------------------- #
    schedule = [
        ArrivalEvent(
            time=epoch + event.time,
            server=event.server,
            count=event.count,
            video_title=event.video_title,
        )
        for event in demo_schedule(scenario)
    ]
    sessions = apply_schedule(service, timeline, schedule, scenario.blue_prefix)

    # --- run ------------------------------------------------------------------ #
    try:
        timeline.run_until(epoch + duration)
    finally:
        close = getattr(controller, "close", None)
        if close is not None:
            # Shut the sharded facade's executors down (also when the run
            # raises); counters and installed lies survive for the result
            # collection below.
            close()

    # --- collect results ----------------------------------------------------- #
    throughput_series: Dict[LinkKey, List[Tuple[float, float]]] = {
        link: [] for link in scenario.monitored_links
    }
    max_utilization_series: List[Tuple[float, float]] = []
    for sample in engine.samples:
        relative_time = sample.time - epoch
        if relative_time < 0:
            continue
        for link in scenario.monitored_links:
            throughput_series[link].append(
                (relative_time, sample.rate_of(*link) / 8.0)
            )
        utilization = max(
            (
                sample.rates.get(link.key, 0.0) / link.capacity
                for link in topology.links
            ),
            default=0.0,
        )
        max_utilization_series.append((relative_time, utilization))

    qoe = aggregate_qoe(service.clients()) if service.clients() else None
    if qoe is None:
        raise RuntimeError("the demo run started no video session; check the schedule")

    return DemoRunResult(
        scenario=scenario,
        with_controller=with_controller,
        duration=duration,
        epoch=epoch,
        throughput_series=throughput_series,
        qoe=qoe,
        alarms=list(alarm.events),
        actions=list(balancer.actions) if balancer is not None else [],
        max_utilization_series=max_utilization_series,
        lies_active=controller.active_lie_count() if controller is not None else 0,
        controller_messages=controller.stats.messages_sent if controller is not None else 0,
        flooding_stats=network.flooding_stats,
        sessions_started=sessions,
        link_counters=engine.all_link_counters(),
        dataplane_stats=engine.counters.snapshot(),
        controller_stats=(
            controller.stats.snapshot() if controller is not None else {}
        ),
        lie_digests=(
            per_prefix_lie_digests(controller.active_lies())
            if controller is not None
            else {}
        ),
        fault_stats=(
            injector.counters.snapshot() if injector is not None else {}
        ),
        alarm_suppressed_stale=alarm.suppressed_stale,
    )


def reaction_times(result: DemoRunResult, threshold: Optional[float] = None) -> List[float]:
    """Time from each alarm until the sampled max utilisation drops below ``threshold``.

    This is the ablation-A1 metric: how long the network stays hot after the
    monitoring pipeline notices a surge.  Alarms that never see the network
    cool down before the end of the run are reported as the remaining run
    time (a lower bound).
    """
    if threshold is None:
        threshold = 0.9
    times: List[float] = []
    last_time = result.max_utilization_series[-1][0] if result.max_utilization_series else 0.0
    for alarm in result.alarms:
        alarm_time = alarm.time - result.epoch
        recovered = None
        for sample_time, utilization in result.max_utilization_series:
            if sample_time > alarm_time and utilization < threshold:
                recovered = sample_time - alarm_time
                break
        if recovered is None:
            recovered = max(0.0, last_time - alarm_time)
        times.append(recovered)
    return times
