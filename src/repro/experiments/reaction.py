"""A7 — reaction-time curves of the asynchronous control loop.

The synchronous demo loop reacts the instant an alarm fires, so the only
latency Fig. 2 exhibits is the monitoring pipeline's detection delay plus
IGP convergence.  This experiment sweeps the three asynchronous timing
knobs the paper's deployment discussion (§5) cares about — SNMP poll
interval (with optional jitter), controller reaction latency, and the
routers' SPF/FIB hold-downs — and measures how long the network stays hot
after each alarm (:func:`repro.experiments.fig2.reaction_times`), alongside
the convergence/transient counters charged by the
:class:`~repro.core.scheduler.ConvergenceMonitor`.

Every run is the full closed-loop Fig. 2 demo
(:func:`~repro.experiments.fig2.run_demo_timeseries`) and a pure function
of ``(seed, knobs)``: the per-flow ECMP salt and the poll-jitter stream
both derive from explicit ``random.Random`` instances seeded by integer
arithmetic, so rows are bit-identical across workers and
``PYTHONHASHSEED`` values.  The sweep harness exposes it as the
``"reaction"`` experiment; ``tests/golden/reaction_curves.json`` pins the
curves and ``benchmarks/test_bench_reaction_async.py`` publishes them as a
``BENCH_*.json`` artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List, Sequence

from repro.experiments.fig2 import reaction_times, run_demo_timeseries
from repro.igp.router import RouterTimers

__all__ = ["ReactionRow", "run_reaction_curves"]


@dataclass(frozen=True)
class ReactionRow:
    """One grid point of the reaction-time sweep."""

    poll_interval: float
    poll_jitter: float
    reaction_latency: float
    spf_delay: float
    shard_stagger: float
    alarms: int
    actions: int
    #: ``ctl_*`` bookkeeping of the asynchronous scheduler and the
    #: convergence monitor for this run.
    reactions_deferred: int
    supersessions: int
    transient_loops: int
    transient_blackholes: int
    converge_events: int
    converge_seconds: float
    #: Alarm-to-cool reaction times (the A1 metric), in seconds.
    mean_reaction_time: float
    max_reaction_time: float
    #: Mean alarm instant relative to the experiment epoch — the monitoring
    #: pipeline's detection delay, which grows with the poll interval.
    mean_detection_time: float
    #: Mean absolute instant (relative to the epoch) at which the sampled
    #: max utilisation fell back below the threshold — detection plus
    #: reaction.  Unlike the alarm-relative reaction times, this end-to-end
    #: figure is not aliased by the sampling grid, so it is the metric the
    #: poll-interval curve is judged on.
    mean_recovery_time: float
    #: Mean alarm-to-execution control-plane delay over the run's actions
    #: (``RebalanceAction.reaction_latency``); equals the configured
    #: ``reaction_latency`` whenever no supersession restarted the clock.
    mean_action_latency: float
    peak_utilization: float
    total_stall_time: float


def run_reaction_curves(
    seed: int = 0,
    poll_intervals: Sequence[float] = (0.5, 1.0, 2.0),
    reaction_latencies: Sequence[float] = (0.0, 0.5),
    spf_delays: Sequence[float] = (0.05, 0.2),
    poll_jitter: float = 0.0,
    duration: float = 60.0,
    threshold: float = 0.9,
    controller_shards: int = 0,
    shard_stagger: float = 0.0,
) -> List[ReactionRow]:
    """Sweep the timing knobs and return one :class:`ReactionRow` per point.

    The grid is the cartesian product ``spf_delays x poll_intervals x
    reaction_latencies`` (in that nesting order); ``poll_jitter``,
    ``controller_shards`` and ``shard_stagger`` apply to every point.  Each
    point runs the full Fig. 2 closed loop for ``duration`` seconds and
    reports the alarm-to-cool reaction times against ``threshold``.
    """
    rows: List[ReactionRow] = []
    for spf_delay in spf_delays:
        timers = RouterTimers(spf_delay=spf_delay, fib_delay=spf_delay)
        for poll_interval in poll_intervals:
            for reaction_latency in reaction_latencies:
                result = run_demo_timeseries(
                    with_controller=True,
                    duration=duration,
                    poll_interval=poll_interval,
                    poll_jitter=poll_jitter,
                    reaction_latency=reaction_latency,
                    shard_stagger=shard_stagger,
                    controller_shards=controller_shards,
                    router_timers=timers,
                    seed=seed,
                )
                times = reaction_times(result, threshold)
                stats = result.controller_stats
                action_latencies = [
                    action.reaction_latency for action in result.actions
                ]
                detections = [alarm.time - result.epoch for alarm in result.alarms]
                recoveries = [
                    detection + reaction
                    for detection, reaction in zip(detections, times)
                ]
                rows.append(
                    ReactionRow(
                        poll_interval=poll_interval,
                        poll_jitter=poll_jitter,
                        reaction_latency=reaction_latency,
                        spf_delay=spf_delay,
                        shard_stagger=shard_stagger,
                        alarms=len(result.alarms),
                        actions=len(result.actions),
                        reactions_deferred=int(stats.get("ctl_reactions_deferred", 0)),
                        supersessions=int(stats.get("ctl_supersessions", 0)),
                        transient_loops=int(stats.get("ctl_transient_loops", 0)),
                        transient_blackholes=int(stats.get("ctl_transient_blackholes", 0)),
                        converge_events=int(stats.get("ctl_converge_events", 0)),
                        converge_seconds=round(
                            float(stats.get("ctl_converge_seconds", 0.0)), 9
                        ),
                        mean_reaction_time=round(mean(times), 9) if times else 0.0,
                        max_reaction_time=round(max(times), 9) if times else 0.0,
                        mean_detection_time=(
                            round(mean(detections), 9) if detections else 0.0
                        ),
                        mean_recovery_time=(
                            round(mean(recoveries), 9) if recoveries else 0.0
                        ),
                        mean_action_latency=(
                            round(mean(action_latencies), 9) if action_latencies else 0.0
                        ),
                        peak_utilization=round(result.peak_utilization, 9),
                        total_stall_time=round(result.qoe.total_stall_time, 9),
                    )
                )
    return rows
