"""Optimality study (the §2 claim that Fibbing can implement the LP optimum).

For a family of seeded random topologies and flash-crowd traffic matrices,
every TE scheme is run on the same instance and its maximum link utilisation
is compared against the fractional LP lower bound.  The interesting number
is the *gap*: how much worse than optimal each scheme is.  Plain IGP and
even-ECMP suffer badly during a flash crowd; Fibbing tracks the optimum up
to the error introduced by the bounded ECMP table size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import LoadBalancerPolicy
from repro.dataplane.demand import TrafficMatrix
from repro.experiments.overhead import build_flash_crowd_demands
from repro.igp.topology import Topology
from repro.te.base import TrafficEngineeringScheme
from repro.te.ecmp import EcmpRouting
from repro.te.fibbing import FibbingTe
from repro.te.mcf import OptimalMultiCommodityFlow
from repro.te.mpls import MplsRsvpTe
from repro.te.shortest_path import SingleShortestPath
from repro.topologies.random import random_topology

__all__ = ["OptimalityRow", "run_optimality_study", "default_schemes"]


@dataclass(frozen=True)
class OptimalityRow:
    """One scheme's result on one random instance."""

    seed: int
    scheme: str
    max_utilization: float
    optimal_utilization: float
    delivery_fraction: float
    control_state: int

    @property
    def gap(self) -> float:
        """Relative distance to the LP optimum (0.0 means optimal)."""
        if self.optimal_utilization <= 0:
            return 0.0
        return self.max_utilization / self.optimal_utilization - 1.0


def default_schemes(policy: LoadBalancerPolicy = LoadBalancerPolicy()) -> List[TrafficEngineeringScheme]:
    """The scheme line-up used by the optimality benchmark."""
    return [
        SingleShortestPath(),
        EcmpRouting(max_ecmp=policy.max_ecmp_entries),
        FibbingTe(policy=policy),
        MplsRsvpTe(),
        OptimalMultiCommodityFlow(),
    ]


def run_optimality_study(
    seeds: Sequence[int] = (0, 1, 2),
    num_routers: int = 10,
    destinations: int = 3,
    schemes: Optional[Sequence[TrafficEngineeringScheme]] = None,
    policy: LoadBalancerPolicy = LoadBalancerPolicy(),
) -> List[OptimalityRow]:
    """Run every scheme on a family of seeded random flash-crowd instances."""
    if schemes is None:
        schemes = default_schemes(policy)
    rows: List[OptimalityRow] = []
    for seed in seeds:
        topology = random_topology(num_routers=num_routers, edge_probability=0.3, seed=seed)
        demands = build_flash_crowd_demands(topology, destinations=destinations, seed=seed)
        optimum = OptimalMultiCommodityFlow().route(topology, demands).max_utilization
        for scheme in schemes:
            outcome = scheme.route(topology, demands)
            rows.append(
                OptimalityRow(
                    seed=seed,
                    scheme=outcome.scheme,
                    max_utilization=outcome.max_utilization,
                    optimal_utilization=optimum,
                    delivery_fraction=outcome.delivery_fraction,
                    control_state=outcome.control_state,
                )
            )
    return rows
