"""A8 — chaos resilience: QoE with and without controller recovery.

The paper's central robustness argument (§5) is that Fibbing degrades
gracefully: the lies are fake LSAs *in the routers' LSDBs*, so forwarding
keeps following the lied topology even when the controller dies, and a
restarted controller re-learns its own state from the LSDB instead of
re-converging from scratch.  This experiment puts numbers on that claim by
running the full Fig. 2 closed loop (:func:`~repro.experiments.fig2.run_demo_timeseries`)
under a seeded :class:`~repro.core.chaos.FaultPlan` in three variants:

* ``"clean"`` — no faults at all; the byte-identical Fig. 2 baseline.
* ``"crash"`` — the controller crashes mid-run and never comes back.  The
  lies installed before the crash keep steering traffic (QoE holds for the
  flows they cover), but alarms fired after the crash are abandoned
  (``ctl_reactions_abandoned``) and later surges go unmitigated.
* ``"recovery"`` — same crash, plus a restart that resynchronises the
  controller from the attachment router's LSDB
  (:meth:`~repro.core.controller.FibbingController.resync`) and resumes
  reacting, recovering the QoE the crash variant loses.

The fault variants can additionally be degraded with seeded link churn
(never touching the lie anchors — an installed lie's forwarding address
must keep resolving through its anchor adjacency), per-adjacency LSA loss
and SNMP poll timeouts; the clean variant always runs at zero knobs.  Every
random draw comes from an explicit ``random.Random`` derived from the seed
by integer arithmetic, so rows are bit-identical across workers and
``PYTHONHASHSEED`` values.  The sweep harness exposes it as the
``"chaos"`` experiment and ``tests/golden/chaos_recovery.json`` pins the
rows.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.core.chaos import FaultEvent, FaultPlan, build_link_churn
from repro.experiments.fig2 import run_demo_timeseries
from repro.topologies.demo import build_demo_scenario
from repro.util.errors import ValidationError

__all__ = ["CHAOS_VARIANTS", "ChaosRow", "run_chaos_resilience"]

#: The three comparison rows: the clean baseline, the unrecovered crash and
#: the crash-plus-resync run.
CHAOS_VARIANTS = ("clean", "crash", "recovery")


@dataclass(frozen=True)
class ChaosRow:
    """One variant of the chaos comparison (same seed, same workload)."""

    variant: str
    crash_time: float
    recovery_time: float
    alarms: int
    actions: int
    lies_active: int
    #: Controller-side recovery bookkeeping (``ctl_*``).
    resyncs: int
    resync_lies_recovered: int
    reactions_abandoned: int
    #: Degraded-monitoring bookkeeping: samples the alarm refused for
    #: staleness.
    suppressed_stale: int
    #: Injected chaos (``fault_*``), all zero in the clean variant.
    link_downs: int
    link_ups: int
    lsas_dropped: int
    poll_timeouts: int
    poll_omissions: int
    controller_crashes: int
    controller_restarts: int
    #: QoE — the with/without-recovery comparison the experiment is about.
    sessions: int
    smooth_sessions: int
    stalled_sessions: int
    total_stall_time: float
    peak_utilization: float
    #: One hash over the per-prefix lie digests at run end (fake-node names
    #: included), pinned by the golden snapshot.
    lie_digest: str


def _combined_digest(per_prefix: Mapping[str, str]) -> str:
    canonical = json.dumps(dict(sorted(per_prefix.items())), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_chaos_resilience(
    seed: int = 0,
    duration: float = 60.0,
    crash_time: float = 25.0,
    recovery_time: float = 45.0,
    link_churn: int = 0,
    churn_start: float = 5.0,
    churn_spacing: float = 20.0,
    churn_hold: float = 6.0,
    lsa_loss_rate: float = 0.0,
    poll_timeout_rate: float = 0.0,
    staleness_horizon: Optional[float] = None,
    variants: Sequence[str] = CHAOS_VARIANTS,
) -> List[ChaosRow]:
    """Run the demo under chaos and return one :class:`ChaosRow` per variant.

    ``crash_time`` / ``recovery_time`` place the controller crash and (in
    the ``"recovery"`` variant) the resync, relative to the experiment
    epoch; the defaults crash after the first surge's mitigation and recover
    after the second surge, so the crash variant measurably loses the QoE
    the recovery variant restores.  ``link_churn`` adds that many seeded
    fail/restore episodes (never partitioning the domain and never touching
    the lie-anchor routers), ``lsa_loss_rate`` drops flooding messages
    per-adjacency and ``poll_timeout_rate`` degrades the SNMP path —
    all applied to the fault variants only, from independent seeded
    streams.  ``staleness_horizon`` applies to every variant (at the
    default ``None`` the alarm never suppresses, keeping the clean variant
    byte-identical to the plain Fig. 2 run).
    """
    if not 0.0 < crash_time < duration:
        raise ValidationError(
            f"crash_time must fall inside the run (0, {duration}), got {crash_time}"
        )
    if not crash_time < recovery_time < duration:
        raise ValidationError(
            f"recovery_time must fall inside ({crash_time}, {duration}), "
            f"got {recovery_time}"
        )
    for variant in variants:
        if variant not in CHAOS_VARIANTS:
            raise ValidationError(
                f"unknown chaos variant {variant!r}; expected a subset of "
                f"{CHAOS_VARIANTS}"
            )

    # The churn schedule is drawn once and shared by both fault variants, so
    # crash and recovery face the *same* degraded network and differ only in
    # whether the controller comes back.  The lie anchors (the ingress
    # routers the balancer plants fake nodes at) are excluded: an installed
    # lie's forwarding address must keep resolving through its anchor
    # adjacency.
    scenario = build_demo_scenario()
    churn_events = build_link_churn(
        scenario.topology,
        random.Random(seed * 1_000_003 + 307),
        count=link_churn,
        start=churn_start,
        spacing=churn_spacing,
        hold=churn_hold,
        exclude_routers=sorted(set(scenario.server_routers.values())),
    )

    def plan_for(variant: str) -> Optional[FaultPlan]:
        if variant == "clean":
            return None
        events = list(churn_events)
        events.append(FaultEvent(time=crash_time, kind="controller_crash"))
        if variant == "recovery":
            events.append(FaultEvent(time=recovery_time, kind="controller_restart"))
        return FaultPlan(
            events=tuple(events),
            lsa_loss_rate=lsa_loss_rate,
            poll_timeout_rate=poll_timeout_rate,
            seed=seed,
        )

    rows: List[ChaosRow] = []
    for variant in variants:
        result = run_demo_timeseries(
            with_controller=True,
            duration=duration,
            seed=seed,
            fault_plan=plan_for(variant),
            staleness_horizon=staleness_horizon,
        )
        ctl = result.controller_stats
        faults = result.fault_stats
        rows.append(
            ChaosRow(
                variant=variant,
                crash_time=crash_time,
                recovery_time=recovery_time,
                alarms=len(result.alarms),
                actions=len(result.actions),
                lies_active=result.lies_active,
                resyncs=int(ctl.get("ctl_resyncs", 0)),
                resync_lies_recovered=int(ctl.get("ctl_resync_lies_recovered", 0)),
                reactions_abandoned=int(ctl.get("ctl_reactions_abandoned", 0)),
                suppressed_stale=result.alarm_suppressed_stale,
                link_downs=int(faults.get("fault_link_downs", 0)),
                link_ups=int(faults.get("fault_link_ups", 0)),
                lsas_dropped=int(faults.get("fault_lsas_dropped", 0)),
                poll_timeouts=int(faults.get("fault_poll_timeouts", 0)),
                poll_omissions=int(faults.get("fault_poll_omissions", 0)),
                controller_crashes=int(faults.get("fault_controller_crashes", 0)),
                controller_restarts=int(faults.get("fault_controller_restarts", 0)),
                sessions=result.sessions_started,
                smooth_sessions=result.qoe.smooth_sessions,
                stalled_sessions=result.qoe.stalled_sessions,
                total_stall_time=round(result.qoe.total_stall_time, 9),
                peak_utilization=round(result.peak_utilization, 9),
                lie_digest=_combined_digest(result.lie_digests),
            )
        )
    return rows
