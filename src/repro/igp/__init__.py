"""Link-state IGP substrate (OSPF-like control plane).

The original demo ran OSPF (Quagga) inside a Mininet testbed.  This package
is a from-scratch, laptop-scale implementation of the control-plane pipeline
the demo depends on:

``topology``
    Physical routers, links (weights, capacities, delays) and attached
    destination prefixes.
``lsa``
    Link-state advertisements: router LSAs, prefix LSAs and the *fake* LSAs
    injected by the Fibbing controller.
``lsdb``
    Per-router link-state database, keyed by LSA identity and sequence
    number.
``graph``
    The computation graph a router derives from its LSDB (real and fake
    nodes, directed weighted edges, per-node prefix announcements).
``spf``
    Dijkstra shortest-path-first with full ECMP next-hop sets, plus the
    incremental repair (``update_spf``) that re-relaxes only the subtree
    affected by a batch of edge deltas.
``spf_cache``
    Per-source SPF results keyed by computation-graph version, replayed
    through the dirty-edge delta log on change.
``rib`` / ``fib``
    Per-prefix routes and forwarding entries; the FIB resolves fake
    next-hops to physical ones, preserving multiplicity (this is what gives
    Fibbing its uneven splitting ratios).
``rib_cache``
    Per-router RIBs and resolved FIBs keyed by computation-graph version,
    repaired per dirty prefix from the same delta log (the incremental-SPF
    pattern lifted to the route layer).
``flooding``
    Reliable LSA flooding between adjacent routers with propagation delays.
``router``
    The per-router process tying LSDB, SPF scheduling and FIB installation
    together.
``network``
    Orchestration of a whole IGP domain plus a static (non event-driven)
    route computation used by baselines and quick analyses.
``convergence``
    Helpers to measure how long the domain takes to reach a stable set of
    FIBs after a change.
"""

from repro.igp.topology import Topology, Link, RouterInfo, PrefixAttachment
from repro.igp.lsa import (
    Lsa,
    RouterLsa,
    PrefixLsa,
    FakeNodeLsa,
    LsaKey,
)
from repro.igp.graph import ComputationGraph, EdgeDelta, GraphChange
from repro.igp.kernel import ArraySpf, CsrIndex, InternTable, resolve_kernel
from repro.igp.spf import ShortestPaths, compute_spf, update_spf
from repro.igp.spf_cache import SpfCache, SpfCounters
from repro.igp.rib import Route, Rib, compute_rib, update_rib, rib_digest
from repro.igp.rib_cache import RibCache, RibCounters
from repro.igp.fib import Fib, FibEntry, resolve_rib_to_fib, update_fib
from repro.igp.lsdb import LinkStateDatabase
from repro.igp.router import RouterProcess, RouterTimers
from repro.igp.flooding import FloodingFabric, FloodingStats
from repro.igp.network import IgpNetwork, compute_static_fibs
from repro.igp.convergence import ConvergenceTracker

__all__ = [
    "Topology",
    "Link",
    "RouterInfo",
    "PrefixAttachment",
    "Lsa",
    "RouterLsa",
    "PrefixLsa",
    "FakeNodeLsa",
    "LsaKey",
    "ComputationGraph",
    "EdgeDelta",
    "GraphChange",
    "ShortestPaths",
    "compute_spf",
    "update_spf",
    "ArraySpf",
    "CsrIndex",
    "InternTable",
    "resolve_kernel",
    "SpfCache",
    "SpfCounters",
    "Route",
    "Rib",
    "compute_rib",
    "update_rib",
    "rib_digest",
    "RibCache",
    "RibCounters",
    "Fib",
    "FibEntry",
    "resolve_rib_to_fib",
    "update_fib",
    "LinkStateDatabase",
    "RouterProcess",
    "RouterTimers",
    "FloodingFabric",
    "FloodingStats",
    "IgpNetwork",
    "compute_static_fibs",
    "ConvergenceTracker",
]
