"""Versioned SPF result caching.

One :class:`SpfCache` holds, per source router, the last
:class:`~repro.igp.spf.ShortestPaths` together with the graph version it was
computed at.  Lookups against the same version are free; lookups against a
newer version replay the graph's dirty-edge delta log through
:func:`~repro.igp.spf.update_spf` so that only the affected subtree is
re-relaxed; and when the log cannot reach back far enough (or the change
touches too much of the graph) the cache transparently falls back to a full
:func:`~repro.igp.spf.compute_spf`.

The cache also understands *rebuilt* graphs: call sites that construct a
fresh :class:`~repro.igp.graph.ComputationGraph` per event (the per-router
LSDB, :func:`~repro.igp.network.compute_static_fibs`) hand every new build to
:meth:`SpfCache.observe`, which chains it to the previously observed build
via :meth:`~repro.igp.graph.ComputationGraph.continue_from` — identical
states keep their version (pure hits), changed states get exactly one delta
step appended.

On top of the per-source SPF entries the cache keeps the most recent full
FIB set per ECMP limit, so repeated static computations at an unchanged
version pay zero recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.igp import kernel as kernel_mod
from repro.igp.graph import ComputationGraph
from repro.igp.spf import ShortestPaths, compute_spf, update_spf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.igp.fib import Fib

__all__ = ["SpfCounters", "SpfCache"]


@dataclass
class SpfCounters:
    """Hit/miss/fallback accounting of one :class:`SpfCache`.

    Every SPF lookup increments exactly one of ``hits`` (same version),
    ``incremental_updates`` (delta replay), ``fallbacks`` (incremental path
    taken but the change was too large or malformed, full rerun) or
    ``full_recomputes`` (no usable cache entry or delta history).
    ``fib_cache_hits`` counts whole FIB-set reuses, which skip the SPF
    lookups entirely and are therefore *not* part of ``spf_lookups``.

    The ``kernel_*`` counters account for the array kernel
    (``REPRO_KERNEL=numpy``): Dijkstra runs and Ramalingam–Reps repairs
    executed by :mod:`repro.igp.kernel`, plus CSR adjacency index builds.
    They stay zero under the pure-Python kernel.
    """

    hits: int = 0
    incremental_updates: int = 0
    full_recomputes: int = 0
    fallbacks: int = 0
    fib_cache_hits: int = 0
    kernel_computes: int = 0
    kernel_updates: int = 0
    kernel_index_builds: int = 0

    @property
    def spf_lookups(self) -> int:
        """Total per-source SPF lookups served."""
        return self.hits + self.incremental_updates + self.full_recomputes + self.fallbacks

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy for reporting."""
        return {
            "spf_cache_hits": self.hits,
            "spf_incremental_updates": self.incremental_updates,
            "spf_full_recomputes": self.full_recomputes,
            "spf_fallbacks": self.fallbacks,
            "fib_cache_hits": self.fib_cache_hits,
            "spf_kernel_computes": self.kernel_computes,
            "spf_kernel_updates": self.kernel_updates,
            "spf_kernel_index_builds": self.kernel_index_builds,
        }

    def merge(self, other: "SpfCounters") -> None:
        """Add ``other``'s counts into this instance (for fleet aggregation)."""
        self.hits += other.hits
        self.incremental_updates += other.incremental_updates
        self.full_recomputes += other.full_recomputes
        self.fallbacks += other.fallbacks
        self.fib_cache_hits += other.fib_cache_hits
        self.kernel_computes += other.kernel_computes
        self.kernel_updates += other.kernel_updates
        self.kernel_index_builds += other.kernel_index_builds


class SpfCache:
    """Per-source SPF results keyed by graph version, with delta replay."""

    def __init__(
        self, full_threshold: float = 0.5, kernel: Optional[str] = None
    ) -> None:
        self.full_threshold = full_threshold
        #: Resolved kernel name (``"python"`` or ``"numpy"``); defaults to
        #: the ``REPRO_KERNEL`` environment variable, else ``"python"``.
        self.kernel = kernel_mod.resolve_kernel(kernel)
        self.counters = SpfCounters()
        self._graph: Optional[ComputationGraph] = None
        self._entries: Dict[str, Tuple[int, ShortestPaths]] = {}
        # Latest complete FIB set per max_ecmp: {max_ecmp: (version, fibs)}.
        self._fibs: Dict[int, Tuple[int, Dict[str, "Fib"]]] = {}
        # Array-kernel state: the interning table is append-only and spans
        # graph versions; the CSR index is rebuilt lazily per (graph,
        # version) and shared by every per-source lookup at that version.
        self._intern: Optional["kernel_mod.InternTable"] = None
        self._index: Optional["kernel_mod.CsrIndex"] = None
        self._index_graph: Optional[ComputationGraph] = None
        self._index_version: Optional[int] = None
        # One collapsed delta list per (from_version, to_version): every
        # per-source repair of the same wave shares the same edge changes.
        self._effective_memo: Dict[Tuple[int, int], list] = {}

    # ------------------------------------------------------------------ #
    # Graph lineage
    # ------------------------------------------------------------------ #
    def observe(self, graph: ComputationGraph) -> ComputationGraph:
        """Chain a (possibly rebuilt) graph to this cache's version lineage.

        Must be called with every new graph build before :meth:`spf`; the
        same live graph object may be observed repeatedly at no cost.
        """
        if self._graph is not None and graph is not self._graph:
            graph.continue_from(self._graph)
        self._graph = graph
        return graph

    def invalidate(self) -> None:
        """Drop every cached entry and the graph lineage (counters survive)."""
        self._graph = None
        self._entries.clear()
        self._fibs.clear()
        self._index = None
        self._index_graph = None
        self._index_version = None

    @property
    def version(self) -> Optional[int]:
        """Version of the most recently observed graph (``None`` before any)."""
        return self._graph.version if self._graph is not None else None

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def spf(self, graph: ComputationGraph, source: str) -> ShortestPaths:
        """The shortest paths from ``source`` over ``graph``, cached.

        Under ``kernel="numpy"`` the returned object is an
        :class:`~repro.igp.kernel.ArraySpf` (same query surface, identical
        contents); the dispatch logic — version hit, delta replay, full
        recompute — is shared between both kernels.
        """
        if graph is not self._graph:
            self.observe(graph)
        version = graph.version
        use_arrays = self.kernel == "numpy"
        entry = self._entries.get(source)
        if entry is not None:
            cached_version, cached = entry
            if cached_version == version:
                self.counters.hits += 1
                return cached
            deltas = graph.deltas_since(cached_version)
            if deltas is not None:
                if use_arrays and isinstance(cached, kernel_mod.ArraySpf):
                    index = self._kernel_index(graph, version)
                    memo_key = (cached_version, version)
                    effective = self._effective_memo.get(memo_key)
                    if effective is None:
                        effective = kernel_mod.collapse_deltas(graph, index, deltas)
                        self._effective_memo[memo_key] = effective
                    result = kernel_mod.update_spf_arrays(
                        cached,
                        graph,
                        index,
                        deltas,
                        full_threshold=self.full_threshold,
                        counters=self.counters,
                        effective=effective,
                    )
                    self._entries[source] = (version, result)
                    return result
                if not use_arrays:
                    result = update_spf(
                        cached,
                        graph,
                        deltas,
                        full_threshold=self.full_threshold,
                        counters=self.counters,
                    )
                    self._entries[source] = (version, result)
                    return result
        self.counters.full_recomputes += 1
        if use_arrays:
            result = kernel_mod.compute_spf_arrays(
                graph, self._kernel_index(graph, version), source, counters=self.counters
            )
        else:
            result = compute_spf(graph, source)
        self._entries[source] = (version, result)
        return result

    def _kernel_index(self, graph: ComputationGraph, version: int) -> "kernel_mod.CsrIndex":
        """The CSR adjacency index for ``graph`` at ``version`` (rebuilt lazily)."""
        if (
            self._index is None
            or self._index_graph is not graph
            or self._index_version != version
        ):
            if self._intern is None:
                self._intern = kernel_mod.InternTable()
            self._index = kernel_mod.CsrIndex.build(graph, self._intern)
            self._index_graph = graph
            self._index_version = version
            self._effective_memo.clear()
            self.counters.kernel_index_builds += 1
        return self._index

    # ------------------------------------------------------------------ #
    # Whole-FIB-set caching (static computations)
    # ------------------------------------------------------------------ #
    def cached_fibs(self, version: int, max_ecmp: int) -> Optional[Dict[str, "Fib"]]:
        """The FIB set stored for ``(version, max_ecmp)``, if still current."""
        entry = self._fibs.get(max_ecmp)
        if entry is not None and entry[0] == version:
            self.counters.fib_cache_hits += 1
            return entry[1]
        return None

    def store_fibs(self, version: int, max_ecmp: int, fibs: Dict[str, "Fib"]) -> None:
        """Remember the complete FIB set computed at ``version``."""
        self._fibs[max_ecmp] = (version, dict(fibs))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        version = self._graph.version if self._graph is not None else None
        return (
            f"SpfCache(sources={len(self._entries)}, version={version}, "
            f"counters={self.counters.snapshot()})"
        )
