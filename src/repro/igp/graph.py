"""The computation graph a router derives from its link-state database.

The graph contains *real* routers (from :class:`~repro.igp.lsa.RouterLsa`),
*fake* nodes (from :class:`~repro.igp.lsa.FakeNodeLsa`), directed weighted
edges, and per-node prefix announcements.  SPF (:mod:`repro.igp.spf`) runs on
this structure; it never needs to know whether a node is real or fake — that
distinction only matters when the RIB is resolved into a FIB.

The same class is also buildable straight from a :class:`Topology` plus a
list of lies, which is what the static route computation
(:func:`repro.igp.network.compute_static_fibs`) and the TE baselines use to
avoid running the full event-driven control plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.igp.lsa import FakeNodeLsa, Lsa, PrefixLsa, RouterLsa
from repro.igp.topology import Topology
from repro.util.errors import TopologyError
from repro.util.prefixes import Prefix

__all__ = ["ComputationGraph", "EdgeDelta", "GraphChange", "FakeNodeInfo"]

#: Bounds on the dirty-edge delta log.  When either is exceeded the oldest
#: steps are dropped and caches pinned to versions before the drop must fall
#: back to a full SPF recomputation.
_MAX_LOG_STEPS = 256
_MAX_LOG_EDGES = 4096


@dataclass(frozen=True)
class EdgeDelta:
    """One directed-edge change between two graph versions.

    ``old_cost is None`` means the edge did not exist before; ``new_cost is
    None`` means it no longer exists.  Node insertions and removals are fully
    described by the deltas of their incident edges (an isolated node never
    affects SPF).
    """

    source: str
    target: str
    old_cost: Optional[float]
    new_cost: Optional[float]


@dataclass(frozen=True)
class GraphChange:
    """Everything that changed between two graph versions.

    ``edges`` are the directed-edge deltas (what SPF repair consumes);
    ``prefixes`` are the prefixes whose announcer map changed in any way
    (announcer added/removed or metric changed); ``fake_nodes`` are the fake
    node names whose :class:`FakeNodeInfo` was added, removed or altered.
    The latter two are what per-prefix RIB/FIB dirty tracking consumes: a
    prefix untouched by all three components resolves to a bit-identical
    route, so its previous :class:`~repro.igp.rib.Route` can be reused.
    """

    edges: Tuple[EdgeDelta, ...] = ()
    prefixes: FrozenSet[Prefix] = frozenset()
    fake_nodes: FrozenSet[str] = frozenset()

    def merge(self, other: "GraphChange") -> "GraphChange":
        """Concatenation of two consecutive change steps."""
        return GraphChange(
            edges=self.edges + other.edges,
            prefixes=self.prefixes | other.prefixes,
            fake_nodes=self.fake_nodes | other.fake_nodes,
        )

    @property
    def is_empty(self) -> bool:
        return not (self.edges or self.prefixes or self.fake_nodes)


@dataclass(frozen=True)
class FakeNodeInfo:
    """Metadata about a fake node needed for FIB resolution."""

    name: str
    anchor: str
    forwarding_address: str


class ComputationGraph:
    """Directed weighted graph over real and fake nodes, with prefix announcements."""

    def __init__(self) -> None:
        self._edges: Dict[str, Dict[str, float]] = {}
        self._redges: Dict[str, Dict[str, float]] = {}
        self._announcements: Dict[str, Dict[Prefix, float]] = {}
        # Announcer refcount per prefix, so ``prefixes``/``prefix_count``
        # need no union over the per-node announcement dicts.
        self._prefix_refs: Dict[Prefix, int] = {}
        self._fake_nodes: Dict[str, FakeNodeInfo] = {}
        self._version = 0
        # Dirty delta log: (version-after-step, GraphChange of the step).
        # Beyond the edge deltas SPF repair needs, each step carries the
        # prefixes whose announcer map changed and the fake nodes touched,
        # which is what per-prefix RIB/FIB dirty tracking consumes.
        # ``_history_base`` is the oldest version the log can still replay
        # from; ``deltas_since``/``changes_since`` answer ``None`` for
        # anything older.  ``_recording`` is switched off while the builder
        # classmethods run — a freshly built graph has no usable history, so
        # logging every construction edge only to discard it would dominate
        # rebuild time.
        self._delta_log: List[Tuple[int, GraphChange]] = []
        self._log_edges = 0
        self._history_base = 0
        self._recording = True

    # ------------------------------------------------------------------ #
    # Versioning / delta log
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotonic counter bumped on every effective mutation."""
        return self._version

    def _record(self, change: GraphChange) -> None:
        """Bump the version and append one delta step to the log."""
        self._version += 1
        if not self._recording:
            return
        self._delta_log.append((self._version, change))
        self._log_edges += len(change.edges)
        self._trim_log()

    def _trim_log(self) -> None:
        while self._delta_log and (
            len(self._delta_log) > _MAX_LOG_STEPS or self._log_edges > _MAX_LOG_EDGES
        ):
            version, step = self._delta_log.pop(0)
            self._log_edges -= len(step.edges)
            self._history_base = version

    def _reset_history(self) -> None:
        """Forget the construction-time log (used by the builder classmethods)."""
        self._version = 0
        self._delta_log = []
        self._log_edges = 0
        self._history_base = 0
        self._recording = True

    def deltas_since(self, version: int) -> Optional[Tuple[EdgeDelta, ...]]:
        """Edge changes between graph state ``version`` and now.

        Returns ``()`` when the graph is unchanged, and ``None`` when the
        delta log no longer reaches back far enough (the caller must then
        recompute from scratch).
        """
        # Kept separate from ``changes_since`` so the per-source SPF hot path
        # does not pay for prefix/fake-node frozensets it never reads.
        if version == self._version:
            return ()
        if version < self._history_base or version > self._version:
            return None
        collected: List[EdgeDelta] = []
        for step_version, step in self._delta_log:
            if step_version > version:
                collected.extend(step.edges)
        return tuple(collected)

    def changes_since(self, version: int) -> Optional[GraphChange]:
        """Full :class:`GraphChange` between graph state ``version`` and now.

        Returns an empty change when the graph is unchanged, and ``None``
        when the delta log no longer reaches back far enough (the caller must
        then recompute from scratch).
        """
        if version == self._version:
            return GraphChange()
        if version < self._history_base or version > self._version:
            return None
        edges: List[EdgeDelta] = []
        prefixes: Set[Prefix] = set()
        fake_nodes: Set[str] = set()
        for step_version, step in self._delta_log:
            if step_version > version:
                edges.extend(step.edges)
                prefixes.update(step.prefixes)
                fake_nodes.update(step.fake_nodes)
        return GraphChange(
            edges=tuple(edges),
            prefixes=frozenset(prefixes),
            fake_nodes=frozenset(fake_nodes),
        )

    def continue_from(self, previous: "ComputationGraph") -> None:
        """Chain this (freshly built) graph to ``previous``'s version history.

        When the two states are identical the previous version and delta log
        are adopted unchanged, so caches keyed by version keep hitting.
        Otherwise the edge diff is appended as a single delta step on top of
        the previous history.  This is how rebuild-from-scratch call sites
        (``LinkStateDatabase.graph``, ``compute_static_fibs``) get
        incremental SPF without mutating a live graph in place.
        """
        if previous is self:
            return
        deltas: List[EdgeDelta] = []
        for source, targets in previous._edges.items():
            new_targets = self._edges.get(source, {})
            for target, old_cost in targets.items():
                new_cost = new_targets.get(target)
                if new_cost is None or new_cost != old_cost:
                    deltas.append(EdgeDelta(source, target, old_cost, new_cost))
        for source, targets in self._edges.items():
            old_targets = previous._edges.get(source, {})
            for target, cost in targets.items():
                if target not in old_targets:
                    deltas.append(EdgeDelta(source, target, None, cost))
        prefix_deltas: Set[Prefix] = set()
        for node in self._announcements.keys() | previous._announcements.keys():
            mine = self._announcements.get(node, {})
            theirs = previous._announcements.get(node, {})
            if mine != theirs:
                for prefix in mine.keys() | theirs.keys():
                    if mine.get(prefix) != theirs.get(prefix):
                        prefix_deltas.add(prefix)
        fake_deltas = {
            name
            for name in self._fake_nodes.keys() | previous._fake_nodes.keys()
            if self._fake_nodes.get(name) != previous._fake_nodes.get(name)
        }
        # Keys are compared too so that an isolated node appearing or
        # vanishing (no edge delta) still gets its own version.
        same_state = (
            not deltas
            and not prefix_deltas
            and not fake_deltas
            and self._edges.keys() == previous._edges.keys()
        )
        self._history_base = previous._history_base
        self._delta_log = list(previous._delta_log)
        self._log_edges = previous._log_edges
        if same_state:
            self._version = previous._version
        else:
            self._version = previous._version + 1
            self._delta_log.append(
                (
                    self._version,
                    GraphChange(
                        edges=tuple(deltas),
                        prefixes=frozenset(prefix_deltas),
                        fake_nodes=frozenset(fake_deltas),
                    ),
                )
            )
            self._log_edges += len(deltas)
            self._trim_log()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str) -> None:
        """Ensure ``name`` exists in the graph (idempotent)."""
        if name not in self._edges:
            self._edges[name] = {}
            self._redges[name] = {}
            self._version += 1

    def add_edge(self, source: str, target: str, cost: float) -> None:
        """Add (or overwrite) the directed edge ``source -> target`` at ``cost``."""
        if cost <= 0:
            raise TopologyError(f"edge {source}->{target} must have positive cost, got {cost}")
        self.add_node(source)
        self.add_node(target)
        cost = float(cost)
        old = self._edges[source].get(target)
        if old == cost:
            return
        self._edges[source][target] = cost
        self._redges[target][source] = cost
        self._record(GraphChange(edges=(EdgeDelta(source, target, old, cost),)))

    def remove_edge(self, source: str, target: str) -> None:
        """Remove the directed edge ``source -> target`` (raises if absent)."""
        try:
            old = self._edges[source].pop(target)
        except KeyError:
            raise TopologyError(f"no edge {source}->{target}") from None
        del self._redges[target][source]
        self._record(GraphChange(edges=(EdgeDelta(source, target, old, None),)))

    def announce(self, node: str, prefix: Prefix, cost: float) -> None:
        """Record that ``node`` announces ``prefix`` at metric ``cost``.

        If the node announces the same prefix several times, the cheapest
        announcement wins (matching OSPF behaviour for duplicate externals).
        """
        if cost < 0:
            raise TopologyError(f"announcement cost must be non-negative, got {cost}")
        self.add_node(node)
        announcements = self._announcements.setdefault(node, {})
        current = announcements.get(prefix)
        if current is None or cost < current:
            if current is None:
                self._prefix_refs[prefix] = self._prefix_refs.get(prefix, 0) + 1
            announcements[prefix] = float(cost)
            self._record(GraphChange(prefixes=frozenset((prefix,))))

    def add_fake_node(
        self,
        name: str,
        anchor: str,
        link_cost: float,
        prefix: Prefix,
        prefix_cost: float,
        forwarding_address: str,
    ) -> None:
        """Insert a fake node as described by a :class:`FakeNodeLsa`.

        The fake link is added in both directions so that the anchor reaches
        the fake node; the reverse direction never matters for destination
        prefixes but keeps the graph symmetric, as OSPF's two-way check would.
        """
        if name in self._fake_nodes:
            raise TopologyError(f"fake node {name!r} already present")
        if anchor not in self._edges:
            raise TopologyError(f"fake node {name!r} anchored at unknown router {anchor!r}")
        self.add_edge(anchor, name, link_cost)
        self.add_edge(name, anchor, link_cost)
        self.announce(name, prefix, prefix_cost)
        self._fake_nodes[name] = FakeNodeInfo(
            name=name, anchor=anchor, forwarding_address=forwarding_address
        )
        self._record(GraphChange(fake_nodes=frozenset((name,))))

    def remove_fake_node(self, name: str) -> None:
        """Remove a fake node, its fake links and its announcements."""
        if name not in self._fake_nodes:
            raise TopologyError(f"{name!r} is not a fake node")
        del self._fake_nodes[name]
        deltas: List[EdgeDelta] = []
        for target, cost in list(self._edges.get(name, {}).items()):
            del self._edges[name][target]
            del self._redges[target][name]
            deltas.append(EdgeDelta(name, target, cost, None))
        for source, cost in list(self._redges.get(name, {}).items()):
            del self._edges[source][name]
            del self._redges[name][source]
            deltas.append(EdgeDelta(source, name, cost, None))
        self._edges.pop(name, None)
        self._redges.pop(name, None)
        withdrawn = self._announcements.pop(name, {})
        for prefix in withdrawn:
            remaining = self._prefix_refs.get(prefix, 0) - 1
            if remaining > 0:
                self._prefix_refs[prefix] = remaining
            else:
                self._prefix_refs.pop(prefix, None)
        self._record(
            GraphChange(
                edges=tuple(deltas),
                prefixes=frozenset(withdrawn),
                fake_nodes=frozenset((name,)),
            )
        )

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def from_lsdb(cls, lsas: Iterable[Lsa]) -> "ComputationGraph":
        """Build the graph from the live LSAs of a link-state database.

        Directed edges are only added when *both* endpoints advertised them
        (OSPF's two-way connectivity check), except for fake nodes where the
        controller vouches for the link.
        """
        graph = cls()
        graph._recording = False  # no usable history during construction
        router_lsas: List[RouterLsa] = []
        prefix_lsas: List[PrefixLsa] = []
        fake_lsas: List[FakeNodeLsa] = []
        for lsa in lsas:
            if lsa.withdrawn:
                continue
            if isinstance(lsa, RouterLsa):
                router_lsas.append(lsa)
            elif isinstance(lsa, PrefixLsa):
                prefix_lsas.append(lsa)
            elif isinstance(lsa, FakeNodeLsa):
                fake_lsas.append(lsa)
            else:  # pragma: no cover - future LSA kinds
                raise TopologyError(f"unsupported LSA type {type(lsa).__name__}")

        advertised: Dict[Tuple[str, str], float] = {}
        for lsa in router_lsas:
            graph.add_node(lsa.origin)
            for neighbor, cost in lsa.links:
                advertised[(lsa.origin, neighbor)] = cost
        for (source, target), cost in advertised.items():
            if (target, source) in advertised:
                graph.add_edge(source, target, cost)

        for lsa in prefix_lsas:
            graph.announce(lsa.origin, lsa.prefix, lsa.metric)

        for lsa in fake_lsas:
            if lsa.anchor in graph._edges:
                graph.add_fake_node(
                    name=lsa.fake_node,
                    anchor=lsa.anchor,
                    link_cost=lsa.link_cost,
                    prefix=lsa.prefix,
                    prefix_cost=lsa.prefix_cost,
                    forwarding_address=lsa.forwarding_address,
                )
        graph._reset_history()
        return graph

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        lies: Iterable[FakeNodeLsa] = (),
    ) -> "ComputationGraph":
        """Build the graph straight from the physical topology plus optional lies."""
        graph = cls()
        graph._recording = False  # no usable history during construction
        for router in topology.routers:
            graph.add_node(router)
        for link in topology.links:
            graph.add_edge(link.source, link.target, link.weight)
        for prefix in topology.prefixes:
            for attachment in topology.prefix_attachments(prefix):
                graph.announce(attachment.router, prefix, attachment.cost)
        for lie in lies:
            if lie.withdrawn:
                continue
            graph.add_fake_node(
                name=lie.fake_node,
                anchor=lie.anchor,
                link_cost=lie.link_cost,
                prefix=lie.prefix,
                prefix_cost=lie.prefix_cost,
                forwarding_address=lie.forwarding_address,
            )
        graph._reset_history()
        return graph

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[str]:
        """All node names (real and fake), sorted."""
        return sorted(self._edges)

    @property
    def real_nodes(self) -> List[str]:
        """Node names excluding fake nodes, sorted."""
        return sorted(name for name in self._edges if name not in self._fake_nodes)

    @property
    def fake_nodes(self) -> Dict[str, FakeNodeInfo]:
        """Mapping of fake node name to its resolution metadata."""
        return dict(self._fake_nodes)

    def is_fake(self, node: str) -> bool:
        """Whether ``node`` is a fake node."""
        return node in self._fake_nodes

    def fake_info(self, node: str) -> FakeNodeInfo:
        """Resolution metadata of a fake node (raises for real nodes)."""
        try:
            return self._fake_nodes[node]
        except KeyError:
            raise TopologyError(f"{node!r} is not a fake node") from None

    def has_node(self, node: str) -> bool:
        """Whether ``node`` exists in the graph."""
        return node in self._edges

    def successors(self, node: str) -> Mapping[str, float]:
        """Outgoing edges of ``node`` as a ``{neighbor: cost}`` mapping."""
        try:
            return self._edges[node]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def predecessors_of(self, node: str) -> Mapping[str, float]:
        """Incoming edges of ``node`` as a ``{neighbor: cost}`` mapping."""
        try:
            return self._redges[node]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def edge_cost(self, source: str, target: str) -> float:
        """Cost of the directed edge ``source -> target`` (raises if absent)."""
        successors = self.successors(source)
        try:
            return successors[target]
        except KeyError:
            raise TopologyError(f"no edge {source}->{target}") from None

    @property
    def prefixes(self) -> List[Prefix]:
        """All announced prefixes, sorted."""
        return sorted(self._prefix_refs)

    @property
    def prefix_count(self) -> int:
        """Number of distinct announced prefixes (O(1))."""
        return len(self._prefix_refs)

    def announcers(self, prefix: Prefix) -> Dict[str, float]:
        """Mapping of node name to announcement metric for ``prefix``."""
        result: Dict[str, float] = {}
        for node, announcements in self._announcements.items():
            if prefix in announcements:
                result[node] = announcements[prefix]
        return result

    def announcements_of(self, node: str) -> Dict[Prefix, float]:
        """All prefixes announced by ``node`` with their metrics."""
        return dict(self._announcements.get(node, {}))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        edges = sum(len(targets) for targets in self._edges.values())
        return (
            f"ComputationGraph(nodes={len(self._edges)}, edges={edges}, "
            f"fake_nodes={len(self._fake_nodes)}, prefixes={len(self.prefixes)})"
        )
