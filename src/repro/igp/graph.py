"""The computation graph a router derives from its link-state database.

The graph contains *real* routers (from :class:`~repro.igp.lsa.RouterLsa`),
*fake* nodes (from :class:`~repro.igp.lsa.FakeNodeLsa`), directed weighted
edges, and per-node prefix announcements.  SPF (:mod:`repro.igp.spf`) runs on
this structure; it never needs to know whether a node is real or fake — that
distinction only matters when the RIB is resolved into a FIB.

The same class is also buildable straight from a :class:`Topology` plus a
list of lies, which is what the static route computation
(:func:`repro.igp.network.compute_static_fibs`) and the TE baselines use to
avoid running the full event-driven control plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.igp.lsa import FakeNodeLsa, Lsa, PrefixLsa, RouterLsa
from repro.igp.topology import Topology
from repro.util.errors import TopologyError
from repro.util.prefixes import Prefix

__all__ = ["ComputationGraph", "FakeNodeInfo"]


@dataclass(frozen=True)
class FakeNodeInfo:
    """Metadata about a fake node needed for FIB resolution."""

    name: str
    anchor: str
    forwarding_address: str


class ComputationGraph:
    """Directed weighted graph over real and fake nodes, with prefix announcements."""

    def __init__(self) -> None:
        self._edges: Dict[str, Dict[str, float]] = {}
        self._announcements: Dict[str, Dict[Prefix, float]] = {}
        self._fake_nodes: Dict[str, FakeNodeInfo] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str) -> None:
        """Ensure ``name`` exists in the graph (idempotent)."""
        self._edges.setdefault(name, {})

    def add_edge(self, source: str, target: str, cost: float) -> None:
        """Add (or overwrite) the directed edge ``source -> target`` at ``cost``."""
        if cost <= 0:
            raise TopologyError(f"edge {source}->{target} must have positive cost, got {cost}")
        self.add_node(source)
        self.add_node(target)
        self._edges[source][target] = float(cost)

    def announce(self, node: str, prefix: Prefix, cost: float) -> None:
        """Record that ``node`` announces ``prefix`` at metric ``cost``.

        If the node announces the same prefix several times, the cheapest
        announcement wins (matching OSPF behaviour for duplicate externals).
        """
        if cost < 0:
            raise TopologyError(f"announcement cost must be non-negative, got {cost}")
        self.add_node(node)
        announcements = self._announcements.setdefault(node, {})
        current = announcements.get(prefix)
        if current is None or cost < current:
            announcements[prefix] = float(cost)

    def add_fake_node(
        self,
        name: str,
        anchor: str,
        link_cost: float,
        prefix: Prefix,
        prefix_cost: float,
        forwarding_address: str,
    ) -> None:
        """Insert a fake node as described by a :class:`FakeNodeLsa`.

        The fake link is added in both directions so that the anchor reaches
        the fake node; the reverse direction never matters for destination
        prefixes but keeps the graph symmetric, as OSPF's two-way check would.
        """
        if name in self._fake_nodes:
            raise TopologyError(f"fake node {name!r} already present")
        if anchor not in self._edges:
            raise TopologyError(f"fake node {name!r} anchored at unknown router {anchor!r}")
        self.add_edge(anchor, name, link_cost)
        self.add_edge(name, anchor, link_cost)
        self.announce(name, prefix, prefix_cost)
        self._fake_nodes[name] = FakeNodeInfo(
            name=name, anchor=anchor, forwarding_address=forwarding_address
        )

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def from_lsdb(cls, lsas: Iterable[Lsa]) -> "ComputationGraph":
        """Build the graph from the live LSAs of a link-state database.

        Directed edges are only added when *both* endpoints advertised them
        (OSPF's two-way connectivity check), except for fake nodes where the
        controller vouches for the link.
        """
        graph = cls()
        router_lsas: List[RouterLsa] = []
        prefix_lsas: List[PrefixLsa] = []
        fake_lsas: List[FakeNodeLsa] = []
        for lsa in lsas:
            if lsa.withdrawn:
                continue
            if isinstance(lsa, RouterLsa):
                router_lsas.append(lsa)
            elif isinstance(lsa, PrefixLsa):
                prefix_lsas.append(lsa)
            elif isinstance(lsa, FakeNodeLsa):
                fake_lsas.append(lsa)
            else:  # pragma: no cover - future LSA kinds
                raise TopologyError(f"unsupported LSA type {type(lsa).__name__}")

        advertised: Dict[Tuple[str, str], float] = {}
        for lsa in router_lsas:
            graph.add_node(lsa.origin)
            for neighbor, cost in lsa.links:
                advertised[(lsa.origin, neighbor)] = cost
        for (source, target), cost in advertised.items():
            if (target, source) in advertised:
                graph.add_edge(source, target, cost)

        for lsa in prefix_lsas:
            graph.announce(lsa.origin, lsa.prefix, lsa.metric)

        for lsa in fake_lsas:
            if lsa.anchor in graph._edges:
                graph.add_fake_node(
                    name=lsa.fake_node,
                    anchor=lsa.anchor,
                    link_cost=lsa.link_cost,
                    prefix=lsa.prefix,
                    prefix_cost=lsa.prefix_cost,
                    forwarding_address=lsa.forwarding_address,
                )
        return graph

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        lies: Iterable[FakeNodeLsa] = (),
    ) -> "ComputationGraph":
        """Build the graph straight from the physical topology plus optional lies."""
        graph = cls()
        for router in topology.routers:
            graph.add_node(router)
        for link in topology.links:
            graph.add_edge(link.source, link.target, link.weight)
        for prefix in topology.prefixes:
            for attachment in topology.prefix_attachments(prefix):
                graph.announce(attachment.router, prefix, attachment.cost)
        for lie in lies:
            if lie.withdrawn:
                continue
            graph.add_fake_node(
                name=lie.fake_node,
                anchor=lie.anchor,
                link_cost=lie.link_cost,
                prefix=lie.prefix,
                prefix_cost=lie.prefix_cost,
                forwarding_address=lie.forwarding_address,
            )
        return graph

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[str]:
        """All node names (real and fake), sorted."""
        return sorted(self._edges)

    @property
    def real_nodes(self) -> List[str]:
        """Node names excluding fake nodes, sorted."""
        return sorted(name for name in self._edges if name not in self._fake_nodes)

    @property
    def fake_nodes(self) -> Dict[str, FakeNodeInfo]:
        """Mapping of fake node name to its resolution metadata."""
        return dict(self._fake_nodes)

    def is_fake(self, node: str) -> bool:
        """Whether ``node`` is a fake node."""
        return node in self._fake_nodes

    def fake_info(self, node: str) -> FakeNodeInfo:
        """Resolution metadata of a fake node (raises for real nodes)."""
        try:
            return self._fake_nodes[node]
        except KeyError:
            raise TopologyError(f"{node!r} is not a fake node") from None

    def has_node(self, node: str) -> bool:
        """Whether ``node`` exists in the graph."""
        return node in self._edges

    def successors(self, node: str) -> Mapping[str, float]:
        """Outgoing edges of ``node`` as a ``{neighbor: cost}`` mapping."""
        try:
            return self._edges[node]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def edge_cost(self, source: str, target: str) -> float:
        """Cost of the directed edge ``source -> target`` (raises if absent)."""
        successors = self.successors(source)
        try:
            return successors[target]
        except KeyError:
            raise TopologyError(f"no edge {source}->{target}") from None

    @property
    def prefixes(self) -> List[Prefix]:
        """All announced prefixes, sorted."""
        found: Set[Prefix] = set()
        for announcements in self._announcements.values():
            found.update(announcements)
        return sorted(found)

    def announcers(self, prefix: Prefix) -> Dict[str, float]:
        """Mapping of node name to announcement metric for ``prefix``."""
        result: Dict[str, float] = {}
        for node, announcements in self._announcements.items():
            if prefix in announcements:
                result[node] = announcements[prefix]
        return result

    def announcements_of(self, node: str) -> Dict[Prefix, float]:
        """All prefixes announced by ``node`` with their metrics."""
        return dict(self._announcements.get(node, {}))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        edges = sum(len(targets) for targets in self._edges.values())
        return (
            f"ComputationGraph(nodes={len(self._edges)}, edges={edges}, "
            f"fake_nodes={len(self._fake_nodes)}, prefixes={len(self.prefixes)})"
        )
