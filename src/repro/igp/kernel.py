"""Array-compiled SPF kernels (``REPRO_KERNEL=numpy``).

The pure-Python SPF/repair path in :mod:`repro.igp.spf` is the semantic
oracle: dicts keyed by node name, a ``(distance, name)`` heap, and frozenset
ECMP/predecessor sets.  This module compiles the same algorithms down to
numpy arrays so that the per-event constant factor stops being Python
dict-and-heap overhead:

* :class:`InternTable` — an append-only node-name interning table.  Ids are
  *stable for the lifetime of the table*: a node removed from the graph keeps
  its id (it is merely deactivated in later indexes), so cached per-source
  states survive graph churn without any array remapping.
* :class:`CsrIndex` — an integer-indexed CSR adjacency view (out- and
  in-edges) of one :class:`~repro.igp.graph.ComputationGraph` build, rebuilt
  lazily per graph version by :class:`~repro.igp.spf_cache.SpfCache` and
  shared by every per-source computation at that version.
* :class:`ArraySpf` — the packed per-source state: a float64 distance vector
  plus uint64 *bitset matrices* for the predecessor DAG and first-hop ECMP
  sets (one 64-node word-column per 64 interned ids).  It duck-types the
  :class:`~repro.igp.spf.ShortestPaths` query surface (``reachable`` /
  ``distance_to`` / ``next_hops_to`` / ``paths_to`` and the ``distance`` /
  ``next_hops`` / ``predecessors`` mappings, the latter materialised lazily)
  so the RIB/FIB layers consume either representation unchanged.
* :func:`compute_spf_arrays` / :func:`update_spf_arrays` — the Dijkstra and
  Ramalingam–Reps repair kernels.  They mirror :func:`~repro.igp.spf.
  compute_spf` / :func:`~repro.igp.spf.update_spf` *operation for operation*
  — same ``cost_tolerance`` comparisons, same heap keys (ties broken by node
  name via a precomputed rank array, exactly like the oracle's
  ``(distance, name)`` tuples), same fallback thresholds — so the produced
  distances are bit-identical IEEE float64 values and every ECMP/predecessor
  set matches the Python kernel exactly.  The golden RIB digests (which hash
  ``repr(cost)``) therefore pass unchanged under both kernels.

numpy is optional at import time: the module degrades to ``NUMPY_AVAILABLE
= False`` and :func:`resolve_kernel` rejects ``numpy`` loudly, keeping the
pure-Python kernel fully functional on minimal installs.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.igp.graph import ComputationGraph, EdgeDelta
from repro.igp.spf import ShortestPaths, _COST_EPSILON
from repro.util.errors import RoutingError, ValidationError

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - minimal installs only
    np = None  # type: ignore[assignment]

__all__ = [
    "KERNEL_ENV",
    "KERNEL_NAMES",
    "NUMPY_AVAILABLE",
    "resolve_kernel",
    "InternTable",
    "CsrIndex",
    "ArraySpf",
    "compute_spf_arrays",
    "update_spf_arrays",
    "changed_nodes",
]

#: Environment variable selecting the default kernel for new caches.
KERNEL_ENV = "REPRO_KERNEL"

#: The recognised kernel names.
KERNEL_NAMES = ("python", "numpy")

#: Whether the numpy kernel can actually run in this interpreter.
NUMPY_AVAILABLE = np is not None

if NUMPY_AVAILABLE:
    #: ``_BIT[k]`` is the uint64 word with only bit ``k`` set.
    _BIT = np.left_shift(np.uint64(1), np.arange(64, dtype=np.uint64))


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve an explicit ``kernel=`` knob or the ``REPRO_KERNEL`` env var.

    ``None`` falls back to the environment (default ``"python"``); unknown
    names and a ``numpy`` request without numpy installed fail loudly — a
    silently degraded kernel would invalidate benchmark comparisons.
    """
    chosen = kernel if kernel is not None else os.environ.get(KERNEL_ENV, "")
    chosen = (chosen or "python").strip().lower()
    if chosen not in KERNEL_NAMES:
        raise ValidationError(
            f"unknown SPF kernel {chosen!r}; expected one of {KERNEL_NAMES}"
        )
    if chosen == "numpy" and not NUMPY_AVAILABLE:
        raise ValidationError(
            "REPRO_KERNEL=numpy requested but numpy is not importable"
        )
    return chosen


class InternTable:
    """Append-only node-name interning: ``name -> id`` with stable ids.

    Ids are never reused or remapped; :class:`CsrIndex` builds mark the ids
    present in the current graph as *active*.  Stability is what lets a
    cached :class:`ArraySpf` from version ``v`` be repaired in place against
    an index built at version ``v+k`` with nothing but zero-padding.
    """

    __slots__ = ("names", "ids")

    def __init__(self) -> None:
        self.names: List[str] = []
        self.ids: Dict[str, int] = {}

    def intern(self, name: str) -> int:
        """The id of ``name``, allocating the next id on first sight."""
        got = self.ids.get(name)
        if got is None:
            got = len(self.names)
            self.ids[name] = got
            self.names.append(name)
        return got

    def __len__(self) -> int:
        return len(self.names)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"InternTable(size={len(self.names)})"


class CsrIndex:
    """Integer CSR adjacency view of one graph build (out- and in-edges).

    ``rank`` maps an id to the position of its name in the sorted order of
    *all* interned names, so a heap keyed ``(distance, rank, id)`` pops in
    exactly the order the oracle's ``(distance, name)`` heap does.
    """

    __slots__ = (
        "intern",
        "size",
        "words",
        "active",
        "inactive_ids",
        "rank",
        "out_ptr",
        "out_idx",
        "out_cost",
        "in_ptr",
        "in_idx",
        "in_cost",
    )

    def __init__(self, intern: InternTable) -> None:
        self.intern = intern

    @classmethod
    def build(cls, graph: ComputationGraph, intern: InternTable) -> "CsrIndex":
        """Index ``graph``'s current adjacency, growing ``intern`` as needed."""
        index = cls(intern)
        graph_names = graph.nodes
        graph_ids = [intern.intern(name) for name in graph_names]
        n = len(intern)
        index.size = n
        index.words = (max(1, n) + 63) // 64
        active = np.zeros(n, dtype=bool)
        if graph_ids:
            active[graph_ids] = True
        index.active = active
        # Tombstoned ids (interned nodes no longer in the graph); precomputed
        # so each repair masks them with one indexed assignment.
        index.inactive_ids = np.flatnonzero(~active)

        ids = intern.ids
        srcs: List[int] = []
        dsts: List[int] = []
        costs: List[float] = []
        for name, node_id in zip(graph_names, graph_ids):
            for neighbor, cost in graph.successors(name).items():
                srcs.append(node_id)
                dsts.append(ids[neighbor])
                costs.append(cost)
        src_a = np.array(srcs, dtype=np.int64)
        dst_a = np.array(dsts, dtype=np.int64)
        cost_a = np.array(costs, dtype=np.float64)
        index.out_ptr, index.out_idx, index.out_cost = _csr(src_a, dst_a, cost_a, n)
        index.in_ptr, index.in_idx, index.in_cost = _csr(dst_a, src_a, cost_a, n)

        order = sorted(range(n), key=intern.names.__getitem__)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n, dtype=np.int64)
        index.rank = rank
        return index

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CsrIndex(size={self.size}, active={int(self.active.sum())}, "
            f"edges={len(self.out_idx)})"
        )


def _csr(
    src: "np.ndarray", dst: "np.ndarray", cost: "np.ndarray", n: int
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Group ``(src, dst, cost)`` edge triples into CSR form over ``n`` ids."""
    ptr = np.zeros(n + 1, dtype=np.int64)
    if src.size == 0:
        return ptr, src.copy(), cost.copy()
    order = np.argsort(src, kind="stable")
    np.cumsum(np.bincount(src, minlength=n), out=ptr[1:])
    return ptr, dst[order], cost[order]


def _bits_to_ids(row: "np.ndarray") -> "np.ndarray":
    """Decode one packed uint64 bitset row into the sorted array of set ids."""
    return np.flatnonzero(
        np.unpackbits(row.view(np.uint8), bitorder="little")
    )


def _ids_to_bits(ids: "np.ndarray", words: int) -> "np.ndarray":
    """Pack an id array into one uint64 bitset row of ``words`` words."""
    row = np.zeros(words, dtype=np.uint64)
    if ids.size:
        np.bitwise_or.at(row, ids >> 6, _BIT[ids & 63])
    return row


def _pad_vector(vector: "np.ndarray", n: int, fill: object) -> "np.ndarray":
    """Copy of ``vector`` grown to length ``n`` (new lanes get ``fill``)."""
    if vector.shape[0] == n:
        return vector.copy()
    grown = np.full(n, fill, dtype=vector.dtype)
    grown[: vector.shape[0]] = vector
    return grown


def _pad_rows(rows: "np.ndarray", n: int, words: int) -> "np.ndarray":
    """Copy of a bitset matrix grown to ``(n, words)`` (new lanes zeroed)."""
    if rows.shape == (n, words):
        return rows.copy()
    grown = np.zeros((n, words), dtype=np.uint64)
    grown[: rows.shape[0], : rows.shape[1]] = rows
    return grown


def _grown_vector(vector: "np.ndarray", n: int, fill: object) -> "np.ndarray":
    """``vector`` grown to length ``n``; the original when already sized (read-only use)."""
    if vector.shape[0] == n:
        return vector
    grown = np.full(n, fill, dtype=vector.dtype)
    grown[: vector.shape[0]] = vector
    return grown


def _grown_rows(rows: "np.ndarray", n: int, words: int) -> "np.ndarray":
    """Bitset matrix grown to ``(n, words)``; the original when already sized."""
    if rows.shape == (n, words):
        return rows
    grown = np.zeros((n, words), dtype=np.uint64)
    grown[: rows.shape[0], : rows.shape[1]] = rows
    return grown


class ArraySpf:
    """Packed per-source SPF state over a :class:`CsrIndex`.

    Duck-types the :class:`~repro.igp.spf.ShortestPaths` surface.  The scalar
    accessors (``reachable``/``distance_to``/``next_hops_to``) answer
    straight from the arrays — the hot path for per-prefix RIB repair — while
    the ``distance``/``next_hops``/``predecessors`` mappings materialise a
    full :class:`~repro.igp.spf.ShortestPaths` lazily on first touch (tests
    and path enumeration only).  Like ``ShortestPaths``, instances must be
    treated as immutable once returned.
    """

    __slots__ = (
        "index",
        "source",
        "src_id",
        "dist",
        "finite",
        "pred_bits",
        "hop_bits",
        "hop_present",
        "reach_count",
        "_dense",
        "_hop_sets",
    )

    def __init__(
        self,
        index: CsrIndex,
        source: str,
        src_id: int,
        dist: "np.ndarray",
        finite: "np.ndarray",
        pred_bits: "np.ndarray",
        hop_bits: "np.ndarray",
        hop_present: "np.ndarray",
    ) -> None:
        self.index = index
        self.source = source
        self.src_id = src_id
        self.dist = dist
        #: ``np.isfinite(dist)`` — the reachability mask, kept alongside the
        #: distances because the next repair reads it immediately.
        self.finite = finite
        self.pred_bits = pred_bits
        self.hop_bits = hop_bits
        self.hop_present = hop_present
        self.reach_count = int(finite.sum())
        self._dense: Optional[ShortestPaths] = None
        self._hop_sets: Dict[int, FrozenSet[str]] = {}

    # -------------------------------------------------------------- #
    # Scalar queries (no materialisation)
    # -------------------------------------------------------------- #
    def _id_of(self, node: str) -> Optional[int]:
        node_id = self.index.intern.ids.get(node)
        if node_id is None or node_id >= self.dist.shape[0]:
            return None
        return node_id

    def reachable(self, node: str) -> bool:
        """Whether ``node`` is reachable from the source."""
        node_id = self._id_of(node)
        return node_id is not None and bool(self.finite[node_id])

    def distance_to(self, node: str) -> float:
        """Shortest distance to ``node``; raises :class:`RoutingError` if unreachable."""
        node_id = self._id_of(node)
        if node_id is None or not self.finite[node_id]:
            raise RoutingError(f"{node!r} is unreachable from {self.source!r}")
        return float(self.dist[node_id])

    def next_hops_to(self, node: str) -> FrozenSet[str]:
        """ECMP set of first hops toward ``node``; raises if unreachable."""
        node_id = self._id_of(node)
        if node_id is None or not self.finite[node_id]:
            raise RoutingError(f"{node!r} is unreachable from {self.source!r}")
        if not self.hop_present[node_id]:
            return frozenset()
        cached = self._hop_sets.get(node_id)
        if cached is None:
            names = self.index.intern.names
            cached = frozenset(
                names[i] for i in _bits_to_ids(self.hop_bits[node_id]).tolist()
            )
            self._hop_sets[node_id] = cached
        return cached

    def __contains__(self, node: str) -> bool:
        return self.reachable(node)

    # -------------------------------------------------------------- #
    # Dense (oracle-shaped) views
    # -------------------------------------------------------------- #
    def as_shortest_paths(self) -> ShortestPaths:
        """Materialise the oracle-shaped :class:`ShortestPaths` (cached)."""
        if self._dense is None:
            names = self.index.intern.names
            reach = np.flatnonzero(self.finite).tolist()
            distance = {names[i]: float(self.dist[i]) for i in reach}
            next_hops = {
                names[i]: frozenset(
                    names[j] for j in _bits_to_ids(self.hop_bits[i]).tolist()
                )
                for i in reach
                if self.hop_present[i]
            }
            predecessors = {
                names[i]: frozenset(
                    names[j] for j in _bits_to_ids(self.pred_bits[i]).tolist()
                )
                for i in reach
            }
            self._dense = ShortestPaths(
                source=self.source,
                distance=distance,
                next_hops=next_hops,
                predecessors=predecessors,
            )
        return self._dense

    @property
    def distance(self) -> Dict[str, float]:
        return self.as_shortest_paths().distance

    @property
    def next_hops(self) -> Dict[str, FrozenSet[str]]:
        return self.as_shortest_paths().next_hops

    @property
    def predecessors(self) -> Dict[str, FrozenSet[str]]:
        return self.as_shortest_paths().predecessors

    def paths_to(self, node: str, limit: int = 1024, *, partial: bool = False):
        """Enumerate equal-cost paths (delegates to the dense view)."""
        return self.as_shortest_paths().paths_to(node, limit, partial=partial)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ArraySpf(source={self.source!r}, reachable={self.reach_count}, "
            f"size={self.dist.shape[0]})"
        )


def compute_spf_arrays(
    graph: ComputationGraph,
    index: CsrIndex,
    source: str,
    counters: Optional[object] = None,
) -> ArraySpf:
    """Array-kernel Dijkstra; mirrors :func:`repro.igp.spf.compute_spf`.

    Heap keys are ``(distance, rank, id)`` with ``rank`` the name-sort
    position, so nodes settle in exactly the oracle's ``(distance, name)``
    order and every accumulated float64 distance is bit-identical.
    """
    if not graph.has_node(source):
        raise RoutingError(f"SPF source {source!r} is not in the computation graph")
    if counters is not None:
        counters.kernel_computes += 1

    n, words = index.size, index.words
    rank = index.rank
    out_ptr, out_idx, out_cost = index.out_ptr, index.out_idx, index.out_cost
    src_id = index.intern.ids[source]

    dist = np.full(n, np.inf, dtype=np.float64)
    pred_bits = np.zeros((n, words), dtype=np.uint64)
    hop_bits = np.zeros((n, words), dtype=np.uint64)
    settled = np.zeros(n, dtype=bool)
    dist[src_id] = 0.0
    heap: List[Tuple[float, int, int]] = [(0.0, int(rank[src_id]), src_id)]

    with np.errstate(invalid="ignore"):
        while heap:
            d, _, u = heapq.heappop(heap)
            if settled[u]:
                continue
            if d > dist[u] + _COST_EPSILON * max(1.0, abs(d)):
                continue
            settled[u] = True
            s, e = out_ptr[u], out_ptr[u + 1]
            if s == e:
                continue
            neighbors = out_idx[s:e]
            candidate = d + out_cost[s:e]
            current = dist[neighbors]
            finite = np.isfinite(current)
            improve = ~finite | (
                candidate < current - _COST_EPSILON * np.maximum(1.0, np.abs(current))
            )
            equal = (
                finite
                & ~improve
                & (
                    np.abs(candidate - current)
                    <= _COST_EPSILON
                    * np.maximum(1.0, np.maximum(np.abs(candidate), np.abs(current)))
                )
            )
            word_u, bit_u = u >> 6, _BIT[u & 63]
            if improve.any():
                improved = neighbors[improve]
                dist[improved] = candidate[improve]
                pred_bits[improved] = 0
                pred_bits[improved, word_u] = bit_u
                for c, r, v in zip(
                    candidate[improve].tolist(),
                    rank[improved].tolist(),
                    improved.tolist(),
                ):
                    heapq.heappush(heap, (c, r, v))
            if equal.any():
                pred_bits[neighbors[equal], word_u] |= bit_u

    # Derive first-hop ECMP sets in (distance, name) order, as the oracle does.
    finite = np.isfinite(dist)
    reach = np.flatnonzero(finite)
    order = reach[np.lexsort((rank[reach], dist[reach]))]
    hop_present = np.zeros(n, dtype=bool)
    hop_present[reach] = True
    for u in order.tolist():
        if u == src_id:
            continue
        preds = _bits_to_ids(pred_bits[u])
        row = np.zeros(words, dtype=np.uint64)
        if preds.size:
            direct = preds == src_id
            if direct.any():
                row[u >> 6] |= _BIT[u & 63]
            upstream = preds[~direct]
            if upstream.size:
                row |= np.bitwise_or.reduce(hop_bits[upstream], axis=0)
        hop_bits[u] = row

    return ArraySpf(
        index=index,
        source=source,
        src_id=src_id,
        dist=dist,
        finite=finite,
        pred_bits=pred_bits,
        hop_bits=hop_bits,
        hop_present=hop_present,
    )


def collapse_deltas(
    graph: ComputationGraph, index: CsrIndex, deltas: Iterable[EdgeDelta]
) -> List[Tuple[Optional[int], Optional[int], Optional[float], Optional[float]]]:
    """Collapse a delta log into effective id-space edge changes.

    Mirrors the oracle's collapse (oldest ``old_cost`` vs. the graph's
    current cost, discarding edges that ended up unchanged).  The result
    depends only on ``(graph, deltas)`` — per-source repairs of the same
    wave share one collapsed list via :class:`~repro.igp.spf_cache.SpfCache`.
    Ids are ``None`` for nodes the interning table has never seen (possible
    only for transient nodes that no longer exist).
    """
    collapsed: Dict[Tuple[str, str], Optional[float]] = {}
    for delta in deltas:
        key = (delta.source, delta.target)
        if key not in collapsed:
            collapsed[key] = delta.old_cost
    ids = index.intern.ids
    effective: List[Tuple[Optional[int], Optional[int], Optional[float], Optional[float]]] = []
    for (u_name, v_name), old_cost in collapsed.items():
        new_cost = graph.successors(u_name).get(v_name) if graph.has_node(u_name) else None
        if old_cost != new_cost:
            effective.append((ids.get(u_name), ids.get(v_name), old_cost, new_cost))
    return effective


def update_spf_arrays(
    prev: ArraySpf,
    graph: ComputationGraph,
    index: CsrIndex,
    deltas: Iterable[EdgeDelta],
    full_threshold: float = 0.5,
    counters: Optional[object] = None,
    effective: Optional[List[Tuple[Optional[int], Optional[int], Optional[float], Optional[float]]]] = None,
) -> ArraySpf:
    """Array-kernel Ramalingam–Reps repair; mirrors :func:`~repro.igp.spf.update_spf`.

    Same invalidation rule, same fallback thresholds, same bounded Dijkstra
    and hop-propagation heaps (keyed by ``(distance, rank, id)``), operating
    on zero-padded copies of ``prev``'s packed buffers.  Returns ``prev``
    itself when the deltas do not affect this source.  ``effective`` may
    carry a precomputed :func:`collapse_deltas` result (one collapse is
    shared by every per-source repair of the same wave).
    """
    source = prev.source
    if not graph.has_node(source):
        raise RoutingError(f"SPF source {source!r} is not in the computation graph")
    if prev.index.intern is not index.intern:
        raise RoutingError("cannot repair an ArraySpf across interning tables")

    def fall_back() -> ArraySpf:
        if counters is not None:
            counters.fallbacks += 1
        return compute_spf_arrays(graph, index, source, counters=counters)

    if effective is None:
        effective = collapse_deltas(graph, index, deltas)
    if not effective:
        if counters is not None:
            counters.incremental_updates += 1
        return prev

    n, words = index.size, index.words
    dist0 = _grown_vector(prev.dist, n, np.inf)
    finite0 = _grown_vector(prev.finite, n, False)
    reach_prev = prev.reach_count
    if len(effective) > max(16, reach_prev):
        return fall_back()
    if counters is not None:
        counters.kernel_updates += 1

    rank = index.rank
    active = index.active
    out_ptr, out_idx, out_cost = index.out_ptr, index.out_idx, index.out_cost
    in_ptr, in_idx, in_cost = index.in_ptr, index.in_idx, index.in_cost
    src_id = prev.src_id
    pred0 = _grown_rows(prev.pred_bits, n, words)

    # ----- 1. invalidate the subtree hanging off worsened DAG edges ------ #
    stack: List[int] = []
    for u, v, old_cost, new_cost in effective:
        worsened = old_cost is not None and (new_cost is None or new_cost > old_cost)
        if (
            worsened
            and u is not None
            and v is not None
            and finite0[v]
            and pred0[v, u >> 6] & _BIT[u & 63]
        ):
            stack.append(v)
    invalid_mask: Optional["np.ndarray"] = None
    invalid_list: List[int] = []
    if stack:
        invalid_mask = np.zeros(n, dtype=bool)
        while stack:
            node = stack.pop()
            if invalid_mask[node]:
                continue
            invalid_mask[node] = True
            invalid_list.append(node)
            children = np.flatnonzero(
                ((pred0[:, node >> 6] & _BIT[node & 63]) != 0) & finite0
            )
            stack.extend(children.tolist())
        if invalid_mask[src_id] or len(invalid_list) > full_threshold * max(
            1, reach_prev
        ):
            return fall_back()
    if counters is not None:
        counters.incremental_updates += 1

    # ----- 2. bounded Dijkstra over the affected region ------------------ #
    tentative = dist0.copy()
    if index.inactive_ids.size:
        tentative[index.inactive_ids] = np.inf
    if invalid_list:
        tentative[invalid_list] = np.inf
    tentative[src_id] = 0.0
    heap: List[Tuple[float, int, int]] = []
    for node in invalid_list:
        if not active[node]:
            continue
        s, e = in_ptr[node], in_ptr[node + 1]
        base = tentative[in_idx[s:e]]
        candidate = base + in_cost[s:e]
        finite = np.isfinite(base)
        node_rank = int(rank[node])
        for c in candidate[finite].tolist():
            heapq.heappush(heap, (c, node_rank, node))
    for u, v, old_cost, new_cost in effective:
        if new_cost is None or v is None or not active[v]:
            continue
        base = tentative[u] if u is not None else np.inf
        if np.isfinite(base):
            heapq.heappush(heap, (float(base) + new_cost, int(rank[v]), v))

    settled = np.zeros(n, dtype=bool)
    dist_dirty = set(node for node in invalid_list if active[node])
    with np.errstate(invalid="ignore"):
        while heap:
            d, _, u = heapq.heappop(heap)
            if settled[u]:
                continue
            current = tentative[u]
            if np.isfinite(current) and d >= current - _COST_EPSILON * max(
                1.0, abs(current)
            ):
                settled[u] = True
                continue
            tentative[u] = d
            settled[u] = True
            dist_dirty.add(u)
            s, e = out_ptr[u], out_ptr[u + 1]
            if s == e:
                continue
            neighbors = out_idx[s:e]
            candidate = d + out_cost[s:e]
            known = tentative[neighbors]
            push = ~np.isfinite(known) | (
                candidate < known - _COST_EPSILON * np.maximum(1.0, np.abs(known))
            )
            if invalid_mask is not None:
                push |= invalid_mask[neighbors] & ~settled[neighbors]
            if push.any():
                pushed = neighbors[push]
                for c, r, v in zip(
                    candidate[push].tolist(), rank[pushed].tolist(), pushed.tolist()
                ):
                    heapq.heappush(heap, (c, r, v))

    # Invalidated nodes that were never re-settled are now unreachable.
    finite_now = np.isfinite(tentative)
    dist_dirty = {node for node in dist_dirty if finite_now[node]}

    # ----- 3. re-derive ECMP predecessor sets for affected nodes --------- #
    pred_dirty = set(dist_dirty)
    for u, v, old_cost, new_cost in effective:
        if v is not None:
            pred_dirty.add(v)
    for node in dist_dirty:
        pred_dirty.update(out_idx[out_ptr[node] : out_ptr[node + 1]].tolist())
    pred_dirty = {
        node for node in pred_dirty if finite_now[node] and node != src_id
    }

    pred_new = pred0.copy()
    with np.errstate(invalid="ignore"):
        for node in pred_dirty:
            s, e = in_ptr[node], in_ptr[node + 1]
            neighbors = in_idx[s:e]
            base = tentative[neighbors]
            candidate = base + in_cost[s:e]
            target = tentative[node]
            equal = np.isfinite(base) & (
                np.abs(candidate - target)
                <= _COST_EPSILON
                * np.maximum(1.0, np.maximum(np.abs(candidate), abs(target)))
            )
            pred_new[node] = _ids_to_bits(neighbors[equal], words)
    pred_new[src_id] = 0

    # ----- 4. propagate first-hop changes down the new DAG --------------- #
    hop_new = _pad_rows(prev.hop_bits, n, words)
    hop_present = _pad_vector(prev.hop_present, n, False)
    hop_present &= finite_now
    hop_new[src_id] = 0
    hop_present[src_id] = True
    hop_heap: List[Tuple[float, int, int]] = [
        (float(tentative[node]), int(rank[node]), node)
        for node in pred_dirty | dist_dirty
        if node != src_id
    ]
    heapq.heapify(hop_heap)
    hop_done = np.zeros(n, dtype=bool)
    while hop_heap:
        _, _, node = heapq.heappop(hop_heap)
        if hop_done[node] or node == src_id:
            hop_done[node] = True
            continue
        hop_done[node] = True
        preds = _bits_to_ids(pred_new[node])
        row = np.zeros(words, dtype=np.uint64)
        if preds.size:
            direct = preds == src_id
            if direct.any():
                row[node >> 6] |= _BIT[node & 63]
            upstream = preds[~direct]
            upstream = upstream[hop_present[upstream]]
            if upstream.size:
                row |= np.bitwise_or.reduce(hop_new[upstream], axis=0)
        changed = not hop_present[node] or bool((row != hop_new[node]).any())
        hop_new[node] = row
        hop_present[node] = True
        if changed:
            s, e = out_ptr[node], out_ptr[node + 1]
            neighbors = out_idx[s:e]
            follow = (
                finite_now[neighbors]
                & ~hop_done[neighbors]
                & ((pred_new[neighbors, node >> 6] & _BIT[node & 63]) != 0)
            )
            if follow.any():
                followed = neighbors[follow]
                for d, r, v in zip(
                    tentative[followed].tolist(),
                    rank[followed].tolist(),
                    followed.tolist(),
                ):
                    heapq.heappush(hop_heap, (d, r, v))

    return ArraySpf(
        index=index,
        source=source,
        src_id=src_id,
        dist=tentative,
        finite=finite_now,
        pred_bits=pred_new,
        hop_bits=hop_new,
        hop_present=hop_present,
    )


def changed_nodes(prev_spf: object, spf: object) -> Optional[List[str]]:
    """Nodes whose distance or ECMP first-hop set differs between two states.

    The array fast path behind :func:`repro.igp.rib.dirty_prefixes`: when
    both states are :class:`ArraySpf` over the same interning table, the
    union-over-keys dict comparison of the oracle collapses to three
    vectorised comparisons over the padded buffers.  Returns ``None`` when
    the fast path does not apply (caller falls back to the dict walk).
    """
    if not (isinstance(prev_spf, ArraySpf) and isinstance(spf, ArraySpf)):
        return None
    if prev_spf.index.intern is not spf.index.intern:
        return None
    n = max(prev_spf.dist.shape[0], spf.dist.shape[0])
    words = max(prev_spf.pred_bits.shape[1], spf.pred_bits.shape[1])
    dist_a = _pad_vector(prev_spf.dist, n, np.inf)
    dist_b = _pad_vector(spf.dist, n, np.inf)
    finite_a = np.isfinite(dist_a)
    finite_b = np.isfinite(dist_b)
    with np.errstate(invalid="ignore"):
        dist_diff = (finite_a != finite_b) | (finite_a & finite_b & (dist_a != dist_b))
    present_a = _pad_vector(prev_spf.hop_present, n, False)
    present_b = _pad_vector(spf.hop_present, n, False)
    rows_a = _pad_rows(prev_spf.hop_bits, n, words)
    rows_b = _pad_rows(spf.hop_bits, n, words)
    hop_diff = (present_a != present_b) | (
        present_a & present_b & (rows_a != rows_b).any(axis=1)
    )
    names = prev_spf.index.intern.names
    return [names[i] for i in np.flatnonzero(dist_diff | hop_diff).tolist()]
