"""Per-router link-state database (LSDB).

The LSDB stores the most recent instance of every LSA the router has heard
of, keyed by :class:`~repro.igp.lsa.LsaKey`.  Installation follows OSPF
semantics: a higher sequence number replaces an older instance, a withdrawn
instance removes the LSA, and stale or duplicate instances are ignored (and
reported as such so flooding can stop).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.igp.graph import ComputationGraph
from repro.igp.lsa import Lsa, LsaKey

__all__ = ["LinkStateDatabase"]


class LinkStateDatabase:
    """Container of the freshest known LSAs, with change detection."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._lsas: Dict[LsaKey, Lsa] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter incremented on every effective change."""
        return self._version

    def install(self, lsa: Lsa) -> bool:
        """Install ``lsa`` if it is newer than what the LSDB holds.

        Returns ``True`` when the database changed (the LSA must then be
        flooded onwards and SPF rescheduled) and ``False`` when the instance
        was stale or a duplicate.
        """
        key = lsa.key
        current = self._lsas.get(key)
        if current is not None and lsa.sequence <= current.sequence:
            return False
        if lsa.withdrawn:
            # Remember the withdrawal itself so that older instances arriving
            # later (out-of-order flooding) are recognised as stale.
            self._lsas[key] = lsa
        else:
            self._lsas[key] = lsa
        self._version += 1
        return True

    def get(self, key: LsaKey) -> Optional[Lsa]:
        """The freshest instance for ``key`` (withdrawn instances included)."""
        return self._lsas.get(key)

    def live_lsas(self) -> List[Lsa]:
        """All non-withdrawn LSAs, sorted by key for determinism."""
        return [self._lsas[key] for key in sorted(self._lsas) if not self._lsas[key].withdrawn]

    def all_lsas(self) -> List[Lsa]:
        """Every stored instance, withdrawn ones included (for flooding sync)."""
        return [self._lsas[key] for key in sorted(self._lsas)]

    def graph(self) -> ComputationGraph:
        """Build the computation graph from the live contents of the LSDB."""
        return ComputationGraph.from_lsdb(self.live_lsas())

    def __len__(self) -> int:
        return len(self._lsas)

    def __iter__(self) -> Iterator[Lsa]:
        return iter(self.all_lsas())

    def __contains__(self, key: LsaKey) -> bool:
        return key in self._lsas

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        live = len(self.live_lsas())
        return f"LinkStateDatabase(owner={self.owner!r}, lsas={len(self._lsas)}, live={live})"
