"""Versioned RIB/FIB caching with per-prefix dirty tracking.

This is the incremental-SPF pattern lifted one layer up the stack: where
:class:`~repro.igp.spf_cache.SpfCache` repairs per-source shortest paths from
the graph's dirty-edge delta log, :class:`RibCache` repairs per-router RIBs
(and their resolved FIBs) from the *dirty prefixes* of the same log.  After a
topology or lie delta, only the prefixes whose resolution inputs moved —
announcer set, announcer distance/ECMP set, or an involved fake node — are
re-resolved; every clean :class:`~repro.igp.rib.Route` and
:class:`~repro.igp.fib.PrefixFib` object is reused wholesale from the prior
versioned result.

The cache owns (or shares) an :class:`SpfCache` for the underlying per-source
SPF lookups, so one ``RibCache`` is the single object a call site needs for
the whole SPF → RIB → FIB pipeline.  When the dirty set exceeds
``dirty_threshold`` of the announced prefixes the repair would approach a
from-scratch :func:`~repro.igp.rib.compute_rib`, so the cache falls back to
the full computation (counted separately, like SPF's fallbacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.igp.fib import DEFAULT_MAX_ECMP, Fib, resolve_rib_to_fib, update_fib
from repro.igp.graph import ComputationGraph, GraphChange
from repro.igp.rib import Rib, compute_rib, dirty_prefixes, update_rib
from repro.igp.spf import ShortestPaths
from repro.igp.spf_cache import SpfCache
from repro.util.errors import RoutingError
from repro.util.prefixes import Prefix

__all__ = ["RibCounters", "RibCache"]


@dataclass
class RibCounters:
    """Hit/repair/fallback accounting of one :class:`RibCache`.

    Every RIB lookup increments exactly one of ``hits`` (same graph
    version), ``incremental_updates`` (per-prefix dirty repair),
    ``fallbacks`` (dirty set exceeded the threshold, full recompute) or
    ``full_recomputes`` (no usable cache entry or change history).
    ``prefixes_repaired`` and ``prefixes_reused`` break an incremental
    update down into re-resolved vs. carried-over routes.
    """

    hits: int = 0
    incremental_updates: int = 0
    full_recomputes: int = 0
    fallbacks: int = 0
    prefixes_repaired: int = 0
    prefixes_reused: int = 0

    @property
    def rib_lookups(self) -> int:
        """Total per-router RIB lookups served."""
        return self.hits + self.incremental_updates + self.full_recomputes + self.fallbacks

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy for reporting."""
        return {
            "rib_cache_hits": self.hits,
            "rib_incremental_updates": self.incremental_updates,
            "rib_full_recomputes": self.full_recomputes,
            "rib_fallbacks": self.fallbacks,
            "rib_prefixes_repaired": self.prefixes_repaired,
            "rib_prefixes_reused": self.prefixes_reused,
        }

    def merge(self, other: "RibCounters") -> None:
        """Add ``other``'s counts into this instance (for fleet aggregation)."""
        self.hits += other.hits
        self.incremental_updates += other.incremental_updates
        self.full_recomputes += other.full_recomputes
        self.fallbacks += other.fallbacks
        self.prefixes_repaired += other.prefixes_repaired
        self.prefixes_reused += other.prefixes_reused


@dataclass
class _Entry:
    """Cached state of one router, all at the same graph version."""

    version: int
    spf: ShortestPaths
    rib: Rib
    fibs: Dict[int, Fib] = field(default_factory=dict)  # keyed by max_ecmp


class RibCache:
    """Per-router RIBs and FIBs keyed by graph version, with dirty-prefix repair."""

    def __init__(
        self,
        spf_cache: Optional[SpfCache] = None,
        dirty_threshold: float = 0.5,
        kernel: Optional[str] = None,
    ) -> None:
        if not 0.0 <= dirty_threshold <= 1.0:
            raise RoutingError(
                f"dirty_threshold must be in [0, 1], got {dirty_threshold}"
            )
        #: Underlying per-source SPF cache (shared or owned); its lineage is
        #: also this cache's lineage.  ``kernel`` selects the SPF kernel of
        #: an *owned* cache (``REPRO_KERNEL`` by default); a shared
        #: ``spf_cache`` keeps whatever kernel it was built with.
        self.spf_cache = spf_cache if spf_cache is not None else SpfCache(kernel=kernel)
        #: Fraction of the announced prefixes beyond which a repair falls
        #: back to a from-scratch ``compute_rib`` (the fallback threshold
        #: knob; see README).
        self.dirty_threshold = dirty_threshold
        self.counters = RibCounters()
        self._entries: Dict[str, _Entry] = {}

    # ------------------------------------------------------------------ #
    # Graph lineage
    # ------------------------------------------------------------------ #
    def observe(self, graph: ComputationGraph) -> ComputationGraph:
        """Chain a (possibly rebuilt) graph to the shared version lineage."""
        return self.spf_cache.observe(graph)

    def invalidate(self) -> None:
        """Drop every cached entry, including the SPF cache's (counters survive)."""
        self._entries.clear()
        self.spf_cache.invalidate()

    @property
    def version(self) -> Optional[int]:
        """Version of the lineage's most recently observed graph."""
        return self.spf_cache.version

    @property
    def kernel(self) -> str:
        """The SPF kernel of the underlying cache (``"python"``/``"numpy"``)."""
        return self.spf_cache.kernel

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def rib(self, graph: ComputationGraph, router: str) -> Rib:
        """The RIB of ``router`` over ``graph``, repaired from the prior version."""
        return self._lookup(graph, router).rib

    def fib(
        self,
        graph: ComputationGraph,
        router: str,
        max_ecmp: int = DEFAULT_MAX_ECMP,
    ) -> Fib:
        """The resolved FIB of ``router`` over ``graph`` (cached per ``max_ecmp``)."""
        return self.resolve(graph, router, max_ecmp)[1]

    def resolve(
        self,
        graph: ComputationGraph,
        router: str,
        max_ecmp: int = DEFAULT_MAX_ECMP,
    ) -> Tuple[Rib, Fib]:
        """One cached lookup serving both the RIB and its resolved FIB."""
        entry = self._lookup(graph, router)
        fib = entry.fibs.get(max_ecmp)
        if fib is None:
            fib = resolve_rib_to_fib(graph, entry.rib, max_ecmp=max_ecmp)
            entry.fibs[max_ecmp] = fib
        return entry.rib, fib

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _lookup(self, graph: ComputationGraph, router: str) -> _Entry:
        graph = self.observe(graph)
        version = graph.version
        entry = self._entries.get(router)
        if entry is not None and entry.version == version:
            self.counters.hits += 1
            return entry

        spf = self.spf_cache.spf(graph, router)
        if entry is not None:
            change = graph.changes_since(entry.version)
            if change is not None:
                repaired = self._repair(entry, graph, version, spf, change)
                if repaired is not None:
                    self._entries[router] = repaired
                    return repaired
                # Past the dirty threshold: recompute, but count it as a
                # fallback rather than a cold miss.
                self.counters.fallbacks += 1
                return self._store_full(graph, version, router, spf)
        self.counters.full_recomputes += 1
        return self._store_full(graph, version, router, spf)

    def _store_full(
        self,
        graph: ComputationGraph,
        version: int,
        router: str,
        spf: ShortestPaths,
    ) -> _Entry:
        rib = compute_rib(graph, router, spf)
        entry = _Entry(version=version, spf=spf, rib=rib)
        self._entries[router] = entry
        return entry

    def _repair(
        self,
        entry: _Entry,
        graph: ComputationGraph,
        version: int,
        spf: ShortestPaths,
        change: GraphChange,
    ) -> Optional[_Entry]:
        """Dirty-prefix repair of one entry; ``None`` when past the threshold."""
        dirty = dirty_prefixes(entry.rib, entry.spf, graph, spf, change)
        total = max(1, graph.prefix_count)
        if len(dirty) > self.dirty_threshold * total:
            return None
        self.counters.incremental_updates += 1
        self.counters.prefixes_repaired += len(dirty)
        rib = update_rib(entry.rib, graph, spf, dirty) if dirty else entry.rib
        self.counters.prefixes_reused += len(rib) - sum(
            1 for prefix in dirty if rib.has_route(prefix)
        )
        fibs: Dict[int, Fib] = {}
        for max_ecmp, prev_fib in entry.fibs.items():
            fib_dirty = self._fib_dirty(prev_fib, dirty, change)
            fibs[max_ecmp] = (
                update_fib(graph, prev_fib, rib, fib_dirty, max_ecmp=max_ecmp)
                if fib_dirty
                else prev_fib
            )
        return _Entry(version=version, spf=spf, rib=rib, fibs=fibs)

    @staticmethod
    def _fib_dirty(
        prev_fib: Fib, dirty: Set[Prefix], change: GraphChange
    ) -> Set[Prefix]:
        """Dirty set for FIB resolution: route changes plus resolution churn.

        A route can be byte-identical while its resolution changed: a lie's
        forwarding address moving to another interface alters only the
        :class:`~repro.igp.graph.FakeNodeInfo`, and a failed link can strip
        the adjacency a forwarding address relies on without moving the fake
        node's own distance.  So any previous entry that resolved *via* a
        fake node is re-resolved when that fake was touched or when any edge
        at this router changed (forwarding-address validity is checked
        against the router's current successors) — including to reproduce
        the :class:`~repro.util.errors.RoutingError` a from-scratch
        resolution would raise for a now-unresolvable lie.
        """
        router_edges_changed = any(
            delta.source == prev_fib.router for delta in change.edges
        )
        if not change.fake_nodes and not router_edges_changed:
            return set(dirty)
        fib_dirty = set(dirty)
        via_fake = prev_fib.via_fake_prefixes()
        if router_edges_changed:
            for prefixes in via_fake.values():
                fib_dirty.update(prefixes)
        else:
            for name in change.fake_nodes:
                fib_dirty.update(via_fake.get(name, ()))
        return fib_dirty

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RibCache(routers={len(self._entries)}, "
            f"counters={self.counters.snapshot()})"
        )
