"""Per-router control-plane process.

A :class:`RouterProcess` owns the router's LSDB, schedules SPF runs when the
database changes (with an OSPF-like hold-down delay so that bursts of LSAs
trigger a single computation), resolves the resulting RIB into a FIB after an
installation delay, and notifies listeners when the FIB changes.  The
data-plane simulation and the convergence tracker subscribe to those
notifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.igp.fib import DEFAULT_MAX_ECMP, Fib
from repro.igp.flooding import FloodingFabric
from repro.igp.lsa import Lsa
from repro.igp.lsdb import LinkStateDatabase
from repro.igp.rib import Rib
from repro.igp.rib_cache import RibCache
from repro.util.timeline import Timeline
from repro.util.validation import check_non_negative

__all__ = ["RouterTimers", "RouterProcess"]


@dataclass(frozen=True)
class RouterTimers:
    """Control-plane timers of a router.

    ``spf_delay`` is the hold-down between an LSDB change and the SPF run
    (OSPF's spf-delay); ``fib_delay`` is the time needed to push the computed
    routes into the forwarding table.
    """

    spf_delay: float = 0.05
    fib_delay: float = 0.05

    def __post_init__(self) -> None:
        check_non_negative(self.spf_delay, "spf_delay")
        check_non_negative(self.fib_delay, "fib_delay")


class RouterProcess:
    """The OSPF-like process running on one router."""

    def __init__(
        self,
        name: str,
        timeline: Timeline,
        fabric: FloodingFabric,
        timers: RouterTimers = RouterTimers(),
        max_ecmp: int = DEFAULT_MAX_ECMP,
        kernel: Optional[str] = None,
    ) -> None:
        self.name = name
        self.timeline = timeline
        self.fabric = fabric
        self.timers = timers
        self.max_ecmp = max_ecmp
        self.lsdb = LinkStateDatabase(owner=name)
        self.fib: Optional[Fib] = None
        self.rib: Optional[Rib] = None
        self.fib_version = 0
        self.spf_runs = 0
        #: Versioned route cache: SPF runs triggered by LSDB changes that
        #: leave the computation graph identical (refreshes) are free, changed
        #: graphs are repaired from the dirty-edge deltas instead of rerunning
        #: Dijkstra from scratch, and the RIB/FIB are repaired per dirty
        #: prefix instead of rescanning every announced prefix.  ``kernel``
        #: picks the SPF kernel (``REPRO_KERNEL`` env default).
        self.rib_cache = RibCache(kernel=kernel)
        self.spf_cache = self.rib_cache.spf_cache
        self._spf_scheduled = False
        self._fib_graph_version: Optional[int] = None
        self._fib_listeners: List[Callable[[str, Fib], None]] = []

    # ------------------------------------------------------------------ #
    # Listeners
    # ------------------------------------------------------------------ #
    def on_fib_change(self, listener: Callable[[str, Fib], None]) -> None:
        """Register ``listener(router_name, new_fib)`` called after each FIB install."""
        self._fib_listeners.append(listener)

    # ------------------------------------------------------------------ #
    # LSA handling
    # ------------------------------------------------------------------ #
    def originate(self, lsas: List[Lsa]) -> None:
        """Install self-originated LSAs and flood them to every neighbor."""
        for lsa in lsas:
            if self.lsdb.install(lsa):
                self.fabric.flood_from(self.name, lsa)
        self._schedule_spf()

    def receive_lsa(self, lsa: Lsa, from_neighbor: Optional[str]) -> None:
        """Handle an LSA received from ``from_neighbor`` (or from the controller)."""
        if self.lsdb.install(lsa):
            self.fabric.flood_from(self.name, lsa, exclude=from_neighbor)
            self._schedule_spf()
        else:
            self.fabric.record_duplicate()

    # ------------------------------------------------------------------ #
    # SPF / FIB pipeline
    # ------------------------------------------------------------------ #
    def _schedule_spf(self) -> None:
        if self._spf_scheduled:
            return
        self._spf_scheduled = True
        self.timeline.schedule_in(
            self.timers.spf_delay, self._run_spf, label=f"spf:{self.name}"
        )

    @property
    def graph_version(self) -> Optional[int]:
        """Version of the computation graph behind the last computed FIB."""
        return self._fib_graph_version

    def _run_spf(self) -> None:
        self._spf_scheduled = False
        self.spf_runs += 1
        graph = self.rib_cache.observe(self.lsdb.graph())
        if not graph.has_node(self.name):
            # The router has not yet heard its own router LSA; nothing to compute.
            return
        if self._fib_graph_version == graph.version:
            # The LSDB change did not alter the computation graph (e.g. an
            # LSA refresh): the installed or pending FIB is already correct.
            self.spf_cache.counters.hits += 1
            return
        rib, fib = self.rib_cache.resolve(graph, self.name, max_ecmp=self.max_ecmp)
        self.rib = rib
        self._fib_graph_version = graph.version
        self.timeline.schedule_in(
            self.timers.fib_delay,
            lambda: self._install_fib(fib),
            label=f"fib-install:{self.name}",
        )

    def _install_fib(self, fib: Fib) -> None:
        self.fib = fib
        self.fib_version += 1
        for listener in self._fib_listeners:
            listener(self.name, fib)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RouterProcess(name={self.name!r}, lsdb={len(self.lsdb)}, "
            f"fib_version={self.fib_version})"
        )
