"""Routing information base: per-prefix routes as computed by SPF.

A route to a prefix is the set of *contributions* achieving the minimal total
cost (IGP distance to the announcing node plus the announcement metric).  A
contribution remembers which node announced the prefix and through which
first-hop neighbor the announcer is reached; this is exactly the information
the FIB needs to apply Fibbing's fake-node resolution while preserving
multiplicity ("R1 twice" in the paper's Fig. 1c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.igp.graph import ComputationGraph
from repro.igp.spf import ShortestPaths, compute_spf, cost_tolerance
from repro.util.errors import RoutingError
from repro.util.prefixes import Prefix

__all__ = ["RouteContribution", "Route", "Rib", "compute_rib"]


@dataclass(frozen=True)
class RouteContribution:
    """One equal-cost way of reaching a prefix.

    ``next_hop`` is a first-hop neighbor of the computing router in the
    *computation graph* (so it may be a fake node when the computing router
    is the lie's anchor); ``None`` means the computing router announces the
    prefix itself (local delivery).
    """

    announcer: str
    next_hop: Optional[str]
    announcer_is_fake: bool = False
    next_hop_is_fake: bool = False


@dataclass(frozen=True)
class Route:
    """Best route of one router toward one prefix."""

    prefix: Prefix
    cost: float
    contributions: Tuple[RouteContribution, ...]

    @property
    def is_local(self) -> bool:
        """Whether the prefix is delivered locally by the computing router."""
        return any(contribution.next_hop is None for contribution in self.contributions)

    @property
    def next_hop_nodes(self) -> Tuple[str, ...]:
        """Distinct next-hop nodes (graph-level, fake nodes included), sorted."""
        hops = {
            contribution.next_hop
            for contribution in self.contributions
            if contribution.next_hop is not None
        }
        return tuple(sorted(hops))


class Rib:
    """All best routes of one router, keyed by prefix."""

    def __init__(self, router: str, routes: Dict[Prefix, Route]) -> None:
        self.router = router
        self._routes = dict(routes)

    @property
    def prefixes(self) -> List[Prefix]:
        """Sorted list of prefixes with a route."""
        return sorted(self._routes)

    def route(self, prefix: Prefix) -> Route:
        """The best route toward ``prefix`` (raises :class:`RoutingError` if none)."""
        try:
            return self._routes[prefix]
        except KeyError:
            raise RoutingError(f"router {self.router!r} has no route to {prefix}") from None

    def has_route(self, prefix: Prefix) -> bool:
        """Whether a route toward ``prefix`` exists."""
        return prefix in self._routes

    def __iter__(self) -> Iterator[Route]:
        for prefix in self.prefixes:
            yield self._routes[prefix]

    def __len__(self) -> int:
        return len(self._routes)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Rib(router={self.router!r}, prefixes={len(self._routes)})"


def compute_rib(
    graph: ComputationGraph,
    router: str,
    spf: Optional[ShortestPaths] = None,
) -> Rib:
    """Compute the RIB of ``router`` over ``graph``.

    ``spf`` can be supplied when the caller already ran SPF from ``router``
    (the per-router process reuses one SPF run to build the whole RIB).
    """
    if spf is None:
        spf = compute_spf(graph, router)
    elif spf.source != router:
        raise RoutingError(
            f"provided SPF was computed from {spf.source!r}, not from {router!r}"
        )

    routes: Dict[Prefix, Route] = {}
    for prefix in graph.prefixes:
        announcers = graph.announcers(prefix)
        best_cost = float("inf")
        candidates: List[Tuple[str, float]] = []
        for announcer, metric in announcers.items():
            if not spf.reachable(announcer):
                continue
            total = spf.distance_to(announcer) + metric
            candidates.append((announcer, total))
            best_cost = min(best_cost, total)
        if not candidates:
            continue

        contributions: List[RouteContribution] = []
        # Same relative tolerance as SPF's ECMP detection, so announcers tied
        # at large path costs are not dropped over float rounding.
        for announcer, total in sorted(candidates):
            if total > best_cost + cost_tolerance(best_cost):
                continue
            announcer_is_fake = graph.is_fake(announcer)
            if announcer == router:
                contributions.append(
                    RouteContribution(
                        announcer=announcer,
                        next_hop=None,
                        announcer_is_fake=announcer_is_fake,
                    )
                )
                continue
            for next_hop in sorted(spf.next_hops_to(announcer)):
                contributions.append(
                    RouteContribution(
                        announcer=announcer,
                        next_hop=next_hop,
                        announcer_is_fake=announcer_is_fake,
                        next_hop_is_fake=graph.is_fake(next_hop),
                    )
                )
        if contributions:
            routes[prefix] = Route(
                prefix=prefix, cost=best_cost, contributions=tuple(contributions)
            )
    return Rib(router, routes)
