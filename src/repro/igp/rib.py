"""Routing information base: per-prefix routes as computed by SPF.

A route to a prefix is the set of *contributions* achieving the minimal total
cost (IGP distance to the announcing node plus the announcement metric).  A
contribution remembers which node announced the prefix and through which
first-hop neighbor the announcer is reached; this is exactly the information
the FIB needs to apply Fibbing's fake-node resolution while preserving
multiplicity ("R1 twice" in the paper's Fig. 1c).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.igp.graph import ComputationGraph, GraphChange
from repro.igp.kernel import changed_nodes
from repro.igp.spf import ShortestPaths, compute_spf, costs_equal
from repro.util.errors import RoutingError
from repro.util.prefixes import Prefix

__all__ = [
    "RouteContribution",
    "Route",
    "Rib",
    "compute_rib",
    "update_rib",
    "dirty_prefixes",
    "rib_digest",
]


@dataclass(frozen=True)
class RouteContribution:
    """One equal-cost way of reaching a prefix.

    ``next_hop`` is a first-hop neighbor of the computing router in the
    *computation graph* (so it may be a fake node when the computing router
    is the lie's anchor); ``None`` means the computing router announces the
    prefix itself (local delivery).
    """

    announcer: str
    next_hop: Optional[str]
    announcer_is_fake: bool = False
    next_hop_is_fake: bool = False


@dataclass(frozen=True)
class Route:
    """Best route of one router toward one prefix."""

    prefix: Prefix
    cost: float
    contributions: Tuple[RouteContribution, ...]

    @property
    def is_local(self) -> bool:
        """Whether the prefix is delivered locally by the computing router."""
        return any(contribution.next_hop is None for contribution in self.contributions)

    @property
    def next_hop_nodes(self) -> Tuple[str, ...]:
        """Distinct next-hop nodes (graph-level, fake nodes included), sorted."""
        hops = {
            contribution.next_hop
            for contribution in self.contributions
            if contribution.next_hop is not None
        }
        return tuple(sorted(hops))


class Rib:
    """All best routes of one router, keyed by prefix."""

    def __init__(self, router: str, routes: Dict[Prefix, Route]) -> None:
        self.router = router
        self._routes = dict(routes)

    @property
    def prefixes(self) -> List[Prefix]:
        """Sorted list of prefixes with a route."""
        return sorted(self._routes)

    def route(self, prefix: Prefix) -> Route:
        """The best route toward ``prefix`` (raises :class:`RoutingError` if none)."""
        try:
            return self._routes[prefix]
        except KeyError:
            raise RoutingError(f"router {self.router!r} has no route to {prefix}") from None

    def has_route(self, prefix: Prefix) -> bool:
        """Whether a route toward ``prefix`` exists."""
        return prefix in self._routes

    def __iter__(self) -> Iterator[Route]:
        for prefix in self.prefixes:
            yield self._routes[prefix]

    def __len__(self) -> int:
        return len(self._routes)

    def routes_by_prefix(self) -> Mapping[Prefix, Route]:
        """Read-only view of the underlying ``{prefix: route}`` mapping."""
        return MappingProxyType(self._routes)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Rib(router={self.router!r}, prefixes={len(self._routes)})"


def _route_for_prefix(
    graph: ComputationGraph,
    router: str,
    spf: ShortestPaths,
    prefix: Prefix,
) -> Optional[Route]:
    """The best route of ``router`` toward ``prefix``, or ``None`` if unroutable."""
    announcers = graph.announcers(prefix)
    best_cost = float("inf")
    candidates: List[Tuple[str, float]] = []
    for announcer, metric in announcers.items():
        if not spf.reachable(announcer):
            continue
        total = spf.distance_to(announcer) + metric
        candidates.append((announcer, total))
        best_cost = min(best_cost, total)
    if not candidates:
        return None

    contributions: List[RouteContribution] = []
    # Ties are detected with the same symmetric relative tolerance as SPF's
    # ECMP comparison (costs_equal), not with ``best + tolerance(best)``:
    # the asymmetric form under-estimates the tolerance of the larger total
    # and can drop an announcer that SPF itself would consider tied.
    for announcer, total in sorted(candidates):
        if total > best_cost and not costs_equal(total, best_cost):
            continue
        announcer_is_fake = graph.is_fake(announcer)
        if announcer == router:
            contributions.append(
                RouteContribution(
                    announcer=announcer,
                    next_hop=None,
                    announcer_is_fake=announcer_is_fake,
                )
            )
            continue
        for next_hop in sorted(spf.next_hops_to(announcer)):
            contributions.append(
                RouteContribution(
                    announcer=announcer,
                    next_hop=next_hop,
                    announcer_is_fake=announcer_is_fake,
                    next_hop_is_fake=graph.is_fake(next_hop),
                )
            )
    if not contributions:
        return None
    return Route(prefix=prefix, cost=best_cost, contributions=tuple(contributions))


def compute_rib(
    graph: ComputationGraph,
    router: str,
    spf: Optional[ShortestPaths] = None,
) -> Rib:
    """Compute the RIB of ``router`` over ``graph``.

    ``spf`` can be supplied when the caller already ran SPF from ``router``
    (the per-router process reuses one SPF run to build the whole RIB).
    """
    if spf is None:
        spf = compute_spf(graph, router)
    elif spf.source != router:
        raise RoutingError(
            f"provided SPF was computed from {spf.source!r}, not from {router!r}"
        )

    routes: Dict[Prefix, Route] = {}
    for prefix in graph.prefixes:
        route = _route_for_prefix(graph, router, spf, prefix)
        if route is not None:
            routes[prefix] = route
    return Rib(router, routes)


def dirty_prefixes(
    prev: Rib,
    prev_spf: ShortestPaths,
    graph: ComputationGraph,
    spf: ShortestPaths,
    change: GraphChange,
) -> Set[Prefix]:
    """The prefixes whose route may differ from ``prev`` after ``change``.

    A prefix is *dirty* when any input of its route resolution moved:

    * its announcer map changed (``change.prefixes``),
    * the SPF state of any node changed — distance or first-hop ECMP set —
      and that node announces the prefix (an announcer appearing, vanishing
      or moving beyond the ECMP tolerance is a distance change),
    * a fake node it could involve was touched: prefixes announced by touched
      fake nodes, and prefixes whose previous route already ran through one
      (``announcer_is_fake`` / ``next_hop_is_fake`` contributions can flip
      even when distances are stable).

    Every other prefix resolves from bit-identical inputs, so its previous
    :class:`Route` object is reused wholesale by :func:`update_rib`.
    """
    dirty: Set[Prefix] = set(change.prefixes)

    if spf is not prev_spf:
        # Array-kernel states answer "which nodes moved" with three
        # vectorised comparisons instead of a union-over-keys dict walk.
        changed = changed_nodes(prev_spf, spf)
        if changed is None:
            changed = [
                node
                for node in prev_spf.distance.keys() | spf.distance.keys()
                if (
                    prev_spf.distance.get(node) != spf.distance.get(node)
                    or prev_spf.next_hops.get(node) != spf.next_hops.get(node)
                )
            ]
        for node in changed:
            if graph.has_node(node):
                dirty.update(graph.announcements_of(node))

    if change.fake_nodes:
        for name in change.fake_nodes:
            if graph.has_node(name):
                dirty.update(graph.announcements_of(name))
        for prefix, route in prev.routes_by_prefix().items():
            if prefix in dirty:
                continue
            for contribution in route.contributions:
                if (
                    contribution.announcer in change.fake_nodes
                    or contribution.next_hop in change.fake_nodes
                ):
                    dirty.add(prefix)
                    break
    return dirty


def update_rib(
    prev: Rib,
    graph: ComputationGraph,
    spf: ShortestPaths,
    dirty: Iterable[Prefix],
) -> Rib:
    """Repair ``prev`` by re-resolving only the ``dirty`` prefixes.

    Clean routes are carried over as the same :class:`Route` objects; callers
    must treat :class:`Rib` and :class:`Route` as immutable.  ``dirty`` must
    come from :func:`dirty_prefixes` (or be a superset of it) for the result
    to equal a from-scratch :func:`compute_rib`.
    """
    if spf.source != prev.router:
        raise RoutingError(
            f"provided SPF was computed from {spf.source!r}, not from {prev.router!r}"
        )
    routes = dict(prev.routes_by_prefix())
    for prefix in dirty:
        route = _route_for_prefix(graph, prev.router, spf, prefix)
        if route is None:
            routes.pop(prefix, None)
        else:
            routes[prefix] = route
    return Rib(prev.router, routes)


def rib_digest(rib: Rib) -> str:
    """Stable hex digest of a RIB's externally observable content.

    Covers every prefix, the exact (``repr``-level) route cost, and each
    contribution's announcer, next hop and fake-node flags, in deterministic
    order — the golden regression snapshots pin these per router so that
    route-level regressions fail loudly even when link loads happen to agree.
    """
    hasher = hashlib.sha256()
    for route in rib:
        hasher.update(f"{route.prefix}|{route.cost!r}".encode())
        for contribution in route.contributions:
            hasher.update(
                (
                    f"|{contribution.announcer}>{contribution.next_hop}"
                    f"~{int(contribution.announcer_is_fake)}{int(contribution.next_hop_is_fake)}"
                ).encode()
            )
        hasher.update(b";")
    return hasher.hexdigest()
