"""Link-state advertisements (LSAs).

Three LSA kinds are modelled, mirroring what the demo's OSPF deployment
actually floods:

* :class:`RouterLsa` — a router describing its adjacencies and their costs
  (OSPF type-1).
* :class:`PrefixLsa` — a router announcing reachability to a destination
  prefix at a given metric (OSPF type-5 external, which is how the video
  clients' "blue prefix" is injected in the demo).
* :class:`FakeNodeLsa` — the Fibbing *lie*: a fake node attached to a real
  router through a fake link, announcing a target prefix at a chosen metric,
  together with the forwarding address that the anchor router must use when
  the fake node is selected as next hop.  In the real system this is encoded
  as a combination of type-5 LSAs with forwarding addresses; here it is one
  self-contained object, which keeps the flooding and LSDB logic readable
  without changing the semantics the controller relies on.

Every LSA carries an origin, a sequence number and a ``withdrawn`` flag.  A
higher sequence number replaces an older instance of the same LSA (same
:class:`LsaKey`); a withdrawn instance removes it, like OSPF MaxAge flushing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.util.errors import ValidationError
from repro.util.prefixes import Prefix
from repro.util.validation import check_non_negative, check_positive

__all__ = ["LsaKey", "Lsa", "RouterLsa", "PrefixLsa", "FakeNodeLsa", "ESTIMATED_LSA_BYTES"]

#: Rough on-the-wire size of one LSA, used only for overhead accounting in the
#: control-plane overhead benchmark (an OSPF type-5 LSA is 36 bytes plus
#: header; 64 bytes is a conservative, round figure).
ESTIMATED_LSA_BYTES = 64


@dataclass(frozen=True, order=True)
class LsaKey:
    """Identity of an LSA inside the LSDB: (kind, origin, discriminator)."""

    kind: str
    origin: str
    discriminator: str = ""

    def __str__(self) -> str:
        if self.discriminator:
            return f"{self.kind}:{self.origin}:{self.discriminator}"
        return f"{self.kind}:{self.origin}"


@dataclass(frozen=True)
class Lsa:
    """Base class for all LSAs."""

    origin: str
    sequence: int = 1
    withdrawn: bool = False

    def __post_init__(self) -> None:
        if self.sequence < 1:
            raise ValidationError(f"LSA sequence number must be >= 1, got {self.sequence}")

    @property
    def key(self) -> LsaKey:
        """Identity of this LSA in the LSDB (subclasses must override)."""
        raise NotImplementedError

    def newer_than(self, other: "Lsa") -> bool:
        """Whether this instance supersedes ``other`` (same key, higher sequence)."""
        if self.key != other.key:
            raise ValidationError(
                f"cannot compare sequence numbers of different LSAs ({self.key} vs {other.key})"
            )
        return self.sequence > other.sequence

    def withdraw(self) -> "Lsa":
        """A copy of this LSA marked withdrawn, with a bumped sequence number."""
        return replace(self, sequence=self.sequence + 1, withdrawn=True)

    def refresh(self) -> "Lsa":
        """A copy of this LSA with a bumped sequence number (re-origination)."""
        return replace(self, sequence=self.sequence + 1, withdrawn=False)

    @property
    def size_bytes(self) -> int:
        """Estimated wire size, for control-plane overhead accounting."""
        return ESTIMATED_LSA_BYTES


@dataclass(frozen=True)
class RouterLsa(Lsa):
    """A router's description of its directed adjacencies.

    ``links`` is a tuple of ``(neighbor_name, cost)`` pairs describing the
    cost of the directed edge ``origin -> neighbor``.
    """

    links: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        for neighbor, cost in self.links:
            if not neighbor:
                raise ValidationError("router LSA link has an empty neighbor name")
            check_positive(cost, f"cost of link {self.origin}->{neighbor}")

    @property
    def key(self) -> LsaKey:
        return LsaKey(kind="router", origin=self.origin)

    @property
    def size_bytes(self) -> int:
        # 12 bytes per described link on top of a common header.
        return 24 + 12 * len(self.links)


@dataclass(frozen=True)
class PrefixLsa(Lsa):
    """A router announcing reachability to ``prefix`` at metric ``metric``."""

    prefix: Prefix = Prefix.parse("0.0.0.0/0")
    metric: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_non_negative(self.metric, "metric")

    @property
    def key(self) -> LsaKey:
        return LsaKey(kind="prefix", origin=self.origin, discriminator=str(self.prefix))


@dataclass(frozen=True)
class FakeNodeLsa(Lsa):
    """A Fibbing lie: fake node + fake link + fake prefix announcement.

    Attributes
    ----------
    origin:
        The controller identifier originating the lie (used as LSDB origin).
    fake_node:
        Globally unique name of the fake node added to the computation graph.
    anchor:
        Real router the fake node is attached to.  Only this router can ever
        select the fake node as a direct next hop.
    link_cost:
        Cost of the fake link ``anchor -> fake_node``.
    prefix / prefix_cost:
        Destination prefix announced by the fake node and its metric.  The
        cost of the fake path as seen from ``anchor`` is
        ``link_cost + prefix_cost``.
    forwarding_address:
        Name of the *physical* neighbor of ``anchor`` that traffic must be
        sent to when the fake node is chosen (the "mapping to interface" of
        Fig. 1c).  Resolution happens in :mod:`repro.igp.fib`.
    """

    fake_node: str = ""
    anchor: str = ""
    link_cost: float = 1.0
    prefix: Prefix = Prefix.parse("0.0.0.0/0")
    prefix_cost: float = 0.0
    forwarding_address: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.fake_node:
            raise ValidationError("fake node LSA needs a fake node name")
        if not self.anchor:
            raise ValidationError("fake node LSA needs an anchor router")
        if not self.forwarding_address:
            raise ValidationError("fake node LSA needs a forwarding address")
        if self.forwarding_address == self.fake_node:
            raise ValidationError("forwarding address cannot be the fake node itself")
        check_positive(self.link_cost, "link_cost")
        check_non_negative(self.prefix_cost, "prefix_cost")

    @property
    def key(self) -> LsaKey:
        return LsaKey(kind="fake", origin=self.origin, discriminator=self.fake_node)

    @property
    def total_cost(self) -> float:
        """Cost of the fake path as seen from the anchor router."""
        return self.link_cost + self.prefix_cost

    @property
    def size_bytes(self) -> int:
        # A lie is implemented with a handful of type-5 LSAs in the real
        # system; 96 bytes is a conservative per-lie figure.
        return 96
