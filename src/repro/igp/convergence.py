"""Convergence measurement helpers.

The reaction-time ablation (DESIGN.md, experiment A1) needs to know how long
the network takes, after the controller injects lies, until the last router
installs its updated FIB.  :class:`ConvergenceTracker` subscribes to the FIB
change notifications of an :class:`~repro.igp.network.IgpNetwork` and records
every installation time, from which per-episode convergence durations are
derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.igp.fib import Fib
from repro.igp.network import IgpNetwork
from repro.util.errors import SimulationError

__all__ = ["ConvergenceTracker", "ConvergenceEpisode"]


@dataclass
class ConvergenceEpisode:
    """One tracked change episode: from a trigger to the last FIB install."""

    label: str
    started_at: float
    installs: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def finished_at(self) -> Optional[float]:
        """Time of the last FIB installation seen so far (``None`` if none)."""
        return max((time for time, _ in self.installs), default=None)

    @property
    def duration(self) -> float:
        """Elapsed time between the trigger and the last FIB installation."""
        finished = self.finished_at
        if finished is None:
            return 0.0
        return finished - self.started_at

    @property
    def routers_updated(self) -> List[str]:
        """Routers that installed a new FIB during the episode, sorted."""
        return sorted({router for _, router in self.installs})


class ConvergenceTracker:
    """Records FIB installation times grouped into labelled episodes."""

    def __init__(self, network: IgpNetwork) -> None:
        self.network = network
        self.episodes: List[ConvergenceEpisode] = []
        self._active: Optional[ConvergenceEpisode] = None
        network.on_fib_change(self._record)

    def start_episode(self, label: str) -> ConvergenceEpisode:
        """Open a new episode starting at the network's current simulated time."""
        episode = ConvergenceEpisode(label=label, started_at=self.network.timeline.now)
        self.episodes.append(episode)
        self._active = episode
        return episode

    def close_episode(self) -> ConvergenceEpisode:
        """Close the active episode and return it."""
        if self._active is None:
            raise SimulationError("no active convergence episode to close")
        episode = self._active
        self._active = None
        return episode

    def _record(self, router: str, fib: Fib) -> None:
        if self._active is not None:
            self._active.installs.append((self.network.timeline.now, router))

    def durations(self) -> Dict[str, float]:
        """Mapping from episode label to measured convergence duration."""
        return {episode.label: episode.duration for episode in self.episodes}
