"""Orchestration of a whole IGP domain.

:class:`IgpNetwork` wires together the topology, one
:class:`~repro.igp.router.RouterProcess` per router, and the flooding fabric
over a shared :class:`~repro.util.timeline.Timeline`.  It exposes the two
operations the rest of the system needs:

* ``start()`` / ``converge()`` — originate all router and prefix LSAs and run
  the control plane until every router installed a stable FIB;
* ``inject(lsas, at_router)`` — the Fibbing controller's injection point: the
  lies enter the IGP at the router the controller peers with and are flooded
  domain-wide.

For analyses that do not need the event-driven machinery (TE baselines,
optimality studies, the static Fig. 1 benchmark), :func:`compute_static_fibs`
computes the converged FIBs of every router directly from the global view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.igp.fib import DEFAULT_MAX_ECMP, Fib, resolve_rib_to_fib
from repro.igp.flooding import FloodingFabric
from repro.igp.graph import ComputationGraph
from repro.igp.lsa import FakeNodeLsa, Lsa, PrefixLsa, RouterLsa
from repro.igp.topology import Link
from repro.igp.rib import compute_rib
from repro.igp.rib_cache import RibCache, RibCounters
from repro.igp.router import RouterProcess, RouterTimers
from repro.igp.spf import compute_spf
from repro.igp.spf_cache import SpfCache, SpfCounters
from repro.igp.topology import Topology
from repro.util.errors import TopologyError
from repro.util.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.chaos import FaultCounters
    from repro.core.reconciler import CtlCounters
    from repro.core.shard import ShardCounters

__all__ = ["IgpNetwork", "compute_static_fibs"]


class IgpNetwork:
    """An event-driven IGP domain built from a physical topology."""

    def __init__(
        self,
        topology: Topology,
        timeline: Optional[Timeline] = None,
        timers: RouterTimers = RouterTimers(),
        max_ecmp: int = DEFAULT_MAX_ECMP,
        kernel: Optional[str] = None,
    ) -> None:
        topology.validate()
        self.topology = topology
        self.timeline = timeline if timeline is not None else Timeline()
        self.timers = timers
        self.max_ecmp = max_ecmp
        self.fabric = FloodingFabric(topology, self.timeline)
        self.routers: Dict[str, RouterProcess] = {
            name: RouterProcess(
                name=name,
                timeline=self.timeline,
                fabric=self.fabric,
                timers=timers,
                max_ecmp=max_ecmp,
                kernel=kernel,
            )
            for name in topology.routers
        }
        self.fabric.bind(self._deliver_lsa)
        self._fib_listeners: List[Callable[[str, Fib], None]] = []
        for process in self.routers.values():
            process.on_fib_change(self._notify_fib_change)
        self._started = False
        self._lsa_sequences: Dict[str, int] = {}
        self._dataplane_engines: List[object] = []
        self._controllers: List[object] = []
        self._fault_injectors: List[object] = []
        self._inject_listeners: List[Callable[[str, int], None]] = []
        # Directed Link objects of currently-failed links, keyed by the
        # sorted endpoint pair, so restore_link can re-add each direction
        # with its original weight/capacity/delay.
        self._failed_links: Dict[Tuple[str, str], Tuple[Link, ...]] = {}

    # ------------------------------------------------------------------ #
    # Listeners
    # ------------------------------------------------------------------ #
    def on_fib_change(self, listener: Callable[[str, Fib], None]) -> None:
        """Register ``listener(router_name, fib)`` called on every FIB install."""
        self._fib_listeners.append(listener)

    def on_inject(self, listener: Callable[[str, int], None]) -> None:
        """Register ``listener(at_router, lsa_count)`` called on every injection.

        Fired after the LSAs of one :meth:`inject` call entered the flooding
        fabric — the instant a controller wave starts propagating.  The
        convergence monitor (:class:`~repro.core.scheduler.ConvergenceMonitor`)
        uses it to open a convergence episode without coupling the controller
        to the observer.
        """
        self._inject_listeners.append(listener)

    def _notify_fib_change(self, router: str, fib: Fib) -> None:
        for listener in self._fib_listeners:
            listener(router, fib)

    def _deliver_lsa(self, router: str, lsa: Lsa, from_neighbor: Optional[str]) -> None:
        self.routers[router].receive_lsa(lsa, from_neighbor)

    def register_dataplane(self, engine) -> None:
        """Register a data-plane engine whose ``dp_*`` counters this network reports.

        :meth:`~repro.dataplane.engine.DataPlaneEngine.bind_to_network` calls
        this automatically; the engine's reroute/warm-start counters then
        ride along the SPF/RIB ones in :attr:`spf_stats` and in the
        monitoring collector.
        """
        if engine not in self._dataplane_engines:
            self._dataplane_engines.append(engine)

    def register_controller(self, controller) -> None:
        """Register a controller whose ``ctl_*`` counters this network reports.

        :class:`~repro.core.controller.FibbingController` calls this when it
        attaches to a live network; the reconciliation counters (plan-cache
        hits, lies injected/retracted/kept, fallbacks) then complete the
        per-layer view in :attr:`spf_stats` and the monitoring collector.
        Several controllers may register (e.g. one per tenant); their
        counters are *merged*, never overwritten, by
        :meth:`controller_counters`.  A
        :class:`~repro.core.shard.ShardedFibbingController` registers only
        its facade — its per-shard counters are already aggregated by the
        facade's counter view, so registering the inner shards as well would
        double-count them.
        """
        shards = getattr(controller, "shards", None)
        if shards:
            # A facade's aggregate view covers its shards; drop any shard
            # that was registered directly so it is not counted twice.
            self._controllers = [
                existing for existing in self._controllers
                if all(existing is not shard for shard in shards)
            ]
        else:
            for existing in self._controllers:
                existing_shards = getattr(existing, "shards", None)
                if existing_shards and any(
                    controller is shard for shard in existing_shards
                ):
                    return  # already covered by its facade's view
        if controller not in self._controllers:
            self._controllers.append(controller)

    def register_fault_injector(self, injector) -> None:
        """Register a fault injector whose ``fault_*`` counters this network reports.

        :meth:`~repro.core.chaos.FaultInjector.start` calls this; the
        scheduled link/LSA/poll/controller fault counts then ride along the
        other layers in :attr:`spf_stats` and
        :func:`~repro.monitoring.counters.collect_counters`.
        """
        if injector not in self._fault_injectors:
            self._fault_injectors.append(injector)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Originate every router and prefix LSA (idempotent)."""
        if self._started:
            return
        self._started = True
        for name, process in self.routers.items():
            lsas: List[Lsa] = [self._router_lsa(name)]
            for attachment in self.topology.attachments_of(name):
                lsas.append(
                    PrefixLsa(
                        origin=name,
                        prefix=attachment.prefix,
                        metric=attachment.cost,
                    )
                )
            process.originate(lsas)

    def _router_lsa(self, name: str) -> RouterLsa:
        sequence = self._lsa_sequences.get(name, 0) + 1
        self._lsa_sequences[name] = sequence
        links = tuple(
            (link.target, link.weight)
            for link in self.topology.links
            if link.source == name
        )
        return RouterLsa(origin=name, links=links, sequence=sequence)

    # ------------------------------------------------------------------ #
    # Topology events (failures, weight changes)
    # ------------------------------------------------------------------ #
    def fail_link(self, first: str, second: str) -> None:
        """Remove the (bidirectional) link ``first``-``second`` and re-converge.

        Both endpoints re-originate their router LSA with the link removed,
        exactly like OSPF reacts to a carrier-loss event; the updated LSAs
        flood through the remaining topology and every router recomputes its
        FIB.  Call :meth:`converge` (or keep driving the shared timeline) to
        let the re-convergence complete.
        """
        if not self._started:
            raise TopologyError("start the network before injecting failures")
        saved = tuple(
            self.topology.link(source, target)
            for source, target in ((first, second), (second, first))
            if self.topology.has_link(source, target)
        )
        self.topology.remove_link(first, second, both_directions=True)
        self._failed_links[self._link_pair(first, second)] = saved
        for endpoint in (first, second):
            self.routers[endpoint].originate([self._router_lsa(endpoint)])

    def restore_link(self, first: str, second: str) -> None:
        """Bring a previously failed link ``first``-``second`` back up.

        The exact inverse of :meth:`fail_link`: each removed directed link is
        re-added with its original weight, capacity and delay (asymmetric
        weights survive the round trip), and both endpoints re-originate
        their router LSA with a fresh sequence number, exactly like OSPF
        reacts to a carrier-up event.  Call :meth:`converge` afterwards; the
        network then settles back onto the pre-failure FIBs byte-identically.
        """
        if not self._started:
            raise TopologyError("start the network before restoring links")
        saved = self._failed_links.pop(self._link_pair(first, second), None)
        if saved is None:
            raise TopologyError(
                f"no recorded failure of link {first!r}-{second!r} to restore"
            )
        for link in saved:
            self.topology.add_directed_link(
                link.source, link.target, link.weight, link.capacity, link.delay
            )
        for endpoint in (first, second):
            self.routers[endpoint].originate([self._router_lsa(endpoint)])

    @staticmethod
    def _link_pair(first: str, second: str) -> Tuple[str, str]:
        return (first, second) if first <= second else (second, first)

    def change_weight(self, first: str, second: str, weight: float) -> None:
        """Change the symmetric IGP weight of a link and re-originate the LSAs.

        This is what traditional IGP-TE does at reaction time — and what the
        paper argues is too slow and too blunt for flash crowds; it is exposed
        so that experiments can measure exactly that.
        """
        if not self._started:
            raise TopologyError("start the network before changing weights")
        self.topology.set_weight(first, second, weight, both_directions=True)
        for endpoint in (first, second):
            self.routers[endpoint].originate([self._router_lsa(endpoint)])

    def converge(self, max_events: int = 1_000_000) -> float:
        """Run the control plane until quiescence; returns the convergence time."""
        start_time = self.timeline.now
        self.timeline.run_all(max_events=max_events)
        return self.timeline.now - start_time

    def run_until(self, time: float) -> None:
        """Advance the shared timeline up to the absolute time ``time``."""
        self.timeline.run_until(time)

    # ------------------------------------------------------------------ #
    # Controller-facing API
    # ------------------------------------------------------------------ #
    def inject(self, lsas: Iterable[Lsa], at_router: str) -> int:
        """Inject LSAs (typically lies) at ``at_router``; returns how many were sent."""
        if at_router not in self.routers:
            raise TopologyError(f"cannot inject at unknown router {at_router!r}")
        count = 0
        for lsa in lsas:
            self.fabric.inject(at_router, lsa)
            count += 1
        if count:
            for listener in self._inject_listeners:
                listener(at_router, count)
        return count

    # ------------------------------------------------------------------ #
    # State inspection
    # ------------------------------------------------------------------ #
    def fib_of(self, router: str) -> Fib:
        """The currently installed FIB of ``router`` (raises before convergence)."""
        try:
            process = self.routers[router]
        except KeyError:
            raise TopologyError(f"unknown router {router!r}") from None
        if process.fib is None:
            raise TopologyError(
                f"router {router!r} has not installed a FIB yet; call start() and converge()"
            )
        return process.fib

    def fibs(self) -> Dict[str, Fib]:
        """Snapshot of every router's installed FIB."""
        return {name: self.fib_of(name) for name in self.routers}

    def converged(self) -> bool:
        """Whether every router has an installed FIB and no events are pending."""
        return (
            all(process.fib is not None for process in self.routers.values())
            and self.timeline.pending == 0
        )

    @property
    def flooding_stats(self) -> Dict[str, int]:
        """Flooding counters (messages, bytes, duplicates) for overhead accounting."""
        return self.fabric.stats.snapshot()

    def dataplane_counters(self) -> "DataPlaneCounters":
        """Merged ``dp_*`` counters of every registered data-plane engine."""
        from repro.dataplane.path_cache import DataPlaneCounters

        total = DataPlaneCounters()
        for engine in self._dataplane_engines:
            total.merge(engine.counters)
        return total

    @property
    def dataplane_stats(self) -> Dict[str, int]:
        """Snapshot of the merged data-plane counters (``dp_*`` keys)."""
        return self.dataplane_counters().snapshot()

    def controller_counters(self) -> "CtlCounters":
        """Merged ``ctl_*`` counters of every registered controller.

        Counters are summed across registrations: with several controllers
        on one network (tenants, or a sharded facade whose aggregate view
        already folds its shards in) every controller's reconciliation work
        is represented exactly once.
        """
        from repro.core.reconciler import CtlCounters

        total = CtlCounters()
        for controller in self._controllers:
            total.merge(controller.reconciler.counters)
        return total

    def shard_counters(self) -> "ShardCounters":
        """Merged ``shard_*`` counters of every registered sharded facade.

        Plain controllers contribute nothing; each
        :class:`~repro.core.shard.ShardedFibbingController` contributes its
        wave-dispatch and shard dirty/clean accounting.
        """
        from repro.core.shard import ShardCounters

        total = ShardCounters()
        for controller in self._controllers:
            counters = getattr(controller, "shard_counters", None)
            if counters is not None:
                total.merge(counters)
        return total

    def fault_counters(self) -> "FaultCounters":
        """Merged ``fault_*`` counters of every registered fault injector.

        Zero-valued (and cheap) while no :class:`~repro.core.chaos.FaultInjector`
        is registered, so fault accounting costs nothing on clean runs.
        """
        from repro.core.chaos import FaultCounters

        total = FaultCounters()
        for injector in self._fault_injectors:
            total.merge(injector.counters)
        return total

    @property
    def fault_stats(self) -> Dict[str, int]:
        """Snapshot of the merged fault-injection counters (``fault_*`` keys)."""
        return self.fault_counters().snapshot()

    @property
    def controller_stats(self) -> Dict[str, int]:
        """Snapshot of the merged controller counters (``ctl_*`` keys)."""
        return self.controller_counters().snapshot()

    @property
    def shard_stats(self) -> Dict[str, int]:
        """Snapshot of the merged sharded-facade counters (``shard_*`` keys)."""
        return self.shard_counters().snapshot()

    @property
    def spf_stats(self) -> Dict[str, int]:
        """Aggregated SPF-, RIB- and data-plane-cache counters of the domain.

        ``spf_cache_hits`` are runs served without recomputation,
        ``spf_incremental_updates`` replayed only the dirty-edge deltas,
        ``spf_full_recomputes`` ran Dijkstra from scratch and
        ``spf_fallbacks`` are incremental attempts that bailed out to a full
        run because the change touched too much of the graph.  The ``rib_*``
        keys are the route-layer mirror: ``rib_cache_hits`` served a whole
        RIB unchanged, ``rib_incremental_updates`` re-resolved only the dirty
        prefixes, ``rib_full_recomputes`` rescanned every prefix and
        ``rib_fallbacks`` are repairs that bailed out past the dirty-prefix
        threshold.  The ``dp_*`` keys extend the pattern to the flow-level
        data plane of every registered engine: cached paths reused vs.
        re-walked, and warm-started vs. full fair-share allocations (see
        :class:`~repro.dataplane.path_cache.DataPlaneCounters`).  The
        ``ctl_*`` keys complete the stack with the reconciliation counters
        of every registered controller: requirement plans served from the
        plan cache vs. recomputed, and the lie churn each reaction actually
        shipped (see :class:`~repro.core.reconciler.CtlCounters`).  The
        ``shard_*`` keys report the sharded facade's wave dispatch (waves
        planned in parallel vs. serially, shard sub-waves dirty vs. clean,
        cross-shard fallbacks; see :class:`~repro.core.shard.ShardCounters`)
        and stay zero while only single controllers are registered.  The
        ``fault_*`` keys report the seeded chaos the network was subjected
        to (links downed/restored, LSAs dropped in flight, polls timed out
        or omitted, controller crashes/resyncs; see
        :class:`~repro.core.chaos.FaultCounters`) and stay zero while no
        fault injector is registered.
        """
        total = SpfCounters()
        rib_total = RibCounters()
        for process in self.routers.values():
            total.merge(process.spf_cache.counters)
            rib_total.merge(process.rib_cache.counters)
        return {
            **total.snapshot(),
            **rib_total.snapshot(),
            **self.dataplane_counters().snapshot(),
            **self.controller_counters().snapshot(),
            **self.shard_counters().snapshot(),
            **self.fault_counters().snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"IgpNetwork(topology={self.topology.name!r}, routers={len(self.routers)}, "
            f"t={self.timeline.now:.3f})"
        )


def compute_static_fibs(
    topology: Topology,
    lies: Iterable[FakeNodeLsa] = (),
    max_ecmp: int = DEFAULT_MAX_ECMP,
    cache: Optional[SpfCache] = None,
    rib_cache: Optional[RibCache] = None,
    kernel: Optional[str] = None,
) -> Dict[str, Fib]:
    """Compute the converged FIB of every router without event simulation.

    This is the "oracle" view: every router sees the same computation graph
    (physical topology plus the given lies), exactly what the event-driven
    control plane converges to.  Baselines and static benchmarks use it to
    avoid paying the flooding simulation cost.

    When a :class:`~repro.igp.rib_cache.RibCache` is supplied, successive
    calls pay only for what changed: the rebuilt graph is chained to the
    cache's version lineage, per-source SPF runs are repaired incrementally
    from the dirty-edge deltas, per-router RIBs/FIBs are repaired per dirty
    prefix, and a call at an unchanged version returns the previously
    resolved FIB set outright.  A bare
    :class:`~repro.igp.spf_cache.SpfCache` (``cache``) still gives the SPF
    half of that; ``rib_cache`` supersedes it when both are given.

    ``kernel`` selects the SPF kernel (``"python"`` or ``"numpy"``; default:
    the ``REPRO_KERNEL`` environment variable) for the cache-free path and
    for caches this call creates; a supplied cache keeps its own kernel.
    """
    lies = list(lies)
    graph = ComputationGraph.from_topology(topology, lies)
    if rib_cache is None and cache is None and kernel is not None:
        rib_cache = RibCache(kernel=kernel)
    if rib_cache is not None:
        spf_cache = rib_cache.spf_cache
        graph = rib_cache.observe(graph)
        cached = spf_cache.cached_fibs(graph.version, max_ecmp)
        if cached is not None:
            return dict(cached)
        fibs = {
            router: rib_cache.fib(graph, router, max_ecmp=max_ecmp)
            for router in topology.routers
        }
        spf_cache.store_fibs(graph.version, max_ecmp, fibs)
        return dict(fibs)

    if cache is None:
        fibs = {}
        for router in topology.routers:
            spf = compute_spf(graph, router)
            rib = compute_rib(graph, router, spf)
            fibs[router] = resolve_rib_to_fib(graph, rib, max_ecmp=max_ecmp)
        return fibs

    graph = cache.observe(graph)
    cached = cache.cached_fibs(graph.version, max_ecmp)
    if cached is not None:
        return dict(cached)
    fibs = {}
    for router in topology.routers:
        spf = cache.spf(graph, router)
        rib = compute_rib(graph, router, spf)
        fibs[router] = resolve_rib_to_fib(graph, rib, max_ecmp=max_ecmp)
    cache.store_fibs(graph.version, max_ecmp, fibs)
    return dict(fibs)
