"""Reliable LSA flooding between adjacent routers.

The fabric models what OSPF flooding provides to the rest of the system:
every LSA originated (or injected by the Fibbing controller at its
attachment point) eventually reaches every router, propagating hop by hop
with per-link delays, and duplicate instances stop spreading as soon as a
router recognises them as stale.

The fabric also keeps counters (messages, bytes) that the control-plane
overhead benchmark reads to compare Fibbing against the MPLS RSVP-TE
baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.igp.lsa import Lsa
from repro.igp.topology import Topology
from repro.util.errors import TopologyError
from repro.util.timeline import Timeline
from repro.util.validation import check_non_negative

__all__ = ["FloodingFabric", "FloodingStats"]

#: Per-hop processing delay added on top of the link propagation delay, in
#: seconds.  Mirrors the per-LSA processing cost of a software router.
DEFAULT_PROCESSING_DELAY = 0.002


@dataclass
class FloodingStats:
    """Counters describing the flooding traffic seen so far."""

    messages_sent: int = 0
    bytes_sent: int = 0
    deliveries: int = 0
    duplicates_suppressed: int = 0
    messages_dropped: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy for reporting."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "deliveries": self.deliveries,
            "duplicates_suppressed": self.duplicates_suppressed,
            "messages_dropped": self.messages_dropped,
        }


class FloodingFabric:
    """Delivers LSAs between adjacent routers with realistic delays."""

    def __init__(
        self,
        topology: Topology,
        timeline: Timeline,
        processing_delay: float = DEFAULT_PROCESSING_DELAY,
    ) -> None:
        self.topology = topology
        self.timeline = timeline
        self.processing_delay = check_non_negative(processing_delay, "processing_delay")
        self.stats = FloodingStats()
        # Fault-injection knob: per-adjacency LSA loss.  At the default rate
        # of 0.0 no random numbers are drawn and every message is delivered,
        # so runs without a fault plan are bit-identical to the pre-chaos
        # behaviour.  Controller injections (``inject``) are never subject to
        # loss: the controller session is a reliable TCP-like adjacency, and
        # exempting it guarantees every committed lie reaches the attachment
        # router's LSDB (which the crash/recovery resync relies on).
        self.loss_rate: float = 0.0
        self.loss_rng: Optional[random.Random] = None
        self.on_drop: Optional[Callable[[str, str, Lsa], None]] = None
        # Set by the IgpNetwork once the router processes exist.
        self._deliver: Optional[Callable[[str, Lsa, Optional[str]], None]] = None

    def set_loss(
        self,
        rate: float,
        rng: Optional[random.Random] = None,
        on_drop: Optional[Callable[[str, str, Lsa], None]] = None,
    ) -> None:
        """Configure per-adjacency LSA loss.

        ``rate`` is the independent drop probability applied to each
        router-to-router flooding hop; ``rng`` must be an explicit seeded
        ``random.Random`` whenever ``rate`` is positive so chaos runs stay
        reproducible.  ``on_drop(source, target, lsa)`` is invoked for every
        dropped message (the fault injector uses it to bump its counters).
        """
        rate = check_non_negative(rate, "loss rate")
        if rate > 1.0:
            raise ValueError(f"loss rate must be at most 1.0, got {rate}")
        if rate > 0.0 and rng is None:
            raise ValueError("a seeded random.Random is required when loss rate is positive")
        self.loss_rate = rate
        self.loss_rng = rng
        self.on_drop = on_drop

    def bind(self, deliver: Callable[[str, Lsa, Optional[str]], None]) -> None:
        """Register the callback used to hand an LSA to a router process.

        The callback signature is ``deliver(router_name, lsa, from_neighbor)``.
        """
        self._deliver = deliver

    def send(self, source: str, target: str, lsa: Lsa) -> None:
        """Send ``lsa`` from ``source`` to its direct neighbor ``target``."""
        if self._deliver is None:
            raise TopologyError("flooding fabric is not bound to any router processes")
        link = self.topology.link(source, target)
        delay = link.delay + self.processing_delay
        self.stats.messages_sent += 1
        self.stats.bytes_sent += lsa.size_bytes
        if self.loss_rate > 0.0 and self.loss_rng is not None:
            if self.loss_rng.random() < self.loss_rate:
                self.stats.messages_dropped += 1
                if self.on_drop is not None:
                    self.on_drop(source, target, lsa)
                return
        self.timeline.schedule_in(
            delay,
            lambda: self._deliver_one(target, lsa, source),
            label=f"lsa-delivery:{source}->{target}:{lsa.key}",
        )

    def flood_from(self, origin: str, lsa: Lsa, exclude: Optional[str] = None) -> None:
        """Send ``lsa`` from ``origin`` to every neighbor except ``exclude``."""
        for neighbor in self.topology.neighbors(origin):
            if neighbor == exclude:
                continue
            self.send(origin, neighbor, lsa)

    def inject(self, router: str, lsa: Lsa) -> None:
        """Deliver ``lsa`` directly to ``router``, as the controller session does.

        The Fibbing controller maintains an adjacency with a single router
        (R3 in the demo); from the IGP's point of view an injected lie is
        simply an LSA received over that adjacency, which the router then
        floods onwards.  A small processing delay models the controller
        session itself.
        """
        if self._deliver is None:
            raise TopologyError("flooding fabric is not bound to any router processes")
        if not self.topology.has_router(router):
            raise TopologyError(f"cannot inject LSAs at unknown router {router!r}")
        self.stats.messages_sent += 1
        self.stats.bytes_sent += lsa.size_bytes
        self.timeline.schedule_in(
            self.processing_delay,
            lambda: self._deliver_one(router, lsa, None),
            label=f"lsa-injection:{router}:{lsa.key}",
        )

    def record_duplicate(self) -> None:
        """Called by router processes when they drop a stale/duplicate LSA."""
        self.stats.duplicates_suppressed += 1

    def _deliver_one(self, target: str, lsa: Lsa, from_neighbor: Optional[str]) -> None:
        self.stats.deliveries += 1
        assert self._deliver is not None  # guarded in send()/inject()
        self._deliver(target, lsa, from_neighbor)
