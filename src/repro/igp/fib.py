"""Forwarding information base: resolved, weighted next hops per prefix.

This module is where Fibbing's data-plane trick materialises.  The RIB of a
router may contain contributions whose next hop is a *fake node*; the FIB
resolves those to the physical neighbor recorded in the lie's forwarding
address.  Crucially, every fake contribution keeps its own FIB entry even
when several of them resolve to the same physical neighbor — the real system
achieves this by giving each fake node a distinct forwarding address bound to
the same interface — which is what turns a router's even ECMP hashing into an
uneven split (e.g. "R1 twice" in the paper's Fig. 1c gives a 2/3 share).

Contributions over *real* next hops are de-duplicated per neighbor, matching
what an unmodified router does when several equal-cost paths share their
first hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.igp.graph import ComputationGraph
from repro.igp.rib import Rib, Route
from repro.util.errors import RoutingError
from repro.util.prefixes import Prefix

__all__ = [
    "FibEntry",
    "PrefixFib",
    "Fib",
    "resolve_rib_to_fib",
    "update_fib",
    "DEFAULT_MAX_ECMP",
]

#: Default bound on the number of equal-cost entries a router installs for a
#: single prefix.  Commodity routers typically support between 16 and 64 ECMP
#: entries; 16 is the conservative figure used by the paper's argument that
#: splitting ratios are approximated with a bounded denominator.
DEFAULT_MAX_ECMP = 16


@dataclass(frozen=True)
class FibEntry:
    """One weighted forwarding entry: send ``weight`` shares to ``next_hop``."""

    next_hop: str
    weight: int
    via_fake: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise RoutingError(f"FIB entry weight must be >= 1, got {self.weight}")


@dataclass(frozen=True)
class PrefixFib:
    """All forwarding entries of one router toward one prefix."""

    prefix: Prefix
    cost: float
    entries: Tuple[FibEntry, ...]
    local: bool = False
    truncated: bool = False

    @property
    def total_weight(self) -> int:
        """Sum of the entry weights (the split denominator)."""
        return sum(entry.weight for entry in self.entries)

    def split_ratios(self) -> Dict[str, float]:
        """Traffic fraction sent to each next hop (empty for local delivery)."""
        total = self.total_weight
        if total == 0:
            return {}
        return {entry.next_hop: entry.weight / total for entry in self.entries}

    def next_hops(self) -> Tuple[str, ...]:
        """Distinct physical next hops, sorted."""
        return tuple(sorted(entry.next_hop for entry in self.entries))


class Fib:
    """Forwarding table of one router: per-prefix weighted next hops."""

    def __init__(self, router: str, prefix_fibs: Mapping[Prefix, PrefixFib]) -> None:
        self.router = router
        self._prefix_fibs = dict(prefix_fibs)
        # Lazily built by via_fake_prefixes(); a Fib is immutable once
        # handed out, so the index never goes stale.
        self._via_fake_index: Optional[Dict[str, Set[Prefix]]] = None

    @property
    def prefixes(self) -> List[Prefix]:
        """Sorted list of prefixes with at least one forwarding entry or local delivery."""
        return sorted(self._prefix_fibs)

    def lookup(self, prefix: Prefix) -> PrefixFib:
        """The forwarding entries toward ``prefix`` (raises if absent)."""
        try:
            return self._prefix_fibs[prefix]
        except KeyError:
            raise RoutingError(f"router {self.router!r} has no FIB entry for {prefix}") from None

    def has_entry(self, prefix: Prefix) -> bool:
        """Whether this FIB can forward traffic toward ``prefix``."""
        return prefix in self._prefix_fibs

    def split_ratios(self, prefix: Prefix) -> Dict[str, float]:
        """Convenience: the per-next-hop traffic fractions for ``prefix``."""
        return self.lookup(prefix).split_ratios()

    def delivers_locally(self, prefix: Prefix) -> bool:
        """Whether ``prefix`` is attached to this router (traffic terminates here)."""
        return prefix in self._prefix_fibs and self._prefix_fibs[prefix].local

    @property
    def entry_count(self) -> int:
        """Total number of installed forwarding entries (all prefixes)."""
        return sum(len(pf.entries) for pf in self._prefix_fibs.values())

    def via_fake_prefixes(self) -> Dict[str, Set[Prefix]]:
        """Index of fake-node name to the prefixes forwarding through it.

        Built lazily on first use and cached (a ``Fib`` is immutable once
        returned).  This is what lets the RIB cache's per-event resolution
        churn check touch only the handful of lie-dependent prefixes instead
        of scanning every installed entry — see
        :meth:`repro.igp.rib_cache.RibCache._fib_dirty`.
        """
        if self._via_fake_index is None:
            index: Dict[str, Set[Prefix]] = {}
            for prefix, prefix_fib in self._prefix_fibs.items():
                for entry in prefix_fib.entries:
                    for fake in entry.via_fake:
                        index.setdefault(fake, set()).add(prefix)
            self._via_fake_index = index
        return self._via_fake_index

    def changed_prefixes(self, other: "Fib") -> Set[Prefix]:
        """Prefixes whose forwarding entry differs between ``self`` and ``other``.

        Covers additions, removals and modifications.  Because incremental
        FIB repair (:func:`update_fib`) carries clean :class:`PrefixFib`
        objects over wholesale, unchanged prefixes are usually dismissed by
        identity without a structural comparison — this is what makes the
        data plane's per-event FIB diff cheap.
        """
        changed: Set[Prefix] = set()
        for prefix, mine in self._prefix_fibs.items():
            theirs = other._prefix_fibs.get(prefix)
            if theirs is None or (theirs is not mine and theirs != mine):
                changed.add(prefix)
        for prefix in other._prefix_fibs:
            if prefix not in self._prefix_fibs:
                changed.add(prefix)
        return changed

    def __iter__(self) -> Iterator[PrefixFib]:
        for prefix in self.prefixes:
            yield self._prefix_fibs[prefix]

    def __len__(self) -> int:
        return len(self._prefix_fibs)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Fib(router={self.router!r}, prefixes={len(self._prefix_fibs)})"


def resolve_rib_to_fib(
    graph: ComputationGraph,
    rib: Rib,
    max_ecmp: int = DEFAULT_MAX_ECMP,
) -> Fib:
    """Resolve every RIB route into weighted physical forwarding entries.

    Parameters
    ----------
    graph:
        The computation graph the RIB was derived from (needed to resolve
        fake next hops and to validate forwarding addresses).
    rib:
        The router's RIB.
    max_ecmp:
        Upper bound on the number of entries installed per prefix.  When the
        resolved entries exceed the bound, the lowest-weight entries are
        dropped first (deterministically), and the resulting
        :class:`PrefixFib` is flagged ``truncated``.
    """
    if max_ecmp < 1:
        raise RoutingError(f"max_ecmp must be >= 1, got {max_ecmp}")

    prefix_fibs: Dict[Prefix, PrefixFib] = {}
    for route in rib:
        prefix_fibs[route.prefix] = _resolve_route(graph, rib.router, route, max_ecmp)
    return Fib(rib.router, prefix_fibs)


def update_fib(
    graph: ComputationGraph,
    prev: Fib,
    rib: Rib,
    dirty: Iterable[Prefix],
    max_ecmp: int = DEFAULT_MAX_ECMP,
) -> Fib:
    """Repair ``prev`` by re-resolving only the ``dirty`` prefixes of ``rib``.

    Clean :class:`PrefixFib` objects are carried over wholesale.  ``dirty``
    must cover every prefix whose route changed *and* every prefix whose
    previous entries resolve through a fake node whose metadata (forwarding
    address, anchor) changed — :class:`~repro.igp.rib_cache.RibCache` derives
    both sets from the graph's change log.
    """
    if max_ecmp < 1:
        raise RoutingError(f"max_ecmp must be >= 1, got {max_ecmp}")
    prefix_fibs = dict(prev._prefix_fibs)
    for prefix in dirty:
        if rib.has_route(prefix):
            prefix_fibs[prefix] = _resolve_route(
                graph, rib.router, rib.route(prefix), max_ecmp
            )
        else:
            prefix_fibs.pop(prefix, None)
    return Fib(rib.router, prefix_fibs)


def _resolve_route(
    graph: ComputationGraph,
    router: str,
    route: Route,
    max_ecmp: int,
) -> PrefixFib:
    real_next_hops: Set[str] = set()
    fake_entries: List[Tuple[str, str]] = []  # (fake node, physical next hop)
    local = False

    for contribution in route.contributions:
        if contribution.next_hop is None:
            local = True
            continue
        if contribution.next_hop_is_fake:
            info = graph.fake_info(contribution.next_hop)
            if info.anchor != router:
                raise RoutingError(
                    f"router {router!r} selected fake node {info.name!r} anchored at "
                    f"{info.anchor!r}; lies must only be adjacent to their anchor"
                )
            physical = info.forwarding_address
            _validate_forwarding_address(graph, router, info.name, physical)
            fake_entries.append((info.name, physical))
        else:
            real_next_hops.add(contribution.next_hop)

    entries: Dict[str, Dict[str, object]] = {}
    for next_hop in sorted(real_next_hops):
        entries[next_hop] = {"weight": 1, "via_fake": []}
    for fake_node, physical in sorted(fake_entries):
        slot = entries.setdefault(physical, {"weight": 0, "via_fake": []})
        slot["weight"] = int(slot["weight"]) + 1
        slot["via_fake"].append(fake_node)  # type: ignore[union-attr]

    fib_entries = [
        FibEntry(
            next_hop=next_hop,
            weight=int(slot["weight"]),
            via_fake=tuple(slot["via_fake"]),  # type: ignore[arg-type]
        )
        for next_hop, slot in sorted(entries.items())
        if int(slot["weight"]) > 0
    ]

    truncated = False
    total_entries = sum(entry.weight for entry in fib_entries)
    if total_entries > max_ecmp:
        fib_entries, truncated = _truncate(fib_entries, max_ecmp)

    return PrefixFib(
        prefix=route.prefix,
        cost=route.cost,
        entries=tuple(fib_entries),
        local=local,
        truncated=truncated,
    )


def _truncate(entries: List[FibEntry], max_ecmp: int) -> Tuple[List[FibEntry], bool]:
    """Reduce total entry weight to ``max_ecmp``, largest weights first.

    Keeping the heaviest entries preserves the dominant next hops; at least
    one unit of weight per surviving next hop is retained where possible.
    """
    ordered = sorted(entries, key=lambda entry: (-entry.weight, entry.next_hop))
    budget = max_ecmp
    kept: List[FibEntry] = []
    for entry in ordered:
        if budget <= 0:
            break
        weight = min(entry.weight, budget)
        kept.append(FibEntry(next_hop=entry.next_hop, weight=weight, via_fake=entry.via_fake))
        budget -= weight
    kept.sort(key=lambda entry: entry.next_hop)
    return kept, True


def _validate_forwarding_address(
    graph: ComputationGraph, router: str, fake_node: str, physical: str
) -> None:
    if not graph.has_node(physical):
        raise RoutingError(
            f"fake node {fake_node!r} resolves to unknown next hop {physical!r}"
        )
    if graph.is_fake(physical):
        raise RoutingError(
            f"fake node {fake_node!r} resolves to another fake node {physical!r}"
        )
    if physical not in graph.successors(router):
        raise RoutingError(
            f"fake node {fake_node!r} resolves to {physical!r}, which is not adjacent "
            f"to its anchor {router!r}"
        )
