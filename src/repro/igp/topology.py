"""Physical topology model: routers, links and attached destination prefixes.

A :class:`Topology` is the *ground truth* physical network.  It is distinct
from the :class:`~repro.igp.graph.ComputationGraph` that each router derives
from its link-state database: the latter can additionally contain the fake
nodes and links injected by the Fibbing controller.

Links are stored per direction, so asymmetric IGP weights are supported
(weights are symmetric by default, matching the demo).  Every directed link
carries an IGP weight, a capacity in bit/s and a propagation delay in
seconds; the capacity and delay are used by the data plane and the flooding
fabric respectively, while SPF only looks at the weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.util.errors import TopologyError
from repro.util.prefixes import Prefix
from repro.util.units import mbps
from repro.util.validation import check_non_negative, check_positive

__all__ = ["RouterInfo", "Link", "PrefixAttachment", "Topology", "DEFAULT_CAPACITY"]

#: Default link capacity: the demo uses links able to carry roughly 4 MB/s of
#: video traffic (Fig. 2's y-axis saturates at 4e6 byte/s), i.e. 32 Mbit/s.
DEFAULT_CAPACITY = mbps(32)

#: Default one-way propagation delay for links, in seconds.
DEFAULT_DELAY = 0.001


@dataclass(frozen=True)
class RouterInfo:
    """Static description of one router.

    ``name`` is the router identifier used throughout the library (e.g.
    ``"A"`` or ``"R2"``); ``router_id`` is an OSPF-like 32-bit identifier kept
    for realism and used to break ties deterministically.
    """

    name: str
    router_id: int

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Link:
    """A directed physical link ``source -> target``."""

    source: str
    target: str
    weight: float
    capacity: float = DEFAULT_CAPACITY
    delay: float = DEFAULT_DELAY

    def __post_init__(self) -> None:
        check_positive(self.weight, "weight")
        check_positive(self.capacity, "capacity")
        check_non_negative(self.delay, "delay")

    @property
    def key(self) -> Tuple[str, str]:
        """The ``(source, target)`` pair identifying this directed link."""
        return (self.source, self.target)

    def reversed(self, weight: Optional[float] = None) -> "Link":
        """The same physical link seen in the opposite direction."""
        return Link(
            source=self.target,
            target=self.source,
            weight=self.weight if weight is None else weight,
            capacity=self.capacity,
            delay=self.delay,
        )

    def __str__(self) -> str:
        return f"{self.source}->{self.target}"


@dataclass(frozen=True)
class PrefixAttachment:
    """A destination prefix attached to (announced by) a router.

    ``cost`` is the announcement metric (OSPF external metric); the total
    cost of a path to the prefix is the IGP distance to the announcing router
    plus this cost.
    """

    router: str
    prefix: Prefix
    cost: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.cost, "cost")


class Topology:
    """Mutable physical topology: routers, directed links, attached prefixes.

    The class enforces referential integrity (links and prefixes can only
    reference existing routers) and offers convenience constructors for
    undirected (symmetric) links, which is how the paper's figures describe
    the demo network.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._routers: Dict[str, RouterInfo] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._neighbors: Dict[str, Set[str]] = {}
        self._prefixes: Dict[Prefix, List[PrefixAttachment]] = {}
        self._next_router_id = 1
        self._revision = 0

    # ------------------------------------------------------------------ #
    # Routers
    # ------------------------------------------------------------------ #
    def add_router(self, name: str, router_id: Optional[int] = None) -> RouterInfo:
        """Add a router called ``name``; returns its :class:`RouterInfo`."""
        if not name:
            raise TopologyError("router name must be a non-empty string")
        if name in self._routers:
            raise TopologyError(f"router {name!r} already exists")
        if router_id is None:
            router_id = self._next_router_id
        self._next_router_id = max(self._next_router_id, router_id + 1)
        info = RouterInfo(name=name, router_id=router_id)
        self._routers[name] = info
        self._neighbors[name] = set()
        self._revision += 1
        return info

    def add_routers(self, names: Iterable[str]) -> List[RouterInfo]:
        """Add several routers at once (convenience for topology builders)."""
        return [self.add_router(name) for name in names]

    def has_router(self, name: str) -> bool:
        """Whether a router called ``name`` exists."""
        return name in self._routers

    def router(self, name: str) -> RouterInfo:
        """Return the :class:`RouterInfo` for ``name`` (raises if unknown)."""
        try:
            return self._routers[name]
        except KeyError:
            raise TopologyError(f"unknown router {name!r}") from None

    @property
    def revision(self) -> int:
        """Monotone mutation counter, bumped by every topology change.

        A cheap change-detection handle: two reads returning the same value
        guarantee that no router, link, weight, capacity or prefix
        attachment moved in between (through the public API).  The
        incremental controller uses it to skip rebuilding and re-diffing
        the baseline computation graph on unchanged topologies.
        """
        return self._revision

    @property
    def routers(self) -> List[str]:
        """Sorted list of router names."""
        return sorted(self._routers)

    @property
    def num_routers(self) -> int:
        """Number of routers in the topology."""
        return len(self._routers)

    def remove_router(self, name: str) -> None:
        """Remove a router together with its links and prefix attachments."""
        self.router(name)  # raise if unknown
        for key in [key for key in self._links if name in key]:
            del self._links[key]
        for neighbor in self._neighbors.pop(name, set()):
            self._neighbors[neighbor].discard(name)
        for prefix in list(self._prefixes):
            remaining = [att for att in self._prefixes[prefix] if att.router != name]
            if remaining:
                self._prefixes[prefix] = remaining
            else:
                del self._prefixes[prefix]
        del self._routers[name]
        self._revision += 1

    # ------------------------------------------------------------------ #
    # Links
    # ------------------------------------------------------------------ #
    def add_directed_link(
        self,
        source: str,
        target: str,
        weight: float = 1.0,
        capacity: float = DEFAULT_CAPACITY,
        delay: float = DEFAULT_DELAY,
    ) -> Link:
        """Add a single directed link; both endpoints must already exist."""
        self.router(source)
        self.router(target)
        if source == target:
            raise TopologyError(f"self-loop on router {source!r} is not allowed")
        key = (source, target)
        if key in self._links:
            raise TopologyError(f"link {source}->{target} already exists")
        link = Link(source=source, target=target, weight=weight, capacity=capacity, delay=delay)
        self._links[key] = link
        self._neighbors[source].add(target)
        self._revision += 1
        return link

    def add_link(
        self,
        first: str,
        second: str,
        weight: float = 1.0,
        capacity: float = DEFAULT_CAPACITY,
        delay: float = DEFAULT_DELAY,
        reverse_weight: Optional[float] = None,
    ) -> Tuple[Link, Link]:
        """Add a bidirectional link (two directed links with shared capacity).

        ``reverse_weight`` allows asymmetric IGP weights; by default both
        directions use ``weight``.
        """
        forward = self.add_directed_link(first, second, weight, capacity, delay)
        backward = self.add_directed_link(
            second, first, weight if reverse_weight is None else reverse_weight, capacity, delay
        )
        return forward, backward

    def remove_link(self, source: str, target: str, both_directions: bool = True) -> None:
        """Remove the link ``source -> target`` (and the reverse by default)."""
        keys = [(source, target)]
        if both_directions:
            keys.append((target, source))
        removed_any = False
        for key in keys:
            if key in self._links:
                del self._links[key]
                removed_any = True
        if not removed_any:
            raise TopologyError(f"no link between {source!r} and {target!r}")
        if (source, target) not in self._links:
            self._neighbors.get(source, set()).discard(target)
        if (target, source) not in self._links:
            self._neighbors.get(target, set()).discard(source)
        self._revision += 1

    def has_link(self, source: str, target: str) -> bool:
        """Whether the directed link ``source -> target`` exists."""
        return (source, target) in self._links

    def link(self, source: str, target: str) -> Link:
        """Return the directed link ``source -> target`` (raises if unknown)."""
        try:
            return self._links[(source, target)]
        except KeyError:
            raise TopologyError(f"unknown link {source}->{target}") from None

    @property
    def links(self) -> List[Link]:
        """All directed links, sorted by (source, target)."""
        return [self._links[key] for key in sorted(self._links)]

    @property
    def undirected_links(self) -> List[Tuple[str, str]]:
        """Unordered link pairs, each reported once with endpoints sorted."""
        seen: Set[Tuple[str, str]] = set()
        for source, target in self._links:
            pair = tuple(sorted((source, target)))
            seen.add(pair)  # type: ignore[arg-type]
        return sorted(seen)

    @property
    def num_links(self) -> int:
        """Number of *directed* links."""
        return len(self._links)

    def neighbors(self, router: str) -> List[str]:
        """Sorted list of routers reachable over one directed link from ``router``."""
        self.router(router)
        return sorted(self._neighbors[router])

    def set_weight(self, source: str, target: str, weight: float, both_directions: bool = True) -> None:
        """Change the IGP weight of an existing link (used by weight-optimisation TE)."""
        check_positive(weight, "weight")
        keys = [(source, target)]
        if both_directions:
            keys.append((target, source))
        for key in keys:
            if key not in self._links:
                raise TopologyError(f"unknown link {key[0]}->{key[1]}")
            old = self._links[key]
            self._links[key] = Link(
                source=old.source,
                target=old.target,
                weight=weight,
                capacity=old.capacity,
                delay=old.delay,
            )
        self._revision += 1

    def set_capacity(
        self, source: str, target: str, capacity: float, both_directions: bool = True
    ) -> None:
        """Change the capacity of an existing link (a provisioning event).

        Capacity does not enter the IGP computation graph — routing is
        unaffected — but it does change what the min-max optimizer may place
        on the link, so the controller's plan cache keys on a capacity
        digest alongside the graph version (see
        :meth:`~repro.core.optimizer.MinMaxLoadOptimizer.optimize`).
        """
        check_positive(capacity, "capacity")
        keys = [(source, target)]
        if both_directions:
            keys.append((target, source))
        for key in keys:
            if key not in self._links:
                raise TopologyError(f"unknown link {key[0]}->{key[1]}")
            old = self._links[key]
            self._links[key] = Link(
                source=old.source,
                target=old.target,
                weight=old.weight,
                capacity=capacity,
                delay=old.delay,
            )
        self._revision += 1

    # ------------------------------------------------------------------ #
    # Prefixes
    # ------------------------------------------------------------------ #
    def attach_prefix(self, router: str, prefix: Prefix | str, cost: float = 0.0) -> PrefixAttachment:
        """Attach (announce) ``prefix`` at ``router`` with metric ``cost``."""
        self.router(router)
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        attachment = PrefixAttachment(router=router, prefix=prefix, cost=cost)
        attachments = self._prefixes.setdefault(prefix, [])
        if any(existing.router == router for existing in attachments):
            raise TopologyError(f"prefix {prefix} already attached to {router!r}")
        attachments.append(attachment)
        self._revision += 1
        return attachment

    def detach_prefix(self, router: str, prefix: Prefix | str) -> None:
        """Remove the attachment of ``prefix`` at ``router``."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        attachments = self._prefixes.get(prefix, [])
        remaining = [att for att in attachments if att.router != router]
        if len(remaining) == len(attachments):
            raise TopologyError(f"prefix {prefix} is not attached to {router!r}")
        if remaining:
            self._prefixes[prefix] = remaining
        else:
            del self._prefixes[prefix]
        self._revision += 1

    @property
    def prefixes(self) -> List[Prefix]:
        """Sorted list of announced prefixes."""
        return sorted(self._prefixes)

    def prefix_attachments(self, prefix: Prefix | str) -> List[PrefixAttachment]:
        """All attachments of ``prefix`` (raises if the prefix is unknown)."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        try:
            return list(self._prefixes[prefix])
        except KeyError:
            raise TopologyError(f"prefix {prefix} is not announced anywhere") from None

    def attachments_of(self, router: str) -> List[PrefixAttachment]:
        """All prefixes announced by ``router``."""
        self.router(router)
        return [
            attachment
            for attachments in self._prefixes.values()
            for attachment in attachments
            if attachment.router == router
        ]

    # ------------------------------------------------------------------ #
    # Whole-topology helpers
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "Topology":
        """Deep copy of the topology (links and prefix attachments included)."""
        clone = Topology(name or self.name)
        for router_name in self.routers:
            clone.add_router(router_name, self._routers[router_name].router_id)
        for link in self.links:
            clone.add_directed_link(
                link.source, link.target, link.weight, link.capacity, link.delay
            )
        for prefix, attachments in self._prefixes.items():
            for attachment in attachments:
                clone.attach_prefix(attachment.router, prefix, attachment.cost)
        return clone

    def is_connected(self) -> bool:
        """Whether every router can reach every other router over directed links."""
        routers = self.routers
        if len(routers) <= 1:
            return True
        for start in routers:
            reached = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for neighbor in self._neighbors[current]:
                    if neighbor not in reached:
                        reached.add(neighbor)
                        frontier.append(neighbor)
            if len(reached) != len(routers):
                return False
        return True

    def total_capacity(self) -> float:
        """Sum of the capacities of all directed links (bit/s)."""
        return sum(link.capacity for link in self._links.values())

    def validate(self) -> None:
        """Check internal invariants; raises :class:`TopologyError` on violation."""
        for (source, target), link in self._links.items():
            if link.key != (source, target):
                raise TopologyError(f"link key mismatch for {source}->{target}")
            if source not in self._routers or target not in self._routers:
                raise TopologyError(f"link {source}->{target} references unknown routers")
        for prefix, attachments in self._prefixes.items():
            for attachment in attachments:
                if attachment.router not in self._routers:
                    raise TopologyError(
                        f"prefix {prefix} attached to unknown router {attachment.router!r}"
                    )

    def __contains__(self, router: str) -> bool:
        return router in self._routers

    def __iter__(self) -> Iterator[str]:
        return iter(self.routers)

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, routers={self.num_routers}, "
            f"links={self.num_links}, prefixes={len(self._prefixes)})"
        )
