"""Shortest-path-first computation (Dijkstra) with full ECMP support.

The result of an SPF run from a source router contains, for every reachable
node, the distance, the complete set of first-hop neighbors over which an
equal-cost shortest path exists (the ECMP set), and the shortest-path DAG
predecessors (used to enumerate paths, e.g. for tests and for the MPLS
baseline that needs explicit paths).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.igp.graph import ComputationGraph
from repro.util.errors import RoutingError

__all__ = ["ShortestPaths", "compute_spf"]

#: Relative tolerance when comparing path costs for equality (ECMP detection).
#: IGP costs are small integers in practice, but the optimizer can emit
#: fractional costs, so exact float equality would be fragile.
_COST_EPSILON = 1e-9


@dataclass
class ShortestPaths:
    """Outcome of one SPF run from ``source``.

    Attributes
    ----------
    source:
        The router the computation was run from.
    distance:
        Mapping from node name to its shortest distance from ``source``.
        Unreachable nodes are absent.
    next_hops:
        Mapping from node name to the frozen set of *first-hop neighbors of
        the source* usable to reach that node along some shortest path.  The
        source itself maps to an empty set.
    predecessors:
        Mapping from node name to the set of its predecessors on the
        shortest-path DAG rooted at ``source``.
    """

    source: str
    distance: Dict[str, float] = field(default_factory=dict)
    next_hops: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    predecessors: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def reachable(self, node: str) -> bool:
        """Whether ``node`` is reachable from the source."""
        return node in self.distance

    def distance_to(self, node: str) -> float:
        """Shortest distance to ``node``; raises :class:`RoutingError` if unreachable."""
        try:
            return self.distance[node]
        except KeyError:
            raise RoutingError(f"{node!r} is unreachable from {self.source!r}") from None

    def next_hops_to(self, node: str) -> FrozenSet[str]:
        """ECMP set of first hops toward ``node``; raises if unreachable."""
        if node not in self.distance:
            raise RoutingError(f"{node!r} is unreachable from {self.source!r}")
        return self.next_hops.get(node, frozenset())

    def paths_to(self, node: str, limit: int = 1024) -> List[Tuple[str, ...]]:
        """Enumerate every equal-cost shortest path from the source to ``node``.

        Paths are returned as node tuples ``(source, ..., node)``, sorted
        lexicographically for determinism.  ``limit`` bounds the enumeration
        to protect against combinatorial blow-up on dense graphs.
        """
        if node not in self.distance:
            raise RoutingError(f"{node!r} is unreachable from {self.source!r}")
        paths: List[Tuple[str, ...]] = []

        def expand(current: str, suffix: Tuple[str, ...]) -> None:
            if len(paths) >= limit:
                return
            if current == self.source:
                paths.append((current,) + suffix)
                return
            for predecessor in sorted(self.predecessors.get(current, frozenset())):
                expand(predecessor, (current,) + suffix)

        expand(node, ())
        return sorted(paths)

    def __contains__(self, node: str) -> bool:
        return node in self.distance


def compute_spf(graph: ComputationGraph, source: str) -> ShortestPaths:
    """Run Dijkstra from ``source`` over ``graph`` and return :class:`ShortestPaths`.

    The implementation keeps, for every settled node, the *set* of
    predecessors whose relaxation achieved the minimal distance (within
    ``_COST_EPSILON``); the ECMP next-hop sets are then derived by walking
    those predecessor sets back to the source's own neighbors.
    """
    if not graph.has_node(source):
        raise RoutingError(f"SPF source {source!r} is not in the computation graph")

    distance: Dict[str, float] = {source: 0.0}
    predecessors: Dict[str, Set[str]] = {source: set()}
    settled: Set[str] = set()
    # Heap entries are (distance, node); stale entries are skipped when popped.
    heap: List[Tuple[float, str]] = [(0.0, source)]

    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        if dist > distance.get(node, float("inf")) + _COST_EPSILON:
            continue
        settled.add(node)
        for neighbor, cost in graph.successors(node).items():
            candidate = dist + cost
            current = distance.get(neighbor)
            if current is None or candidate < current - _COST_EPSILON:
                distance[neighbor] = candidate
                predecessors[neighbor] = {node}
                heapq.heappush(heap, (candidate, neighbor))
            elif abs(candidate - current) <= _COST_EPSILON:
                predecessors[neighbor].add(node)

    next_hops = _derive_next_hops(source, distance, predecessors)
    return ShortestPaths(
        source=source,
        distance=distance,
        next_hops={node: frozenset(hops) for node, hops in next_hops.items()},
        predecessors={node: frozenset(preds) for node, preds in predecessors.items()},
    )


def _derive_next_hops(
    source: str,
    distance: Dict[str, float],
    predecessors: Dict[str, Set[str]],
) -> Dict[str, Set[str]]:
    """Propagate first-hop sets down the shortest-path DAG.

    Nodes are processed in order of increasing distance, so every
    predecessor's next-hop set is final before it is consumed.
    """
    next_hops: Dict[str, Set[str]] = {source: set()}
    for node in sorted(distance, key=lambda name: (distance[name], name)):
        if node == source:
            continue
        hops: Set[str] = set()
        for predecessor in predecessors.get(node, set()):
            if predecessor == source:
                hops.add(node)
            else:
                hops.update(next_hops.get(predecessor, set()))
        next_hops[node] = hops
    return next_hops
