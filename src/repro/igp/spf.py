"""Shortest-path-first computation (Dijkstra) with full ECMP support.

The result of an SPF run from a source router contains, for every reachable
node, the distance, the complete set of first-hop neighbors over which an
equal-cost shortest path exists (the ECMP set), and the shortest-path DAG
predecessors (used to enumerate paths, e.g. for tests and for the MPLS
baseline that needs explicit paths).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.igp.graph import ComputationGraph, EdgeDelta
from repro.util.errors import RoutingError

__all__ = ["ShortestPaths", "compute_spf", "update_spf", "cost_tolerance", "costs_equal"]

#: Relative tolerance when comparing path costs for equality (ECMP detection).
#: IGP costs are small integers in practice, but the optimizer can emit
#: fractional costs, so exact float equality would be fragile.  The tolerance
#: is *relative* to the magnitude of the compared costs (with an absolute
#: floor of ``_COST_EPSILON`` for sub-unit costs), so that equal-cost paths
#: are still detected when accumulated float rounding grows with the path
#: cost itself — see :func:`cost_tolerance`.
_COST_EPSILON = 1e-9


def cost_tolerance(scale: float) -> float:
    """The comparison tolerance appropriate for path costs of size ``scale``."""
    return _COST_EPSILON * max(1.0, abs(scale))


def costs_equal(first: float, second: float) -> bool:
    """Whether two path costs are equal within the (relative) SPF tolerance."""
    return abs(first - second) <= cost_tolerance(max(abs(first), abs(second)))


@dataclass
class ShortestPaths:
    """Outcome of one SPF run from ``source``.

    Attributes
    ----------
    source:
        The router the computation was run from.
    distance:
        Mapping from node name to its shortest distance from ``source``.
        Unreachable nodes are absent.
    next_hops:
        Mapping from node name to the frozen set of *first-hop neighbors of
        the source* usable to reach that node along some shortest path.  The
        source itself maps to an empty set.
    predecessors:
        Mapping from node name to the set of its predecessors on the
        shortest-path DAG rooted at ``source``.
    """

    source: str
    distance: Dict[str, float] = field(default_factory=dict)
    next_hops: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    predecessors: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def reachable(self, node: str) -> bool:
        """Whether ``node`` is reachable from the source."""
        return node in self.distance

    def distance_to(self, node: str) -> float:
        """Shortest distance to ``node``; raises :class:`RoutingError` if unreachable."""
        try:
            return self.distance[node]
        except KeyError:
            raise RoutingError(f"{node!r} is unreachable from {self.source!r}") from None

    def next_hops_to(self, node: str) -> FrozenSet[str]:
        """ECMP set of first hops toward ``node``; raises if unreachable."""
        if node not in self.distance:
            raise RoutingError(f"{node!r} is unreachable from {self.source!r}")
        return self.next_hops.get(node, frozenset())

    def paths_to(
        self, node: str, limit: int = 1024, *, partial: bool = False
    ) -> List[Tuple[str, ...]]:
        """Enumerate every equal-cost shortest path from the source to ``node``.

        Paths are returned as node tuples ``(source, ..., node)``, sorted
        lexicographically for determinism.  ``limit`` bounds the enumeration
        to protect against combinatorial blow-up on dense graphs; when more
        than ``limit`` paths exist the enumeration is *truncated*, which
        raises :class:`RoutingError` unless ``partial=True`` explicitly opts
        into receiving the first ``limit`` paths (in predecessor-DFS order).

        The walk is iterative — path depth is bounded by the topology
        diameter, not by the interpreter recursion limit, so paths thousands
        of hops deep enumerate fine.
        """
        if node not in self.distance:
            raise RoutingError(f"{node!r} is unreachable from {self.source!r}")
        paths: List[Tuple[str, ...]] = []
        truncated = False
        # Depth-first over the predecessor DAG; predecessors are pushed in
        # reverse-sorted order so they pop ascending, preserving the
        # enumeration order of the old recursive implementation.
        stack: List[Tuple[str, Tuple[str, ...]]] = [(node, ())]
        while stack:
            current, suffix = stack.pop()
            if current == self.source:
                if len(paths) >= limit:
                    truncated = True
                    break
                paths.append((current,) + suffix)
                continue
            for predecessor in sorted(
                self.predecessors.get(current, frozenset()), reverse=True
            ):
                stack.append((predecessor, (current,) + suffix))
        if truncated and not partial:
            raise RoutingError(
                f"more than {limit} equal-cost paths from {self.source!r} to "
                f"{node!r}; raise limit or pass partial=True for a truncated set"
            )
        return sorted(paths)

    def __contains__(self, node: str) -> bool:
        return node in self.distance


def compute_spf(graph: ComputationGraph, source: str) -> ShortestPaths:
    """Run Dijkstra from ``source`` over ``graph`` and return :class:`ShortestPaths`.

    The implementation keeps, for every settled node, the *set* of
    predecessors whose relaxation achieved the minimal distance (within
    ``_COST_EPSILON``); the ECMP next-hop sets are then derived by walking
    those predecessor sets back to the source's own neighbors.
    """
    if not graph.has_node(source):
        raise RoutingError(f"SPF source {source!r} is not in the computation graph")

    distance: Dict[str, float] = {source: 0.0}
    predecessors: Dict[str, Set[str]] = {source: set()}
    settled: Set[str] = set()
    # Heap entries are (distance, node); stale entries are skipped when popped.
    heap: List[Tuple[float, str]] = [(0.0, source)]

    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        if dist > distance.get(node, float("inf")) + cost_tolerance(dist):
            continue
        settled.add(node)
        for neighbor, cost in graph.successors(node).items():
            candidate = dist + cost
            current = distance.get(neighbor)
            if current is None or candidate < current - cost_tolerance(current):
                distance[neighbor] = candidate
                predecessors[neighbor] = {node}
                heapq.heappush(heap, (candidate, neighbor))
            elif costs_equal(candidate, current):
                predecessors[neighbor].add(node)

    next_hops = _derive_next_hops(source, distance, predecessors)
    return ShortestPaths(
        source=source,
        distance=distance,
        next_hops={node: frozenset(hops) for node, hops in next_hops.items()},
        predecessors={node: frozenset(preds) for node, preds in predecessors.items()},
    )


def update_spf(
    prev: ShortestPaths,
    graph: ComputationGraph,
    deltas: Iterable[EdgeDelta],
    full_threshold: float = 0.5,
    counters: Optional[object] = None,
) -> ShortestPaths:
    """Incrementally repair ``prev`` after the edge changes in ``deltas``.

    This is the classic incremental-Dijkstra (Ramalingam–Reps) approach:

    1. every node whose previous shortest-path DAG ran over a removed or
       cost-increased edge is *invalidated* (the affected subtree);
    2. the remaining distances are exact and serve as the trusted frontier: a
       bounded Dijkstra re-relaxes only the invalidated region plus whatever
       the inserted/cheapened edges can improve;
    3. ECMP predecessor sets and first-hop sets are re-derived for the nodes
       whose distance or incident costs changed, and first-hop changes are
       propagated down the (new) shortest-path DAG in distance order.

    When the invalidated region exceeds ``full_threshold`` of the previously
    reachable nodes the repair would approach the cost of a fresh run, so the
    function falls back to :func:`compute_spf`.  The returned object is
    ``prev`` itself when the deltas turn out not to affect this source at
    all — callers must treat :class:`ShortestPaths` as immutable.

    ``counters``, when given, must expose mutable ``incremental_updates`` and
    ``fallbacks`` attributes (see :class:`repro.igp.spf_cache.SpfCounters`);
    exactly one of the two is incremented per call.
    """
    source = prev.source
    if not graph.has_node(source):
        raise RoutingError(f"SPF source {source!r} is not in the computation graph")

    def fall_back() -> ShortestPaths:
        if counters is not None:
            counters.fallbacks += 1
        return compute_spf(graph, source)

    # Collapse repeated changes of the same directed edge: the oldest
    # ``old_cost`` and the graph's current state are what matters.
    collapsed: Dict[Tuple[str, str], float | None] = {}
    for delta in deltas:
        key = (delta.source, delta.target)
        if key not in collapsed:
            collapsed[key] = delta.old_cost
    effective: List[EdgeDelta] = []
    for (u, v), old_cost in collapsed.items():
        new_cost = graph.successors(u).get(v) if graph.has_node(u) else None
        if old_cost != new_cost:
            effective.append(EdgeDelta(u, v, old_cost, new_cost))
    if not effective:
        if counters is not None:
            counters.incremental_updates += 1
        return prev
    if len(effective) > max(16, len(prev.distance)):
        return fall_back()

    # ----- 1. invalidate the subtree hanging off worsened DAG edges ------ #
    children: Dict[str, List[str]] = {}
    for node, preds in prev.predecessors.items():
        for pred in preds:
            children.setdefault(pred, []).append(node)
    invalid: Set[str] = set()
    stack: List[str] = []
    for delta in effective:
        worsened = delta.old_cost is not None and (
            delta.new_cost is None or delta.new_cost > delta.old_cost
        )
        if worsened and delta.source in prev.predecessors.get(delta.target, ()):
            stack.append(delta.target)
    while stack:
        node = stack.pop()
        if node in invalid:
            continue
        invalid.add(node)
        stack.extend(children.get(node, ()))
    if source in invalid or len(invalid) > full_threshold * max(1, len(prev.distance)):
        return fall_back()
    if counters is not None:
        counters.incremental_updates += 1

    # ----- 2. bounded Dijkstra over the affected region ------------------ #
    # Distances of non-invalidated, still-present nodes are exact upper
    # bounds that decreases may still improve; invalidated nodes re-enter
    # through their best edge from the trusted region.
    tentative: Dict[str, float] = {
        node: dist
        for node, dist in prev.distance.items()
        if node not in invalid and graph.has_node(node)
    }
    tentative[source] = 0.0
    heap: List[Tuple[float, str]] = []
    for node in invalid:
        if not graph.has_node(node):
            continue
        for neighbor, cost in graph.predecessors_of(node).items():
            base = tentative.get(neighbor)
            if base is not None:
                heapq.heappush(heap, (base + cost, node))
    for delta in effective:
        if delta.new_cost is None or not graph.has_node(delta.target):
            continue
        base = tentative.get(delta.source)
        if base is not None:
            heapq.heappush(heap, (base + delta.new_cost, delta.target))

    settled: Set[str] = set()
    dist_dirty: Set[str] = set(node for node in invalid if graph.has_node(node))
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        current = tentative.get(node)
        if current is not None and dist >= current - cost_tolerance(current):
            settled.add(node)
            continue
        tentative[node] = dist
        settled.add(node)
        dist_dirty.add(node)
        for neighbor, cost in graph.successors(node).items():
            candidate = dist + cost
            known = tentative.get(neighbor)
            if neighbor in invalid and neighbor not in settled:
                heapq.heappush(heap, (candidate, neighbor))
            elif known is None or candidate < known - cost_tolerance(known):
                heapq.heappush(heap, (candidate, neighbor))

    # Invalidated nodes that were never re-settled are now unreachable.
    dist_dirty = {node for node in dist_dirty if node in tentative}

    # ----- 3. re-derive ECMP predecessor sets for affected nodes --------- #
    pred_dirty: Set[str] = set(dist_dirty)
    for delta in effective:
        pred_dirty.add(delta.target)
    for node in dist_dirty:
        for neighbor in graph.successors(node):
            pred_dirty.add(neighbor)
    pred_dirty = {node for node in pred_dirty if node in tentative and node != source}

    new_predecessors: Dict[str, FrozenSet[str]] = {}
    for node in pred_dirty:
        dist = tentative[node]
        preds = {
            neighbor
            for neighbor, cost in graph.predecessors_of(node).items()
            if neighbor in tentative and costs_equal(tentative[neighbor] + cost, dist)
        }
        new_predecessors[node] = frozenset(preds)

    def preds_of(node: str) -> FrozenSet[str]:
        if node == source:
            return frozenset()
        got = new_predecessors.get(node)
        if got is not None:
            return got
        return prev.predecessors.get(node, frozenset())

    # ----- 4. propagate first-hop changes down the new DAG --------------- #
    next_hops: Dict[str, FrozenSet[str]] = {
        node: prev.next_hops[node]
        for node in tentative
        if node in prev.next_hops
    }
    next_hops[source] = frozenset()
    hop_heap: List[Tuple[float, str]] = []
    for node in pred_dirty | (dist_dirty - {source}):
        if node in tentative:
            heapq.heappush(hop_heap, (tentative[node], node))
    hop_done: Set[str] = set()
    while hop_heap:
        _, node = heapq.heappop(hop_heap)
        if node in hop_done or node == source:
            hop_done.add(node)
            continue
        hop_done.add(node)
        hops: Set[str] = set()
        for pred in preds_of(node):
            if pred == source:
                hops.add(node)
            else:
                hops.update(next_hops.get(pred, frozenset()))
        new_hops = frozenset(hops)
        old_hops = next_hops.get(node)
        next_hops[node] = new_hops
        if old_hops is None or new_hops != old_hops:
            for neighbor in graph.successors(node):
                if (
                    neighbor in tentative
                    and neighbor not in hop_done
                    and node in preds_of(neighbor)
                ):
                    heapq.heappush(hop_heap, (tentative[neighbor], neighbor))

    predecessors = {
        node: (new_predecessors[node] if node in new_predecessors else preds_of(node))
        for node in tentative
    }
    predecessors[source] = frozenset()
    return ShortestPaths(
        source=source,
        distance=tentative,
        next_hops=next_hops,
        predecessors=predecessors,
    )


def _derive_next_hops(
    source: str,
    distance: Dict[str, float],
    predecessors: Dict[str, Set[str]],
) -> Dict[str, Set[str]]:
    """Propagate first-hop sets down the shortest-path DAG.

    Nodes are processed in order of increasing distance, so every
    predecessor's next-hop set is final before it is consumed.
    """
    next_hops: Dict[str, Set[str]] = {source: set()}
    for node in sorted(distance, key=lambda name: (distance[name], name)):
        if node == source:
            continue
        hops: Set[str] = set()
        for predecessor in predecessors.get(node, set()):
            if predecessor == source:
                hops.add(node)
            else:
                hops.update(next_hops.get(predecessor, set()))
        next_hops[node] = hops
    return next_hops
