"""Flow-level data plane.

The original demo measured real packets on Mininet virtual links; this
package reproduces the quantities the paper reports (per-link throughput,
per-flow rates, congestion) with a fluid, flow-level model:

``flows``
    Flow descriptors (ingress router, destination prefix, demand) and the
    book-keeping for collections of flows.
``demand``
    Aggregated traffic matrices used by the static analyses and by the
    TE baselines, plus demand classes — ``(ingress, prefix, rate, count)``
    session cohorts, the unit of the aggregate-demand engine.
``forwarding``
    Routing of traffic over the routers' FIBs: exact fractional splitting
    (fluid mode) and per-flow ECMP hashing (hash mode), plus loop detection.
``linkstats``
    Per-link load accounting and utilisation summaries.
``fairness``
    Max-min fair bandwidth sharing (progressive filling) across flows that
    compete on a bottleneck link, decomposed along the connected components
    of the flow-link hypergraph.
``path_cache``
    The incremental machinery: versioned flow-path caching keyed on the FIB
    entries a path traverses, and warm-start max-min repair per dirty
    component, with the ``dp_*`` counters.
``engine``
    The event-driven simulation loops tying everything to the shared
    timeline: flow arrivals/departures (``DataPlaneEngine``) or class-level
    cohort arrivals (``AggregateDemandEngine``), FIB changes, capacity
    changes, SNMP counters, and the periodic sampling used to draw Fig. 2.
``events``
    Typed records of everything that happened during a run (for tracing,
    tests, and benchmark reporting).
"""

from repro.dataplane.flows import Flow, FlowSet, FlowSpec
from repro.dataplane.demand import (
    TrafficMatrix,
    DemandEntry,
    ClassSpec,
    DemandClass,
    ClassSet,
)
from repro.dataplane.forwarding import (
    ForwardingOutcome,
    ClassPathGroup,
    route_fractional,
    route_flows_hashed,
    route_class_sessions,
    forwarding_graph,
)
from repro.dataplane.linkstats import LinkLoads, LinkUtilization
from repro.dataplane.fairness import (
    max_min_fair_allocation,
    decompose_components,
    fill_component,
)
from repro.dataplane.path_cache import (
    DataPlaneCounters,
    FlowPathCache,
    WarmStartAllocator,
)
from repro.dataplane.engine import AggregateDemandEngine, DataPlaneEngine, LinkSample
from repro.dataplane.events import SimulationEvent, FlowEvent

__all__ = [
    "Flow",
    "FlowSet",
    "FlowSpec",
    "TrafficMatrix",
    "DemandEntry",
    "ClassSpec",
    "DemandClass",
    "ClassSet",
    "ForwardingOutcome",
    "ClassPathGroup",
    "route_fractional",
    "route_flows_hashed",
    "route_class_sessions",
    "forwarding_graph",
    "LinkLoads",
    "LinkUtilization",
    "max_min_fair_allocation",
    "decompose_components",
    "fill_component",
    "DataPlaneCounters",
    "FlowPathCache",
    "WarmStartAllocator",
    "DataPlaneEngine",
    "AggregateDemandEngine",
    "LinkSample",
    "SimulationEvent",
    "FlowEvent",
]
