"""Max-min fair bandwidth sharing.

When several flows compete for a link, TCP (and the video players of the
demo) converge to an approximately fair share of the bottleneck.  The fluid
equivalent is the classic *max-min fair allocation* computed by progressive
filling: all flows grow at the same rate until a link saturates or a flow
reaches its demand; saturated flows are frozen and the process repeats.

The allocation is exactly what determines whether a video stalls in the
demo: a flow whose max-min share falls below the video bitrate cannot keep
its playback buffer full.

The allocation decomposes along the *connected components* of the flow-link
hypergraph (two flows are connected when their paths share a link): flows in
different components never influence each other's rates, so each component
is filled independently.  This is what makes the warm-start repair of
:class:`~repro.dataplane.path_cache.WarmStartAllocator` exact — re-filling
only the dirty components through the very same :func:`fill_component`
reproduces a from-scratch allocation bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.util.errors import SimulationError, ValidationError
from repro.util.validation import check_non_negative

__all__ = [
    "max_min_fair_allocation",
    "decompose_components",
    "fill_component",
]

LinkKey = Tuple[str, str]

#: Rates below this value (bit/s) are treated as zero to avoid endless
#: progressive-filling rounds on numerical dust.
_RATE_EPSILON = 1e-6


def max_min_fair_allocation(
    flow_links: Mapping[int, Sequence[LinkKey]],
    demands: Mapping[int, float],
    capacities: Mapping[LinkKey, float],
) -> Dict[int, float]:
    """Compute the max-min fair rate of every flow.

    Parameters
    ----------
    flow_links:
        For each flow id, the sequence of directed links its path traverses.
        A flow with an empty path (delivered at its ingress) is not
        capacity-constrained and simply receives its demand.
    demands:
        Upper bound (bit/s) on each flow's rate — the application sending
        rate, e.g. the video bitrate.
    capacities:
        Capacity (bit/s) of every link appearing in the paths.

    Returns
    -------
    dict
        Mapping from flow id to allocated rate.
    """
    for flow_id in flow_links:
        if flow_id not in demands:
            raise ValidationError(f"flow {flow_id} has a path but no demand")
    rates: Dict[int, float] = {}
    constrained: Dict[int, Tuple[LinkKey, ...]] = {}
    for flow_id, links in flow_links.items():
        demand = check_non_negative(demands[flow_id], f"demand of flow {flow_id}")
        if demand <= _RATE_EPSILON:
            rates[flow_id] = 0.0
            continue
        if not links:
            rates[flow_id] = demand
            continue
        for link in links:
            if link not in capacities:
                raise ValidationError(f"flow {flow_id} traverses unknown link {link}")
        constrained[flow_id] = tuple(links)

    for component in decompose_components(constrained):
        rates.update(fill_component(component, constrained, demands, capacities))
    return rates


def decompose_components(
    flow_links: Mapping[int, Sequence[LinkKey]],
) -> List[Tuple[int, ...]]:
    """Partition flows into connected components of the flow-link hypergraph.

    Two flows belong to the same component when a chain of shared links
    connects them.  Every returned component is a sorted tuple of flow ids;
    components are ordered by their smallest member, so the decomposition is
    deterministic regardless of the input mapping's iteration order.
    """
    parent: Dict[int, int] = {}

    def find(flow_id: int) -> int:
        root = flow_id
        while parent[root] != root:
            root = parent[root]
        while parent[flow_id] != root:  # path compression
            parent[flow_id], flow_id = root, parent[flow_id]
        return root

    link_owner: Dict[LinkKey, int] = {}
    for flow_id in sorted(flow_links):
        parent[flow_id] = flow_id
        for link in flow_links[flow_id]:
            owner = link_owner.get(link)
            if owner is None:
                link_owner[link] = flow_id
            else:
                parent[find(flow_id)] = find(owner)

    groups: Dict[int, List[int]] = {}
    for flow_id in sorted(flow_links):
        groups.setdefault(find(flow_id), []).append(flow_id)
    return sorted((tuple(members) for members in groups.values()), key=lambda g: g[0])


def fill_component(
    flow_ids: Sequence[int],
    flow_links: Mapping[int, Sequence[LinkKey]],
    demands: Mapping[int, float],
    capacities: Mapping[LinkKey, float],
) -> Dict[int, float]:
    """Progressive filling restricted to one connected component.

    ``flow_ids`` must be the component's flows in ascending id order; every
    flow must have a non-empty path and a demand above the rate epsilon.
    The result depends only on the *set* of flows and their links, demands
    and capacities, so re-filling an unchanged component always reproduces
    the exact same floating-point rates.
    """
    rates: Dict[int, float] = {}
    active: Dict[int, Tuple[LinkKey, ...]] = {}
    for flow_id in flow_ids:
        rates[flow_id] = 0.0
        active[flow_id] = tuple(flow_links[flow_id])

    remaining: Dict[LinkKey, float] = {}
    for links in active.values():
        for link in links:
            remaining.setdefault(link, float(capacities[link]))

    max_rounds = len(active) + len(remaining) + 1
    for _ in range(max_rounds):
        if not active:
            break
        # How many active flows traverse each link (a flow crossing a link
        # twice — which only happens with looping paths — counts twice).
        usage: Dict[LinkKey, int] = {}
        for links in active.values():
            for link in links:
                usage[link] = usage.get(link, 0) + 1

        # The common increment is limited by the tightest link fair share and
        # by the closest remaining demand headroom.
        link_limit = min(
            (remaining[link] / count for link, count in usage.items() if count > 0),
            default=float("inf"),
        )
        demand_limit = min(
            demands[flow_id] - rates[flow_id] for flow_id in active
        )
        increment = min(link_limit, demand_limit)
        if increment < 0:
            raise SimulationError("negative increment during progressive filling")

        if increment > 0:
            for flow_id, links in active.items():
                rates[flow_id] += increment
                for link in links:
                    remaining[link] -= increment

        # Freeze flows that reached their demand or hit a saturated link.
        frozen: List[int] = []
        for flow_id, links in active.items():
            if demands[flow_id] - rates[flow_id] <= _RATE_EPSILON:
                frozen.append(flow_id)
                continue
            if any(remaining[link] <= _RATE_EPSILON for link in links):
                frozen.append(flow_id)
        if not frozen and increment <= _RATE_EPSILON:
            raise SimulationError(
                "progressive filling made no progress; capacities may be inconsistent"
            )
        for flow_id in frozen:
            del active[flow_id]

    if active:
        raise SimulationError(
            f"progressive filling did not converge; {len(active)} flows still active"
        )
    return rates
