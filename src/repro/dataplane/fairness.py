"""Max-min fair bandwidth sharing.

When several flows compete for a link, TCP (and the video players of the
demo) converge to an approximately fair share of the bottleneck.  The fluid
equivalent is the classic *max-min fair allocation* computed by progressive
filling: all flows grow at the same rate until a link saturates or a flow
reaches its demand; saturated flows are frozen and the process repeats.

The allocation is exactly what determines whether a video stalls in the
demo: a flow whose max-min share falls below the video bitrate cannot keep
its playback buffer full.

The allocation decomposes along the *connected components* of the flow-link
hypergraph (two flows are connected when their paths share a link): flows in
different components never influence each other's rates, so each component
is filled independently.  This is what makes the warm-start repair of
:class:`~repro.dataplane.path_cache.WarmStartAllocator` exact — re-filling
only the dirty components through the very same :func:`fill_component`
reproduces a from-scratch allocation bit for bit.

Two generalisations support the aggregate-demand data plane:

* **Multiplicity.**  Every allocation entity carries a session ``count``;
  a link crossed by an entity consumes ``count`` fair shares.  Capacity is
  drained *once per link and round* as ``remaining -= usage * increment``
  (``usage`` being the exact integer sum of active counts), so one entity
  of count ``n`` produces bit-identical rates to ``n`` separate entities of
  count 1 — the property the aggregate engine's differential oracle pins.
* **Kernels.**  ``kernel="numpy"`` (or ``REPRO_KERNEL=numpy``) runs each
  progressive-filling round over entity×link incidence arrays instead of
  Python dicts.  Every per-round operation is elementwise or an
  order-independent minimum, so the array kernel reproduces the Python
  kernel's IEEE float64 rates bit for bit — same discipline as the SPF
  kernels in :mod:`repro.igp.kernel`, whose ``resolve_kernel`` knob idiom
  this module reuses.

Saturation and progress tests use a *capacity-relative* epsilon
(:func:`rate_tolerance`).  The previous absolute ``1e-6`` bit/s threshold
was tuned for Mbit/s demo flows; at Gbit/s aggregate rates a single round's
float residue can exceed it, leaving a saturated link nominally
"unsaturated" and burning rounds until the ``max_rounds`` guard raised a
spurious :class:`~repro.util.errors.SimulationError`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.igp.kernel import resolve_kernel
from repro.util.errors import SimulationError, ValidationError
from repro.util.validation import check_non_negative

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - minimal installs only
    np = None  # type: ignore[assignment]

__all__ = [
    "max_min_fair_allocation",
    "decompose_components",
    "fill_component",
    "rate_tolerance",
    "RATE_EPSILON",
]

LinkKey = Tuple[str, str]

#: Relative tolerance for rate comparisons.  A link is saturated when its
#: remaining capacity is below ``rate_tolerance(capacity)``; a flow reached
#: its demand when the headroom is below ``rate_tolerance(demand)``.
RATE_EPSILON = 1e-9

#: Backwards-compatible alias (pre-PR-8 name; the value used to be an
#: *absolute* 1e-6 bit/s threshold).
_RATE_EPSILON = RATE_EPSILON


def rate_tolerance(scale: float) -> float:
    """Absolute tolerance for rates at magnitude ``scale`` (bit/s).

    Relative above 1 bit/s, floored at ``RATE_EPSILON`` below it so that
    zero-scale comparisons still have a non-zero slack.
    """
    return RATE_EPSILON * (scale if scale > 1.0 else 1.0)


def max_min_fair_allocation(
    flow_links: Mapping[int, Sequence[LinkKey]],
    demands: Mapping[int, float],
    capacities: Mapping[LinkKey, float],
    counts: Optional[Mapping[int, int]] = None,
    kernel: Optional[str] = None,
) -> Dict[int, float]:
    """Compute the max-min fair rate of every flow (or demand class).

    Parameters
    ----------
    flow_links:
        For each entity id, the sequence of directed links its path
        traverses.  An entity with an empty path (delivered at its ingress)
        is not capacity-constrained and simply receives its demand.
    demands:
        Upper bound (bit/s) on each entity's *per-session* rate — the
        application sending rate, e.g. the video bitrate.
    capacities:
        Capacity (bit/s) of every link appearing in the paths.
    counts:
        Session multiplicity of each entity (default 1).  An entity of
        count ``n`` receives the same per-session rate as ``n`` identical
        count-1 entities would, bit for bit.
    kernel:
        ``"python"`` / ``"numpy"`` / ``None`` (= the ``REPRO_KERNEL``
        environment default), as in :func:`repro.igp.kernel.resolve_kernel`.

    Returns
    -------
    dict
        Mapping from entity id to allocated per-session rate.
    """
    kernel_name = resolve_kernel(kernel)
    for flow_id in flow_links:
        if flow_id not in demands:
            raise ValidationError(f"flow {flow_id} has a path but no demand")
    rates: Dict[int, float] = {}
    constrained: Dict[int, Tuple[LinkKey, ...]] = {}
    for flow_id, links in flow_links.items():
        demand = check_non_negative(demands[flow_id], f"demand of flow {flow_id}")
        if demand <= rate_tolerance(demand):
            rates[flow_id] = 0.0
            continue
        if not links:
            rates[flow_id] = demand
            continue
        for link in links:
            if link not in capacities:
                raise ValidationError(f"flow {flow_id} traverses unknown link {link}")
        constrained[flow_id] = tuple(links)

    for component in decompose_components(constrained):
        rates.update(
            fill_component(
                component, constrained, demands, capacities, counts=counts, kernel=kernel_name
            )
        )
    return rates


def decompose_components(
    flow_links: Mapping[int, Sequence[LinkKey]],
) -> List[Tuple[int, ...]]:
    """Partition flows into connected components of the flow-link hypergraph.

    Two flows belong to the same component when a chain of shared links
    connects them.  Every returned component is a sorted tuple of flow ids;
    components are ordered by their smallest member, so the decomposition is
    deterministic regardless of the input mapping's iteration order.
    """
    parent: Dict[int, int] = {}

    def find(flow_id: int) -> int:
        root = flow_id
        while parent[root] != root:
            root = parent[root]
        while parent[flow_id] != root:  # path compression
            parent[flow_id], flow_id = root, parent[flow_id]
        return root

    link_owner: Dict[LinkKey, int] = {}
    for flow_id in sorted(flow_links):
        parent[flow_id] = flow_id
        for link in flow_links[flow_id]:
            owner = link_owner.get(link)
            if owner is None:
                link_owner[link] = flow_id
            else:
                parent[find(flow_id)] = find(owner)

    groups: Dict[int, List[int]] = {}
    for flow_id in sorted(flow_links):
        groups.setdefault(find(flow_id), []).append(flow_id)
    return sorted((tuple(members) for members in groups.values()), key=lambda g: g[0])


def fill_component(
    flow_ids: Sequence[int],
    flow_links: Mapping[int, Sequence[LinkKey]],
    demands: Mapping[int, float],
    capacities: Mapping[LinkKey, float],
    counts: Optional[Mapping[int, int]] = None,
    kernel: Optional[str] = None,
) -> Dict[int, float]:
    """Progressive filling restricted to one connected component.

    ``flow_ids`` must be the component's entities in ascending id order;
    every entity must have a non-empty path and a demand above the rate
    tolerance.  The result depends only on the *set* of entities and their
    links, demands, counts and capacities — not on iteration order or on
    the kernel — so re-filling an unchanged component always reproduces the
    exact same floating-point rates.
    """
    kernel_name = resolve_kernel(kernel)
    entity_counts = _resolve_counts(flow_ids, counts)
    if kernel_name == "numpy":
        return _fill_component_numpy(flow_ids, flow_links, demands, capacities, entity_counts)
    return _fill_component_python(flow_ids, flow_links, demands, capacities, entity_counts)


def _resolve_counts(
    flow_ids: Sequence[int], counts: Optional[Mapping[int, int]]
) -> Dict[int, int]:
    resolved: Dict[int, int] = {}
    for flow_id in flow_ids:
        count = 1 if counts is None else counts.get(flow_id, 1)
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise ValidationError(
                f"entity {flow_id} has invalid session count {count!r}; expected a positive int"
            )
        resolved[flow_id] = count
    return resolved


def _fill_component_python(
    flow_ids: Sequence[int],
    flow_links: Mapping[int, Sequence[LinkKey]],
    demands: Mapping[int, float],
    capacities: Mapping[LinkKey, float],
    counts: Dict[int, int],
) -> Dict[int, float]:
    rates: Dict[int, float] = {}
    active: Dict[int, Tuple[LinkKey, ...]] = {}
    demand_tol: Dict[int, float] = {}
    for flow_id in flow_ids:
        rates[flow_id] = 0.0
        active[flow_id] = tuple(flow_links[flow_id])
        demand_tol[flow_id] = rate_tolerance(demands[flow_id])

    remaining: Dict[LinkKey, float] = {}
    link_tol: Dict[LinkKey, float] = {}
    for links in active.values():
        for link in links:
            if link not in remaining:
                capacity = float(capacities[link])
                remaining[link] = capacity
                link_tol[link] = rate_tolerance(capacity)

    progress_tol = rate_tolerance(
        max(
            max((float(capacities[link]) for link in remaining), default=0.0),
            max((demands[flow_id] for flow_id in flow_ids), default=0.0),
        )
    )

    max_rounds = len(active) + len(remaining) + 1
    for _ in range(max_rounds):
        if not active:
            break
        # How many active sessions traverse each link (an entity crossing a
        # link twice — which only happens with looping paths — counts its
        # sessions twice).  Integer arithmetic: exact regardless of order.
        usage: Dict[LinkKey, int] = {}
        for flow_id, links in active.items():
            count = counts[flow_id]
            for link in links:
                usage[link] = usage.get(link, 0) + count

        # The common increment is limited by the tightest link fair share and
        # by the closest remaining demand headroom.
        link_limit = min(
            (remaining[link] / count for link, count in usage.items() if count > 0),
            default=float("inf"),
        )
        demand_limit = min(
            demands[flow_id] - rates[flow_id] for flow_id in active
        )
        increment = min(link_limit, demand_limit)
        if increment < 0:
            raise SimulationError("negative increment during progressive filling")

        if increment > 0:
            for flow_id in active:
                rates[flow_id] += increment
            # Capacity drains once per link: ``usage`` is an exact integer,
            # so n count-1 entities and one count-n entity subtract the very
            # same float64 value.
            for link, count in usage.items():
                remaining[link] -= count * increment

        # Freeze entities that reached their demand or hit a saturated link.
        frozen: List[int] = []
        for flow_id, links in active.items():
            if demands[flow_id] - rates[flow_id] <= demand_tol[flow_id]:
                frozen.append(flow_id)
                continue
            if any(remaining[link] <= link_tol[link] for link in links):
                frozen.append(flow_id)
        if not frozen and increment <= progress_tol:
            raise SimulationError(
                "progressive filling made no progress; capacities may be inconsistent"
            )
        for flow_id in frozen:
            del active[flow_id]

    if active:
        raise SimulationError(
            f"progressive filling did not converge; {len(active)} flows still active"
        )
    return rates


def _fill_component_numpy(
    flow_ids: Sequence[int],
    flow_links: Mapping[int, Sequence[LinkKey]],
    demands: Mapping[int, float],
    capacities: Mapping[LinkKey, float],
    counts: Dict[int, int],
) -> Dict[int, float]:
    """Array kernel: one progressive-filling round per numpy pass.

    Mirrors :func:`_fill_component_python` operation for operation.  The
    entity×link incidence is a CSR-style multiplicity matrix; per round the
    kernel computes integer link usage (exact), the order-independent
    link/demand minima, and the elementwise rate/remaining updates — all
    IEEE float64 ops identical to the Python loop, hence bit-identical
    results.
    """
    if np is None:  # pragma: no cover - resolve_kernel rejects this earlier
        raise ValidationError("numpy kernel requested but numpy is not importable")

    entities = list(flow_ids)
    n = len(entities)
    link_names = sorted({link for flow_id in entities for link in flow_links[flow_id]})
    link_index = {link: j for j, link in enumerate(link_names)}
    m = len(link_names)

    # CSR-style multiplicity incidence: incidence[i, j] counts how many
    # times entity i's path crosses link j.
    incidence = np.zeros((n, m), dtype=np.int64)
    for i, flow_id in enumerate(entities):
        for link in flow_links[flow_id]:
            incidence[i, link_index[link]] += 1

    count_vec = np.array([counts[flow_id] for flow_id in entities], dtype=np.int64)
    demand_vec = np.array([demands[flow_id] for flow_id in entities], dtype=np.float64)
    demand_tol = np.array(
        [rate_tolerance(demands[flow_id]) for flow_id in entities], dtype=np.float64
    )
    capacity_vec = np.array(
        [float(capacities[link]) for link in link_names], dtype=np.float64
    )
    link_tol = np.array(
        [rate_tolerance(float(capacities[link])) for link in link_names], dtype=np.float64
    )

    rates = np.zeros(n, dtype=np.float64)
    remaining = capacity_vec.copy()
    active = np.ones(n, dtype=bool)

    progress_tol = rate_tolerance(
        max(
            float(capacity_vec.max()) if m else 0.0,
            float(demand_vec.max()) if n else 0.0,
        )
    )

    max_rounds = n + m + 1
    for _ in range(max_rounds):
        if not active.any():
            break
        usage = (count_vec * active) @ incidence  # int64: exact session sums
        live = usage > 0
        if live.any():
            link_limit = float(np.min(remaining[live] / usage[live]))
        else:
            link_limit = float("inf")
        headroom = demand_vec - rates
        demand_limit = float(np.min(headroom[active]))
        increment = min(link_limit, demand_limit)
        if increment < 0:
            raise SimulationError("negative increment during progressive filling")

        if increment > 0:
            rates[active] += increment
            remaining[live] -= usage[live] * increment

        headroom = demand_vec - rates
        saturated = remaining <= link_tol
        frozen = active & (
            (headroom <= demand_tol) | ((incidence @ saturated.astype(np.int64)) > 0)
        )
        if not frozen.any() and increment <= progress_tol:
            raise SimulationError(
                "progressive filling made no progress; capacities may be inconsistent"
            )
        active &= ~frozen

    if active.any():
        raise SimulationError(
            f"progressive filling did not converge; {int(active.sum())} flows still active"
        )
    # Materialise builtin floats so results are indistinguishable from the
    # Python kernel's to every downstream consumer (repr, json, digests).
    return {flow_id: float(rates[i]) for i, flow_id in enumerate(entities)}
