"""Max-min fair bandwidth sharing.

When several flows compete for a link, TCP (and the video players of the
demo) converge to an approximately fair share of the bottleneck.  The fluid
equivalent is the classic *max-min fair allocation* computed by progressive
filling: all flows grow at the same rate until a link saturates or a flow
reaches its demand; saturated flows are frozen and the process repeats.

The allocation is exactly what determines whether a video stalls in the
demo: a flow whose max-min share falls below the video bitrate cannot keep
its playback buffer full.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.util.errors import SimulationError, ValidationError
from repro.util.validation import check_non_negative

__all__ = ["max_min_fair_allocation"]

LinkKey = Tuple[str, str]

#: Rates below this value (bit/s) are treated as zero to avoid endless
#: progressive-filling rounds on numerical dust.
_RATE_EPSILON = 1e-6


def max_min_fair_allocation(
    flow_links: Mapping[int, Sequence[LinkKey]],
    demands: Mapping[int, float],
    capacities: Mapping[LinkKey, float],
) -> Dict[int, float]:
    """Compute the max-min fair rate of every flow.

    Parameters
    ----------
    flow_links:
        For each flow id, the sequence of directed links its path traverses.
        A flow with an empty path (delivered at its ingress) is not
        capacity-constrained and simply receives its demand.
    demands:
        Upper bound (bit/s) on each flow's rate — the application sending
        rate, e.g. the video bitrate.
    capacities:
        Capacity (bit/s) of every link appearing in the paths.

    Returns
    -------
    dict
        Mapping from flow id to allocated rate.
    """
    for flow_id in flow_links:
        if flow_id not in demands:
            raise ValidationError(f"flow {flow_id} has a path but no demand")
    rates: Dict[int, float] = {}
    active: Dict[int, List[LinkKey]] = {}
    for flow_id, links in flow_links.items():
        demand = check_non_negative(demands[flow_id], f"demand of flow {flow_id}")
        if demand <= _RATE_EPSILON:
            rates[flow_id] = 0.0
            continue
        if not links:
            rates[flow_id] = demand
            continue
        for link in links:
            if link not in capacities:
                raise ValidationError(f"flow {flow_id} traverses unknown link {link}")
        rates[flow_id] = 0.0
        active[flow_id] = list(links)

    remaining: Dict[LinkKey, float] = {}
    for links in active.values():
        for link in links:
            remaining.setdefault(link, float(capacities[link]))

    max_rounds = len(active) + len(remaining) + 1
    for _ in range(max_rounds):
        if not active:
            break
        # How many active flows traverse each link (a flow crossing a link
        # twice — which only happens with looping paths — counts twice).
        usage: Dict[LinkKey, int] = {}
        for links in active.values():
            for link in links:
                usage[link] = usage.get(link, 0) + 1

        # The common increment is limited by the tightest link fair share and
        # by the closest remaining demand headroom.
        link_limit = min(
            (remaining[link] / count for link, count in usage.items() if count > 0),
            default=float("inf"),
        )
        demand_limit = min(
            demands[flow_id] - rates[flow_id] for flow_id in active
        )
        increment = min(link_limit, demand_limit)
        if increment < 0:
            raise SimulationError("negative increment during progressive filling")

        if increment > 0:
            for flow_id, links in active.items():
                rates[flow_id] += increment
                for link in links:
                    remaining[link] -= increment

        # Freeze flows that reached their demand or hit a saturated link.
        frozen: List[int] = []
        for flow_id, links in active.items():
            if demands[flow_id] - rates[flow_id] <= _RATE_EPSILON:
                frozen.append(flow_id)
                continue
            if any(remaining[link] <= _RATE_EPSILON for link in links):
                frozen.append(flow_id)
        if not frozen and increment <= _RATE_EPSILON:
            raise SimulationError(
                "progressive filling made no progress; capacities may be inconsistent"
            )
        for flow_id in frozen:
            del active[flow_id]

    if active:
        raise SimulationError(
            f"progressive filling did not converge; {len(active)} flows still active"
        )
    return rates
