"""Versioned flow-path caching and warm-start max-min fairness.

This is the SPF/RIB cache architecture applied to the data plane.  Where
:class:`~repro.igp.rib_cache.RibCache` repairs per-router routes from the
graph's dirty prefixes, the data plane repairs per-flow state from the dirty
*(router, prefix)* FIB entries of an event:

* :class:`FlowPathCache` stamps every observed FIB with a version and every
  per-prefix entry with the version at which it last changed.  A cached
  :class:`~repro.dataplane.forwarding.FlowPath` is keyed on
  ``(flow id, prefix, versions of the FIB entries its path traverses)`` —
  a flow only needs re-routing when one of those entries moved, because the
  hop-by-hop ECMP walk of a flow depends on nothing else.
* :class:`WarmStartAllocator` repairs a prior max-min fair allocation by
  re-running progressive filling only on the connected components (of the
  flow-link hypergraph) whose flow membership or link capacity changed.
  Components are filled through the exact
  :func:`~repro.dataplane.fairness.fill_component` routine the from-scratch
  allocator uses, so a repaired allocation is bit-identical to a full one.
  When the dirty flows exceed ``dirty_threshold`` of the active flows the
  repair would approach a from-scratch run, so the allocator falls back to
  the full decomposition (counted separately, like ``rib_fallbacks``).

:class:`DataPlaneCounters` is the accounting mirror of
:class:`~repro.igp.rib_cache.RibCounters` one layer down the stack; the
engine surfaces it through ``IgpNetwork.spf_stats``,
``monitoring.counters.collect_counters`` and ``ControllerStats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.dataplane.fairness import (
    decompose_components,
    fill_component,
    rate_tolerance,
)
from repro.igp.kernel import resolve_kernel
from repro.dataplane.flows import Flow
from repro.dataplane.forwarding import FlowPath
from repro.igp.fib import Fib
from repro.util.errors import SimulationError
from repro.util.prefixes import Prefix

__all__ = [
    "DataPlaneCounters",
    "FibEntryKey",
    "FlowPathCache",
    "AllocationRepair",
    "WarmStartAllocator",
]

LinkKey = Tuple[str, str]

#: One per-prefix forwarding entry of one router — the unit of data-plane
#: dirtiness, mirroring the RIB cache's dirty prefixes.
FibEntryKey = Tuple[str, Prefix]

#: Allocation inputs as the allocator sees them: the effective links of the
#: entity's path (empty when undeliverable), its effective *per-session*
#: demand (zero when undeliverable, so the entity sends nothing) and its
#: session count (1 for plain flows, ``n`` for an aggregate path group).
FlowInput = Tuple[Tuple[LinkKey, ...], float, int]


@dataclass
class DataPlaneCounters:
    """Reroute/reuse and warm-start accounting of one incremental data plane.

    ``flows_rerouted`` / ``flows_reused`` split every event's active flows
    into re-walked paths vs. cached paths carried over.  Each allocation
    event increments exactly one of ``alloc_warm_starts`` (per-component
    repair), ``alloc_full`` (from-scratch decomposition: cold start or cache
    disabled) or ``fallbacks`` (repair abandoned past the dirty-flow
    threshold, recomputed in full).

    The ``classes_*`` fields are the aggregate-demand engine's mirror of
    the ``flows_*`` pair: demand classes whose forwarding DAG was re-walked
    vs. served from the class path cache, plus ``class_splits`` — how many
    per-session ECMP hash partitions the population walks performed (the
    only place the aggregate engine does O(sessions) work).
    """

    flows_rerouted: int = 0
    flows_reused: int = 0
    alloc_warm_starts: int = 0
    alloc_full: int = 0
    fallbacks: int = 0
    classes_rewalked: int = 0
    classes_reused: int = 0
    class_splits: int = 0

    @property
    def alloc_events(self) -> int:
        """Total allocation passes performed."""
        return self.alloc_warm_starts + self.alloc_full + self.fallbacks

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy for reporting."""
        return {
            "dp_flows_rerouted": self.flows_rerouted,
            "dp_flows_reused": self.flows_reused,
            "dp_alloc_warm_starts": self.alloc_warm_starts,
            "dp_alloc_full": self.alloc_full,
            "dp_fallbacks": self.fallbacks,
            "dp_classes_rewalked": self.classes_rewalked,
            "dp_classes_reused": self.classes_reused,
            "dp_classes_splits": self.class_splits,
        }

    def merge(self, other: "DataPlaneCounters") -> None:
        """Add ``other``'s counts into this instance (for fleet aggregation)."""
        self.flows_rerouted += other.flows_rerouted
        self.flows_reused += other.flows_reused
        self.alloc_warm_starts += other.alloc_warm_starts
        self.alloc_full += other.alloc_full
        self.fallbacks += other.fallbacks
        self.classes_rewalked += other.classes_rewalked
        self.classes_reused += other.classes_reused
        self.class_splits += other.class_splits


class FlowPathCache:
    """Cached flow paths keyed on the versions of the FIB entries they cross.

    :meth:`observe` diffs each event's FIB snapshot against the previous one
    and stamps every changed *(router, prefix)* entry with a fresh version.
    The diff leans on the control plane's own incrementality: routers served
    by the RIB cache reuse clean :class:`~repro.igp.fib.Fib` and
    ``PrefixFib`` objects wholesale, so unchanged routers are dismissed by
    identity without looking at a single prefix.
    """

    def __init__(self) -> None:
        #: Version stamped onto the entries dirtied by the latest change.
        self.version = 0
        self._fibs: Dict[str, Fib] = {}
        self._entry_versions: Dict[FibEntryKey, int] = {}
        self._paths: Dict[int, FlowPath] = {}
        self._deps: Dict[int, Tuple[FibEntryKey, ...]] = {}
        self._dep_versions: Dict[int, Tuple[int, ...]] = {}
        self._watchers: Dict[FibEntryKey, Set[int]] = {}

    def __len__(self) -> int:
        return len(self._paths)

    # ------------------------------------------------------------------ #
    # FIB versioning
    # ------------------------------------------------------------------ #
    def observe(self, fibs: Mapping[str, Fib]) -> Set[FibEntryKey]:
        """Diff ``fibs`` against the previous snapshot; returns the dirty entries.

        Every *(router, prefix)* pair whose forwarding entry appeared,
        disappeared or changed is stamped with a new version and returned.
        """
        dirty: Set[FibEntryKey] = set()
        previous = self._fibs
        for router in previous.keys() | fibs.keys():
            old = previous.get(router)
            new = fibs.get(router)
            if old is new:
                continue
            if old is None:
                changed: Iterable[Prefix] = new.prefixes  # type: ignore[union-attr]
            elif new is None:
                changed = old.prefixes
            else:
                changed = old.changed_prefixes(new)
            for prefix in changed:
                dirty.add((router, prefix))
        if dirty:
            self.version += 1
            for key in dirty:
                self._entry_versions[key] = self.version
        self._fibs = dict(fibs)
        return dirty

    def entry_version(self, router: str, prefix: Prefix) -> int:
        """Version at which the FIB entry of ``router`` for ``prefix`` last changed."""
        return self._entry_versions.get((router, prefix), 0)

    # ------------------------------------------------------------------ #
    # Path storage
    # ------------------------------------------------------------------ #
    def store(self, flow: Flow, path: FlowPath) -> None:
        """Cache ``path`` for ``flow``, keyed on its current entry versions."""
        # The walk consulted the FIB entry for the flow's prefix at every
        # router it visited (the last hop's entry decided termination), so
        # those entries are exactly the path's version dependencies.
        self.store_entity(flow.flow_id, flow.prefix, path.hops, path=path)

    def store_entity(
        self,
        entity_id: int,
        prefix: Prefix,
        hops: Iterable[str],
        path: Optional[FlowPath] = None,
    ) -> None:
        """Cache the routing of one entity (flow or demand class).

        ``hops`` is every router the forwarding walk visited — for a demand
        class, the union of all its path groups' hops.  The entity is
        re-validated against the versions of those routers' entries for
        ``prefix``, exactly like a per-flow path.
        """
        self.drop(entity_id)
        deps = tuple((hop, prefix) for hop in dict.fromkeys(hops))
        if path is not None:
            self._paths[entity_id] = path
        self._deps[entity_id] = deps
        self._dep_versions[entity_id] = tuple(
            self._entry_versions.get(dep, 0) for dep in deps
        )
        for dep in deps:
            self._watchers.setdefault(dep, set()).add(entity_id)

    def drop(self, flow_id: int) -> None:
        """Forget the cached path of a departed (or about-to-be-rerouted) flow."""
        deps = self._deps.pop(flow_id, None)
        if deps is None:
            return
        self._paths.pop(flow_id, None)
        self._dep_versions.pop(flow_id, None)
        for dep in deps:
            watchers = self._watchers.get(dep)
            if watchers is not None:
                watchers.discard(flow_id)
                if not watchers:
                    del self._watchers[dep]

    def get(self, flow_id: int) -> Optional[FlowPath]:
        """The cached path of ``flow_id`` (``None`` when never routed)."""
        return self._paths.get(flow_id)

    def valid(self, flow_id: int) -> bool:
        """Whether the cached path's entry-version key still matches."""
        deps = self._deps.get(flow_id)
        if deps is None:
            return False
        current = tuple(self._entry_versions.get(dep, 0) for dep in deps)
        return current == self._dep_versions[flow_id]

    def dirty_flows(self, dirty_entries: Iterable[FibEntryKey]) -> Set[int]:
        """The cached flows whose path crosses one of ``dirty_entries``."""
        flows: Set[int] = set()
        for key in dirty_entries:
            watchers = self._watchers.get(key)
            if watchers:
                flows.update(watchers)
        return flows

    def invalidate(self) -> None:
        """Drop every cached path and the FIB snapshot (versions keep counting)."""
        self._fibs.clear()
        self._paths.clear()
        self._deps.clear()
        self._dep_versions.clear()
        self._watchers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FlowPathCache(paths={len(self._paths)}, version={self.version}, "
            f"entries={len(self._entry_versions)})"
        )


@dataclass(frozen=True)
class AllocationRepair:
    """Outcome of one :meth:`WarmStartAllocator.update` pass.

    ``mode`` is ``"warm"``, ``"full"``, ``"fallback"`` or ``None`` (nothing
    was dirty, the previous rates stand).  ``rate_changed`` lists the active
    flows whose allocated rate differs bitwise from before the update.
    """

    mode: Optional[str]
    rate_changed: FrozenSet[int]


@dataclass
class _Component:
    """One connected component of the flow-link hypergraph."""

    flow_ids: Tuple[int, ...]
    links: FrozenSet[LinkKey]


class WarmStartAllocator:
    """Max-min fair allocation with per-component warm-start repair."""

    def __init__(self, dirty_threshold: float = 0.5, kernel: Optional[str] = None) -> None:
        if not 0.0 <= dirty_threshold <= 1.0:
            raise SimulationError(
                f"dirty_threshold must be in [0, 1], got {dirty_threshold}"
            )
        #: Fraction of the active flows beyond which a repair falls back to
        #: a from-scratch decomposition (the fallback threshold knob).
        self.dirty_threshold = dirty_threshold
        #: Progressive-filling kernel (``"python"``/``"numpy"``), resolved
        #: once from the knob or the ``REPRO_KERNEL`` environment default.
        self.kernel = resolve_kernel(kernel)
        #: Current per-flow rates; the engine reads this mapping directly.
        self.rates: Dict[int, float] = {}
        self._inputs: Dict[int, FlowInput] = {}
        self._components: Dict[int, _Component] = {}
        self._flow_component: Dict[int, int] = {}
        self._link_component: Dict[LinkKey, int] = {}
        self._next_component = 0
        self._primed = False

    def __len__(self) -> int:
        return len(self._inputs)

    def input_of(self, flow_id: int) -> Optional[FlowInput]:
        """The (links, demand) input last allocated for ``flow_id``."""
        return self._inputs.get(flow_id)

    def component_count(self) -> int:
        """Number of connected components in the current partition."""
        return len(self._components)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def update(
        self,
        changed: Mapping[int, FlowInput],
        removed: Iterable[int],
        dirty_links: Iterable[LinkKey],
        capacities: Mapping[LinkKey, float],
    ) -> AllocationRepair:
        """Repair the allocation after one event.

        ``changed`` carries the new (links, demand) input of every arrived or
        re-routed flow whose input actually moved; ``removed`` the departed
        flow ids; ``dirty_links`` the links whose capacity changed.  Flows
        and links not mentioned are trusted to be untouched.
        """
        removed = [flow_id for flow_id in removed if flow_id in self._inputs]

        # Seed the dirty component set from the *previous* partition before
        # the inputs are mutated: the old component of every changed/removed
        # flow, the current component of every link a changed flow now
        # touches, and the component of every capacity-dirty link.
        affected: Set[int] = set()
        for flow_id in removed:
            component = self._flow_component.get(flow_id)
            if component is not None:
                affected.add(component)
        for flow_id, (links, _demand, _count) in changed.items():
            component = self._flow_component.get(flow_id)
            if component is not None:
                affected.add(component)
            for link in links:
                component = self._link_component.get(link)
                if component is not None:
                    affected.add(component)
        for link in dirty_links:
            component = self._link_component.get(link)
            if component is not None:
                affected.add(component)

        if not changed and not removed and not affected:
            if not self._primed:
                return self._full(capacities, mode="full")
            # A capacity change on an unused link (or a pure no-op event)
            # cannot move any rate.
            return AllocationRepair(mode=None, rate_changed=frozenset())

        for flow_id in removed:
            del self._inputs[flow_id]
        self._inputs.update(changed)

        if not self._primed:
            return self._full(capacities, mode="full")

        recompute: Set[int] = set(changed)
        for component in affected:
            recompute.update(self._components[component].flow_ids)
        recompute &= self._inputs.keys()

        if len(recompute) > self.dirty_threshold * max(1, len(self._inputs)):
            return self._full(capacities, mode="fallback")
        return self._warm(recompute, affected, removed, capacities)

    def invalidate(self) -> None:
        """Drop all allocation state; the next update is a counted full run."""
        self.rates.clear()
        self._inputs.clear()
        self._components.clear()
        self._flow_component.clear()
        self._link_component.clear()
        self._primed = False

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _constrained(self, flow_ids: Iterable[int]) -> Dict[int, Tuple[LinkKey, ...]]:
        """The capacity-constrained subset of ``flow_ids`` (links + real demand)."""
        constrained: Dict[int, Tuple[LinkKey, ...]] = {}
        for flow_id in flow_ids:
            links, demand, _count = self._inputs[flow_id]
            if links and demand > rate_tolerance(demand):
                constrained[flow_id] = links
        return constrained

    def _direct_rate(self, flow_id: int) -> float:
        """Rate of an unconstrained flow: its demand, or zero demand → zero."""
        links, demand, _count = self._inputs[flow_id]
        if demand <= rate_tolerance(demand):
            return 0.0
        assert not links, "constrained flows are rated by fill_component"
        return demand

    def _install_components(
        self,
        constrained: Dict[int, Tuple[LinkKey, ...]],
        capacities: Mapping[LinkKey, float],
        new_rates: Dict[int, float],
    ) -> None:
        """Decompose ``constrained``, fill each component, record the partition."""
        demands = {flow_id: self._inputs[flow_id][1] for flow_id in constrained}
        counts = {flow_id: self._inputs[flow_id][2] for flow_id in constrained}
        for flow_ids in decompose_components(constrained):
            new_rates.update(
                fill_component(
                    flow_ids,
                    constrained,
                    demands,
                    capacities,
                    counts=counts,
                    kernel=self.kernel,
                )
            )
            links = frozenset(
                link for flow_id in flow_ids for link in constrained[flow_id]
            )
            component = self._next_component
            self._next_component += 1
            self._components[component] = _Component(flow_ids=flow_ids, links=links)
            for flow_id in flow_ids:
                self._flow_component[flow_id] = component
            for link in links:
                self._link_component[link] = component

    def _finish(
        self, new_rates: Dict[int, float], removed: Iterable[int]
    ) -> FrozenSet[int]:
        """Apply ``new_rates``, drop ``removed``, report the bitwise changes."""
        rate_changed = {
            flow_id
            for flow_id, rate in new_rates.items()
            if self.rates.get(flow_id) != rate
        }
        for flow_id in removed:
            self.rates.pop(flow_id, None)
        self.rates.update(new_rates)
        return frozenset(rate_changed)

    def _full(
        self, capacities: Mapping[LinkKey, float], mode: str
    ) -> AllocationRepair:
        previous_rates = dict(self.rates)
        self._components.clear()
        self._flow_component.clear()
        self._link_component.clear()
        new_rates: Dict[int, float] = {}
        constrained = self._constrained(self._inputs)
        for flow_id in self._inputs:
            if flow_id not in constrained:
                new_rates[flow_id] = self._direct_rate(flow_id)
        self._install_components(constrained, capacities, new_rates)
        self.rates = new_rates
        self._primed = True
        rate_changed = frozenset(
            flow_id
            for flow_id, rate in new_rates.items()
            if previous_rates.get(flow_id) != rate
        )
        return AllocationRepair(mode=mode, rate_changed=rate_changed)

    def _warm(
        self,
        recompute: Set[int],
        affected: Set[int],
        removed: Iterable[int],
        capacities: Mapping[LinkKey, float],
    ) -> AllocationRepair:
        for component_id in affected:
            component = self._components.pop(component_id)
            for flow_id in component.flow_ids:
                self._flow_component.pop(flow_id, None)
            for link in component.links:
                if self._link_component.get(link) == component_id:
                    del self._link_component[link]

        new_rates: Dict[int, float] = {}
        constrained = self._constrained(recompute)
        for flow_id in recompute:
            if flow_id not in constrained:
                new_rates[flow_id] = self._direct_rate(flow_id)
        self._install_components(constrained, capacities, new_rates)
        rate_changed = self._finish(new_rates, removed)
        return AllocationRepair(mode="warm", rate_changed=rate_changed)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"WarmStartAllocator(flows={len(self._inputs)}, "
            f"components={len(self._components)}, threshold={self.dirty_threshold})"
        )
