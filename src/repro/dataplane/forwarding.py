"""Routing of traffic over installed FIBs.

Two complementary models are provided, matching how the paper's numbers were
produced:

* **Fluid (fractional) mode** — aggregate demands are split *exactly*
  according to each router's FIB weights (this is the long-run average of
  ECMP hashing over many flows).  Used for the static Fig. 1 loads and by
  the TE baselines.
* **Hash mode** — each individual flow is pinned at every router to a single
  next hop chosen by a deterministic hash of the flow id, weighted by the
  FIB entry weights.  This reproduces real ECMP behaviour (a single flow
  never splits) and is what the Fig. 2 time-series experiment uses.

Both modes detect forwarding loops and refuse to silently lose traffic:
fluid mode raises, hash mode records the flow as looping (so tests can
assert that Fibbing never creates loops).
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.dataplane.demand import TrafficMatrix
from repro.dataplane.flows import Flow
from repro.dataplane.linkstats import LinkLoads
from repro.igp.fib import Fib
from repro.util.errors import RoutingError
from repro.util.prefixes import Prefix

__all__ = [
    "ForwardingOutcome",
    "FlowPath",
    "ClassPathGroup",
    "forwarding_graph",
    "route_fractional",
    "route_flows_hashed",
    "route_class_sessions",
]


@dataclass(frozen=True)
class FlowPath:
    """The routers traversed by one flow, in order, plus its delivery status."""

    flow_id: int
    hops: Tuple[str, ...]
    delivered: bool
    looped: bool = False

    @property
    def links(self) -> Tuple[Tuple[str, str], ...]:
        """The directed links traversed by the flow."""
        return tuple(zip(self.hops, self.hops[1:]))


@dataclass
class ForwardingOutcome:
    """Result of routing a demand set or flow set over the current FIBs."""

    loads: LinkLoads
    delivered: float = 0.0
    undeliverable: float = 0.0
    flow_paths: Dict[int, FlowPath] = field(default_factory=dict)

    @property
    def loss_fraction(self) -> float:
        """Fraction of the offered load that could not be delivered."""
        total = self.delivered + self.undeliverable
        return self.undeliverable / total if total > 0 else 0.0


def forwarding_graph(
    fibs: Mapping[str, Fib], prefix: Prefix
) -> Dict[str, Dict[str, float]]:
    """Per-destination forwarding graph: ``{router: {next_hop: fraction}}``.

    Routers that deliver the prefix locally map to an empty dictionary.
    Routers without any FIB entry for the prefix are simply absent.
    """
    graph: Dict[str, Dict[str, float]] = {}
    for router, fib in fibs.items():
        if not fib.has_entry(prefix):
            continue
        prefix_fib = fib.lookup(prefix)
        if prefix_fib.local:
            graph[router] = {}
        else:
            graph[router] = prefix_fib.split_ratios()
    return graph


def _topological_order(graph: Dict[str, Dict[str, float]]) -> List[str]:
    """Topological order of the per-destination forwarding graph.

    Raises :class:`RoutingError` when the graph contains a cycle, i.e. when
    the installed FIBs would forward traffic in a loop.
    """
    in_degree: Dict[str, int] = {node: 0 for node in graph}
    for node, next_hops in graph.items():
        for next_hop in next_hops:
            if next_hop in in_degree:
                in_degree[next_hop] += 1
    ready = sorted(node for node, degree in in_degree.items() if degree == 0)
    order: List[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for next_hop in sorted(graph.get(node, {})):
            if next_hop not in in_degree:
                continue
            in_degree[next_hop] -= 1
            if in_degree[next_hop] == 0:
                ready.append(next_hop)
        ready.sort()
    if len(order) != len(graph):
        cyclic = sorted(set(graph) - set(order))
        raise RoutingError(f"forwarding loop detected among routers {cyclic}")
    return order


def route_fractional(
    fibs: Mapping[str, Fib],
    demands: TrafficMatrix,
) -> ForwardingOutcome:
    """Route aggregate demands with exact fractional ECMP splitting.

    For every destination prefix, demands are propagated through the
    per-destination forwarding graph in topological order; each router
    forwards the traffic it receives (plus its own ingress demand) to its
    next hops proportionally to the FIB weights.  Traffic reaching a router
    that delivers the prefix locally counts as delivered; traffic entering at
    a router without a route counts as undeliverable.
    """
    outcome = ForwardingOutcome(loads=LinkLoads())
    for prefix in demands.prefixes:
        per_ingress = demands.demands_for(prefix)
        graph = forwarding_graph(fibs, prefix)
        order = _topological_order(graph)

        incoming: Dict[str, float] = {router: 0.0 for router in graph}
        for ingress, rate in per_ingress.items():
            if ingress not in graph:
                outcome.undeliverable += rate
                continue
            incoming[ingress] += rate

        for router in order:
            carried = incoming.get(router, 0.0)
            if carried <= 0.0:
                continue
            next_hops = graph[router]
            if not next_hops:
                # Local delivery at the router announcing the prefix.
                outcome.delivered += carried
                continue
            for next_hop, fraction in next_hops.items():
                share = carried * fraction
                if share <= 0.0:
                    continue
                outcome.loads.add(router, next_hop, share, prefix=prefix)
                if next_hop in incoming:
                    incoming[next_hop] += share
                else:
                    # Next hop has no route for the prefix: traffic is lost
                    # there (it would be dropped by the real router too).
                    outcome.undeliverable += share
    return outcome


def _hash_fraction(flow_id: int, router: str, salt: int) -> float:
    """Deterministic per-(flow, router) value in [0, 1) used for ECMP hashing.

    Real routers hash the five-tuple; here the flow id plays that role.  The
    hash must be independent across routers (hence the router name in the
    digest) so that consecutive routers make independent choices, and stable
    across runs for reproducibility.
    """
    digest = hashlib.sha256(f"{salt}:{flow_id}:{router}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _pick_next_hop(split: Mapping[str, float], fraction: float) -> str:
    """Map a hash value in [0, 1) to a next hop according to the split weights."""
    cumulative = 0.0
    last = ""
    for next_hop in sorted(split):
        cumulative += split[next_hop]
        last = next_hop
        if fraction < cumulative:
            return next_hop
    return last  # numerical slack: the hash fell into the rounding tail


@dataclass(frozen=True)
class ClassPathGroup:
    """One path group of a routed demand class: the sessions sharing a path.

    ``ids`` is the ascending session-id population pinned to ``hops`` —
    a :class:`range` while the cohort has not crossed any ECMP branch, an
    ``array('q')`` once a hash partition split it.  Every session in the
    group follows exactly the path :func:`route_flows_hashed` would give a
    flow with the same id.
    """

    hops: Tuple[str, ...]
    delivered: bool
    looped: bool
    ids: Sequence[int]

    @property
    def count(self) -> int:
        """Number of sessions in the group."""
        return len(self.ids)

    @property
    def links(self) -> Tuple[Tuple[str, str], ...]:
        """The directed links traversed by the group."""
        return tuple(zip(self.hops, self.hops[1:]))


def route_class_sessions(
    fibs: Mapping[str, Fib],
    ingress: str,
    prefix: Prefix,
    session_ids: Sequence[int],
    salt: int = 0,
    max_hops: int = 64,
) -> Tuple[List[ClassPathGroup], int]:
    """Route a whole session population at once; returns ``(groups, splits)``.

    The population walks the per-prefix forwarding DAG as a unit: at every
    router with a single effective next hop the entire group moves together
    (no hashing at all), and only at genuine ECMP branch points is
    :func:`_hash_fraction` evaluated per session id to partition the
    population — mirroring :func:`route_flows_hashed` decision for
    decision (same local-delivery rules, loop detection and ``max_hops``
    budget), so each session lands on the bit-identical path it would get
    as an individual flow.  ``splits`` counts the hash partitions performed
    (the only O(sessions) work).
    """
    groups: List[ClassPathGroup] = []
    splits = 0

    def finish(ids: Sequence[int], hops: List[str], delivered: bool, looped: bool) -> None:
        groups.append(
            ClassPathGroup(hops=tuple(hops), delivered=delivered, looped=looped, ids=ids)
        )

    def walk(ids: Sequence[int], current: str, hops: List[str], visited: Set[str]) -> None:
        nonlocal splits
        while True:
            if len(hops) - 1 >= max_hops:
                finish(ids, hops, delivered=False, looped=False)
                return
            fib = fibs.get(current)
            if fib is None or not fib.has_entry(prefix):
                finish(ids, hops, delivered=False, looped=False)
                return
            prefix_fib = fib.lookup(prefix)
            if prefix_fib.local:
                # Local delivery wins even for a multi-homed prefix with
                # equal-cost remote entries, as in route_flows_hashed.
                finish(ids, hops, delivered=True, looped=False)
                return
            split = prefix_fib.split_ratios()
            if not split:
                finish(ids, hops, delivered=False, looped=False)
                return
            if len(split) == 1:
                next_hop = next(iter(split))
            else:
                # Genuine ECMP branch: hash every session id exactly as the
                # per-flow walk does and recurse per non-empty bucket in
                # next-hop order.
                splits += 1
                buckets: Dict[str, array] = {}
                for session_id in ids:
                    choice = _pick_next_hop(
                        split, _hash_fraction(session_id, current, salt)
                    )
                    bucket = buckets.get(choice)
                    if bucket is None:
                        bucket = array("q")
                        buckets[choice] = bucket
                    bucket.append(session_id)
                for next_hop in sorted(buckets):
                    bucket = buckets[next_hop]
                    branch_hops = hops + [next_hop]
                    if next_hop in visited:
                        finish(bucket, branch_hops, delivered=False, looped=True)
                    else:
                        walk(bucket, next_hop, branch_hops, visited | {next_hop})
                return
            hops.append(next_hop)
            if next_hop in visited:
                finish(ids, hops, delivered=False, looped=True)
                return
            visited.add(next_hop)
            current = next_hop

    walk(session_ids, ingress, [ingress], {ingress})
    return groups, splits


def route_flows_hashed(
    fibs: Mapping[str, Fib],
    flows: Iterable[Flow],
    salt: int = 0,
    max_hops: int = 64,
) -> ForwardingOutcome:
    """Route individual flows with per-flow ECMP hashing (no per-flow splitting).

    Every flow is walked hop by hop from its ingress: at each router the FIB
    entry is chosen by a deterministic hash of the flow id, weighted by the
    entry weights.  The outcome records each flow's path so that the engine
    can later allocate fair-share rates along those exact paths.
    """
    outcome = ForwardingOutcome(loads=LinkLoads())
    for flow in flows:
        hops: List[str] = [flow.ingress]
        current = flow.ingress
        delivered = False
        looped = False
        visited: Set[str] = {flow.ingress}
        for _ in range(max_hops):
            fib = fibs.get(current)
            if fib is None or not fib.has_entry(flow.prefix):
                break
            prefix_fib = fib.lookup(flow.prefix)
            if prefix_fib.local and not prefix_fib.entries:
                delivered = True
                break
            if prefix_fib.local:
                # The router both announces the prefix and has equal-cost
                # remote entries (multi-homed prefix): local delivery wins.
                delivered = True
                break
            split = prefix_fib.split_ratios()
            if not split:
                break
            next_hop = _pick_next_hop(split, _hash_fraction(flow.flow_id, current, salt))
            outcome.loads.add(current, next_hop, flow.demand, prefix=flow.prefix)
            hops.append(next_hop)
            if next_hop in visited:
                looped = True
                break
            visited.add(next_hop)
            current = next_hop
        if delivered:
            outcome.delivered += flow.demand
        else:
            outcome.undeliverable += flow.demand
        outcome.flow_paths[flow.flow_id] = FlowPath(
            flow_id=flow.flow_id, hops=tuple(hops), delivered=delivered, looped=looped
        )
    return outcome
