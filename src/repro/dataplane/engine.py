"""Event-driven data-plane simulation engine.

The engine owns the set of active flows and, at every state change (flow
arrival or departure, FIB update pushed by the control plane, link capacity
change), refreshes each flow's path over the current FIBs (per-flow ECMP
hashing) and the max-min fair rate allocation.  Between state changes rates
are constant, so byte counters (the quantities SNMP exposes and Fig. 2
plots) are advanced analytically — no per-packet work is ever done.

By default the refresh is **incremental**, mirroring the control plane's
SPF/RIB caches one layer down the stack: a
:class:`~repro.dataplane.path_cache.FlowPathCache` stamps the FIB entries
with versions and re-routes only the flows whose cached path crosses a
changed *(router, prefix)* entry, and a
:class:`~repro.dataplane.path_cache.WarmStartAllocator` re-runs progressive
filling only on the connected components of the flow-link hypergraph that
the event dirtied.  Both repairs are bit-identical to the from-scratch
computation (``incremental=False``), which the differential suite
``tests/test_dataplane_incremental.py`` enforces.

Periodic sampling events record the average per-link throughput since the
previous sample; the Fig. 2 benchmark plots exactly those samples.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from dataclasses import dataclass

from repro.dataplane.events import EventLog, SimulationEvent
from repro.dataplane.fairness import max_min_fair_allocation
from repro.dataplane.flows import Flow, FlowSet, FlowSpec
from repro.dataplane.forwarding import FlowPath, route_flows_hashed
from repro.dataplane.linkstats import LinkLoads
from repro.dataplane.path_cache import (
    DataPlaneCounters,
    FlowPathCache,
    WarmStartAllocator,
)
from repro.igp.fib import Fib
from repro.igp.topology import Topology
from repro.util.errors import SimulationError
from repro.util.prefixes import Prefix
from repro.util.timeline import Timeline
from repro.util.validation import check_positive

__all__ = ["DataPlaneEngine", "LinkSample"]

LinkKey = Tuple[str, str]

#: Type of the callable giving the engine the routers' current FIBs.  Routers
#: that have not installed a FIB yet may simply be absent from the mapping.
FibProvider = Callable[[], Mapping[str, Fib]]


@dataclass(frozen=True)
class LinkSample:
    """Average per-link throughput (bit/s) over one sampling interval."""

    time: float
    interval: float
    rates: Dict[LinkKey, float]

    def rate_of(self, source: str, target: str) -> float:
        """Average rate on the directed link ``source -> target`` (0.0 if idle)."""
        return self.rates.get((source, target), 0.0)


class DataPlaneEngine:
    """Flow-level data plane driven by the shared simulation timeline.

    ``incremental=False`` disables the path cache and the warm-start
    allocator: every event re-routes every flow and re-allocates from
    scratch (the pre-cache behaviour, kept as the differential oracle and
    the benchmark baseline).  ``alloc_dirty_threshold`` is the warm-start
    fallback knob: when an event dirties more than that fraction of the
    active flows, the allocation is recomputed in full and counted as a
    ``dp_fallback`` (same style as ``RibCache.dirty_threshold``).
    """

    def __init__(
        self,
        topology: Topology,
        fib_provider: FibProvider,
        timeline: Timeline,
        sample_interval: float = 1.0,
        hash_salt: int = 0,
        incremental: bool = True,
        alloc_dirty_threshold: float = 0.5,
    ) -> None:
        self.topology = topology
        self.fib_provider = fib_provider
        self.timeline = timeline
        self.sample_interval = check_positive(sample_interval, "sample_interval")
        self.hash_salt = hash_salt
        self.incremental = incremental

        self.flows = FlowSet()
        self.events = EventLog()
        self.samples: List[LinkSample] = []
        self.counters = DataPlaneCounters()

        self._path_cache = FlowPathCache()
        self._allocator = WarmStartAllocator(dirty_threshold=alloc_dirty_threshold)

        self._capacities: Dict[LinkKey, float] = {
            link.key: link.capacity for link in topology.links
        }
        # Current (instantaneous) state, valid since _last_advance.
        self._flow_rates: Dict[int, float] = {}
        self._flow_paths: Dict[int, FlowPath] = {}
        self._link_rates: Dict[LinkKey, float] = {}
        # Effective links per flow (empty for undeliverable flows) and the
        # inverse index, used to repair per-link totals without rescanning
        # every flow.
        self._flow_links: Dict[int, Tuple[LinkKey, ...]] = {}
        self._link_members: Dict[LinkKey, Set[int]] = {}
        # Cumulative transmitted bytes (what SNMP interface counters expose).
        self._link_bytes: Dict[LinkKey, float] = {link.key: 0.0 for link in topology.links}
        self._flow_bytes: Dict[int, float] = {}
        self._last_advance = timeline.now
        self._last_sample_bytes: Dict[LinkKey, float] = dict(self._link_bytes)
        self._last_sample_time = timeline.now

        self._sample_listeners: List[Callable[[LinkSample], None]] = []
        self._rate_listeners: List[Callable[[float], None]] = []
        self._started = False

    # ------------------------------------------------------------------ #
    # Listeners
    # ------------------------------------------------------------------ #
    def on_sample(self, listener: Callable[[LinkSample], None]) -> None:
        """Register ``listener(sample)`` called after every periodic sample."""
        self._sample_listeners.append(listener)

    def on_rates_changed(self, listener: Callable[[float], None]) -> None:
        """Register ``listener(time)`` called whenever flow rates are recomputed."""
        self._rate_listeners.append(listener)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Begin periodic sampling (idempotent)."""
        if self._started:
            return
        self._started = True
        self.timeline.schedule_in(self.sample_interval, self._sample, label="dataplane-sample")

    # ------------------------------------------------------------------ #
    # Flow management
    # ------------------------------------------------------------------ #
    def add_flow(self, ingress: str, prefix: Prefix, demand: float, label: str = "") -> Flow:
        """Start a new flow now; rates are recomputed immediately."""
        return self.add_flows([FlowSpec(ingress=ingress, prefix=prefix, demand=demand, label=label)])[0]

    def add_flows(self, specs: Sequence[FlowSpec]) -> List[Flow]:
        """Start a batch of flows now, paying for a single recomputation.

        An arrival wave of ``n`` flows (a flash-crowd batch) triggers one
        path/allocation refresh instead of ``n`` — the rates between the
        individual arrivals of a same-instant batch would never integrate
        into any byte counter anyway.
        """
        # Validate every spec up front: a failure mid-batch would leave the
        # earlier flows registered but never routed (they are only treated
        # as arrivals once), so the batch must be all-or-nothing.
        for spec in specs:
            if not self.topology.has_router(spec.ingress):
                raise SimulationError(
                    f"flow ingress {spec.ingress!r} is not a router of the topology"
                )
            check_positive(spec.demand, "demand")
        if not specs:
            return []
        self._advance_counters()
        flows: List[Flow] = []
        for spec in specs:
            flow = self.flows.create(
                ingress=spec.ingress, prefix=spec.prefix, demand=spec.demand, label=spec.label
            )
            self._flow_bytes[flow.flow_id] = 0.0
            self.events.record(
                SimulationEvent(
                    time=self.timeline.now,
                    kind="flow-arrival",
                    details=f"{flow}",
                )
            )
            flows.append(flow)
        self._recompute(arrivals=flows)
        return flows

    def remove_flow(self, flow_id: int) -> Flow:
        """Terminate the flow with ``flow_id`` now; rates are recomputed immediately."""
        self._advance_counters()
        flow = self.flows.remove(flow_id)
        self.events.record(
            SimulationEvent(
                time=self.timeline.now,
                kind="flow-departure",
                details=f"{flow}",
            )
        )
        self._recompute(departures=[flow_id])
        return flow

    def notify_routing_change(self) -> None:
        """Tell the engine the FIBs changed; paths and rates are recomputed.

        The control plane calls this (directly or through
        :meth:`bind_to_network`) after a router installs a new FIB.  With
        the incremental engine only the flows whose cached path crosses a
        changed FIB entry are re-walked.
        """
        self._advance_counters()
        self.events.record(
            SimulationEvent(time=self.timeline.now, kind="routing-change", details="FIB update")
        )
        self._recompute()

    def set_link_capacity(self, source: str, target: str, capacity: float) -> None:
        """Change the capacity of the directed link ``source -> target``.

        Models a bandwidth change at the allocation level (e.g. a rate
        limiter or a LAG member failure): paths are untouched, but the
        max-min fair shares of the link's connected component are repaired.
        """
        key = (source, target)
        if key not in self._capacities:
            raise SimulationError(f"unknown link {source!r} -> {target!r}")
        check_positive(capacity, "capacity")
        self._advance_counters()
        self._capacities[key] = capacity
        self.events.record(
            SimulationEvent(
                time=self.timeline.now,
                kind="capacity-change",
                details=f"{source}->{target} = {capacity:.0f} bit/s",
            )
        )
        self._recompute(dirty_links=[key])

    def bind_to_network(self, network) -> None:
        """Convenience: recompute paths whenever an IgpNetwork installs a FIB.

        Also registers this engine with the network so its ``dp_*`` counters
        ride along the SPF/RIB ones in ``IgpNetwork.spf_stats`` and the
        monitoring collector.
        """
        network.on_fib_change(lambda _router, _fib: self.notify_routing_change())
        register = getattr(network, "register_dataplane", None)
        if register is not None:
            register(self)

    # ------------------------------------------------------------------ #
    # State inspection
    # ------------------------------------------------------------------ #
    def flow_rate(self, flow_id: int) -> float:
        """Current allocated rate of a flow (bit/s)."""
        return self._flow_rates.get(flow_id, 0.0)

    def flow_path(self, flow_id: int) -> Optional[FlowPath]:
        """Current path of a flow (``None`` before the first recomputation)."""
        return self._flow_paths.get(flow_id)

    def flow_transmitted_bytes(self, flow_id: int) -> float:
        """Bytes delivered so far for a flow (up to the last counter advance)."""
        return self._flow_bytes.get(flow_id, 0.0)

    def link_rate(self, source: str, target: str) -> float:
        """Current instantaneous rate on the directed link ``source -> target``."""
        return self._link_rates.get((source, target), 0.0)

    def link_capacity(self, source: str, target: str) -> float:
        """Current capacity of a directed link (as the allocator sees it)."""
        try:
            return self._capacities[(source, target)]
        except KeyError:
            raise SimulationError(f"unknown link {source!r} -> {target!r}") from None

    def link_transmitted_bytes(self, source: str, target: str) -> float:
        """Cumulative transmitted bytes on a directed link (SNMP-style counter)."""
        self._advance_counters()
        return self._link_bytes[(source, target)]

    def all_link_counters(self) -> Dict[LinkKey, float]:
        """Snapshot of every link's cumulative byte counter."""
        self._advance_counters()
        return dict(self._link_bytes)

    def current_loads(self) -> LinkLoads:
        """Current instantaneous per-link carried load as a :class:`LinkLoads`."""
        loads = LinkLoads()
        for (source, target), rate in self._link_rates.items():
            if rate > 0:
                loads.add(source, target, rate)
        return loads

    def max_link_utilization(self) -> float:
        """Maximal instantaneous link utilisation across the topology."""
        return self.current_loads().max_utilization(self.topology)

    @property
    def path_cache_version(self) -> int:
        """Version stamped on the FIB entries dirtied by the latest change."""
        return self._path_cache.version

    def cached_path_valid(self, flow_id: int) -> bool:
        """Whether the flow's cached path key still matches the FIB versions."""
        return self._path_cache.valid(flow_id)

    def allocation_components(self) -> int:
        """Connected components currently tracked by the warm-start allocator."""
        return self._allocator.component_count()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _advance_counters(self) -> None:
        """Integrate the constant rates since the last advance into byte counters."""
        now = self.timeline.now
        elapsed = now - self._last_advance
        if elapsed < 0:  # pragma: no cover - defensive
            raise SimulationError("timeline moved backwards")
        if elapsed > 0:
            for link, rate in self._link_rates.items():
                if rate > 0:
                    self._link_bytes[link] = self._link_bytes.get(link, 0.0) + rate * elapsed / 8.0
            for flow_id, rate in self._flow_rates.items():
                if rate > 0:
                    self._flow_bytes[flow_id] = (
                        self._flow_bytes.get(flow_id, 0.0) + rate * elapsed / 8.0
                    )
        self._last_advance = now

    def _recompute(
        self,
        arrivals: Sequence[Flow] = (),
        departures: Sequence[int] = (),
        dirty_links: Sequence[LinkKey] = (),
    ) -> None:
        """Refresh paths and rates after one event (incremental when enabled)."""
        if self.incremental:
            self._recompute_incremental(arrivals, departures, dirty_links)
        else:
            self._recompute_full()
        for listener in self._rate_listeners:
            listener(self.timeline.now)

    def _effective_input(self, flow: Flow, path: FlowPath) -> Tuple[Tuple[LinkKey, ...], float]:
        """The (links, demand) the allocator sees for one routed flow.

        Undeliverable flows send nothing (their TCP connection would never
        establish); looping flows are included in the path so tests can
        detect them, but they get no rate either.
        """
        if path.delivered:
            return path.links, flow.demand
        return (), 0.0

    def _recompute_full(self) -> None:
        """Re-route every flow over the current FIBs and re-allocate from scratch."""
        fibs = dict(self.fib_provider())
        outcome = route_flows_hashed(fibs, self.flows, salt=self.hash_salt)
        self._flow_paths = dict(outcome.flow_paths)
        self.counters.flows_rerouted += len(self.flows)
        self.counters.alloc_full += 1

        flow_links: Dict[int, Tuple[LinkKey, ...]] = {}
        demands: Dict[int, float] = {}
        for flow in self.flows:
            path = self._flow_paths[flow.flow_id]
            flow_links[flow.flow_id], demands[flow.flow_id] = self._effective_input(flow, path)

        rates = max_min_fair_allocation(flow_links, demands, self._capacities)
        self._flow_rates = rates

        link_rates: Dict[LinkKey, float] = {}
        for flow_id, links in flow_links.items():
            rate = rates.get(flow_id, 0.0)
            if rate <= 0:
                continue
            for link in links:
                link_rates[link] = link_rates.get(link, 0.0) + rate
        self._link_rates = link_rates

    def _recompute_incremental(
        self,
        arrivals: Sequence[Flow],
        departures: Sequence[int],
        dirty_links: Sequence[LinkKey],
    ) -> None:
        """Re-route only the dirty flows and warm-start the fair allocation."""
        fibs = dict(self.fib_provider())
        for flow_id in departures:
            self._path_cache.drop(flow_id)
            self._flow_paths.pop(flow_id, None)

        dirty_entries = self._path_cache.observe(fibs)
        to_route = sorted(
            self._path_cache.dirty_flows(dirty_entries).union(
                flow.flow_id for flow in arrivals
            )
        )
        outcome = route_flows_hashed(
            fibs, [self.flows.get(flow_id) for flow_id in to_route], salt=self.hash_salt
        )
        self.counters.flows_rerouted += len(to_route)
        self.counters.flows_reused += len(self.flows) - len(to_route)

        changed_inputs: Dict[int, Tuple[Tuple[LinkKey, ...], float]] = {}
        for flow_id in to_route:
            path = outcome.flow_paths[flow_id]
            previous = self._flow_paths.get(flow_id)
            self._path_cache.store(self.flows.get(flow_id), path)
            self._flow_paths[flow_id] = path
            if previous is None or path != previous:
                changed_inputs[flow_id] = self._effective_input(self.flows.get(flow_id), path)

        repair = self._allocator.update(
            changed=changed_inputs,
            removed=departures,
            dirty_links=dirty_links,
            capacities=self._capacities,
        )
        if repair.mode == "warm":
            self.counters.alloc_warm_starts += 1
        elif repair.mode == "full":
            self.counters.alloc_full += 1
        elif repair.mode == "fallback":
            self.counters.fallbacks += 1
        self._flow_rates = self._allocator.rates

        # Repair the per-link totals: only the links whose flow membership
        # or member rates moved are re-summed (in canonical ascending flow
        # order, so the totals are bit-identical to a from-scratch rebuild).
        affected_links: Set[LinkKey] = set()
        for flow_id in departures:
            old_links = self._flow_links.pop(flow_id, ())
            affected_links.update(old_links)
            for link in old_links:
                self._discard_member(link, flow_id)
        for flow_id, (links, _demand) in changed_inputs.items():
            old_links = self._flow_links.get(flow_id, ())
            affected_links.update(old_links)
            affected_links.update(links)
            for link in old_links:
                if link not in links:
                    self._discard_member(link, flow_id)
            for link in links:
                self._link_members.setdefault(link, set()).add(flow_id)
            self._flow_links[flow_id] = links
        for flow_id in repair.rate_changed:
            if flow_id not in changed_inputs:
                affected_links.update(self._flow_links.get(flow_id, ()))
        for link in affected_links:
            self._retotal_link(link)

    def _discard_member(self, link: LinkKey, flow_id: int) -> None:
        members = self._link_members.get(link)
        if members is not None:
            members.discard(flow_id)
            if not members:
                del self._link_members[link]

    def _retotal_link(self, link: LinkKey) -> None:
        """Re-sum one link's carried rate over its member flows, canonically."""
        total = 0.0
        for flow_id in sorted(self._link_members.get(link, ())):
            rate = self._flow_rates.get(flow_id, 0.0)
            if rate > 0:
                total += rate
        if total > 0:
            self._link_rates[link] = total
        else:
            self._link_rates.pop(link, None)

    def _sample(self) -> None:
        """Periodic sampling: average link rates since the previous sample."""
        self._advance_counters()
        now = self.timeline.now
        interval = now - self._last_sample_time
        rates: Dict[LinkKey, float] = {}
        if interval > 0:
            for link, total_bytes in self._link_bytes.items():
                previous = self._last_sample_bytes.get(link, 0.0)
                delta = total_bytes - previous
                if delta > 0:
                    rates[link] = delta * 8.0 / interval
        sample = LinkSample(time=now, interval=interval, rates=rates)
        self.samples.append(sample)
        self._last_sample_bytes = dict(self._link_bytes)
        self._last_sample_time = now
        for listener in self._sample_listeners:
            listener(sample)
        self.timeline.schedule_in(self.sample_interval, self._sample, label="dataplane-sample")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DataPlaneEngine(flows={len(self.flows)}, t={self.timeline.now:.3f}, "
            f"samples={len(self.samples)}, incremental={self.incremental})"
        )
